"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` works in fully offline environments
where the ``wheel`` package (required by PEP 660 editable installs) is not
available: pip then falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
