"""Benchmark: the online serving tier (ISSUE 8 deliverable).

Measures sustained request throughput and tail latency of the
``repro.serving`` stack in two regimes on each backend:

* **idle** — serve-only (``train_ranks=0``): the replicas never swap,
  every request is served on the version-0 weights; and
* **under training** — serve-while-train (``train_ranks=1``): a trainer
  shares the fabric, publishes a weight set every few steps, and the
  replicas hot-swap between batches while requests keep flowing.

``python benchmarks/bench_serving.py`` prints the table and writes
machine-readable ``BENCH_serving.json`` at the repo root.  It exits
non-zero if any run drops a request or (in the under-training regime)
the served model version never advances beyond the seed weights — the
two properties the subsystem exists to provide.

Note on substrate: this container serialises every rank onto one core,
so the trainer, the replicas and the client threads time-share it;
absolute latencies include that scheduling noise.  The signal is the
idle-vs-training *delta* on the same backend and that completion stays
at 100% through hot swaps.
"""

import json
import sys
from pathlib import Path

from repro.comm import available_backends
from repro.serving import ServingConfig, Workload, serve
from repro.serving.server import format_report

BACKENDS = ("thread", "process")
NUM_REQUESTS = 200
CLIENTS = 4
TRAIN_STEPS = 150
PUBLISH_EVERY = 5

#: Output file (repo root), committed as the serving perf anchor.
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def run_once(backend: str, train_ranks: int) -> dict:
    config = ServingConfig(
        replicas=2,
        train_ranks=train_ranks,
        comm_backend=backend,
        input_dim=64,
        max_batch_size=8,
        max_queue_delay_s=0.002,
        train_steps=TRAIN_STEPS,
        train_batch_size=16,
        publish_every_steps=PUBLISH_EVERY,
    )
    report = serve(
        config,
        Workload(num_requests=NUM_REQUESTS, clients=CLIENTS, timeout_s=120.0),
        timeout=600.0,
    )
    workload = report.workload or {}
    return {
        "backend": backend,
        "regime": "under_training" if train_ranks else "idle",
        "train_ranks": train_ranks,
        "replicas": config.replicas,
        "offered": workload.get("offered"),
        "completed": report.completed_requests,
        "requests_per_s": report.requests_per_s,
        "latency_p50_s": report.p50_s,
        "latency_p99_s": report.p99_s,
        "latency_mean_s": workload.get("latency_mean_s"),
        "versions_served": report.versions_served,
        "swaps_applied": sum(r["swaps_applied"] for r in report.replicas),
        "report": format_report(report),
    }


def main() -> int:
    rows = []
    failures = []
    for backend in BACKENDS:
        if backend not in available_backends():
            print(f"-- skipping unavailable backend {backend!r}")
            continue
        for train_ranks in (0, 1):
            row = run_once(backend, train_ranks)
            rows.append(row)
            print(row["report"])
            print()
            if row["completed"] != NUM_REQUESTS:
                failures.append(
                    f"{backend}/{row['regime']}: dropped "
                    f"{NUM_REQUESTS - row['completed']} request(s)"
                )
            if train_ranks and (
                not row["versions_served"] or row["versions_served"][-1] <= 0
            ):
                failures.append(
                    f"{backend}/{row['regime']}: served version never advanced "
                    f"(saw {row['versions_served']})"
                )

    print(f"{'backend':<9} {'regime':<15} {'req/s':>8} {'p50 ms':>8} {'p99 ms':>8} "
          f"{'versions served':>16}")
    for row in rows:
        print(
            f"{row['backend']:<9} {row['regime']:<15} "
            f"{row['requests_per_s']:>8.0f} "
            f"{1e3 * row['latency_p50_s']:>8.2f} "
            f"{1e3 * row['latency_p99_s']:>8.2f} "
            f"{len(row['versions_served']):>16}"
        )

    payload = {
        "benchmark": "serving",
        "config": {
            "num_requests": NUM_REQUESTS,
            "clients": CLIENTS,
            "train_steps": TRAIN_STEPS,
            "publish_every_steps": PUBLISH_EVERY,
        },
        "runs": [{k: v for k, v in row.items() if k != "report"} for row in rows],
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")

    for failure in failures:
        print(f"FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
