"""Benchmark regenerating Fig. 11 (ResNet / ImageNet-like, light imbalance).

Paper numbers: eager-SGD (solo) achieves 1.25x/1.23x speedup over Deep500
and 1.14x/1.22x over Horovod at 300/460 ms injections, with equivalent
final accuracy.  The benchmark checks that ordering on the scaled workload.
"""

from repro.experiments import fig11_imagenet


def bench_fig11_imagenet(benchmark):
    result = benchmark.pedantic(
        lambda: fig11_imagenet.run(
            scale="tiny", delays_ms=(300.0, 460.0), seed=0, time_scale=0.0005
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig11_imagenet.report(result))
    comp = result.comparison
    for delay in (300, 460):
        eager = f"eager-SGD-{delay} (solo)"
        deep500 = f"synch-SGD-{delay} (Deep500)"
        horovod = f"synch-SGD-{delay} (Horovod)"
        assert comp.speedup_over(eager, baseline=deep500) > 1.0
        assert comp.speedup_over(eager, baseline=horovod) > 1.0
        # Accuracy is preserved (within a loose band at this tiny scale).
        eager_acc = comp.results[eager].final_epoch.eval_top1
        sync_acc = comp.results[deep500].final_epoch.eval_top1
        assert eager_acc >= sync_acc - 0.2
