"""Benchmark aggregating the headline speedups (abstract / Section 6)."""

from repro.experiments import speedups


def bench_speedup_summary(benchmark):
    summary = benchmark.pedantic(
        lambda: speedups.run(scale="tiny", seed=0), rounds=1, iterations=1
    )
    print()
    print(speedups.report(summary))
    assert len(summary.rows) >= 5
    # Every eager variant beats its synchronous baseline.
    assert all(row.measured > 0.95 for row in summary.rows)
