"""Benchmark: gradient compression — wire bytes, wall-clock, convergence.

Acceptance bars of the compression subsystem (ISSUE 4):

1. **Wall-clock**: with a 4 MB gradient at P = 8 on the ``process``
   backend, the ``fp16`` exchange must be >= 1.3x faster than the
   uncompressed (``none``) exchange under the *default*
   ``TrainingConfig`` exchange configuration — i.e. exactly what a user
   gets by adding ``--compression fp16`` to a run.  (Uncompressed
   defaults run the seed's single-buffer recursive-doubling allreduce;
   reduce-closed codecs run the compressed decode-reduce-encode ring of
   :func:`repro.collectives.sync.allreduce_compressed_ring`.)
2. **Convergence**: on the Fig. 10 hyperplane workload, error-feedback
   top-k sparsification must reach a final validation loss within 5% of
   the uncompressed run.

``python benchmarks/bench_compression.py`` prints the wire-byte /
wall-clock sweep over both backends at P in {2, 4, 8} plus the
convergence table, and PASS/FAIL for both bars.  Under pytest-benchmark
the same harnesses are timed and asserted.

Note on substrate: wall-clock numbers on a single-core container mix
scheduling latency into every message round, so the measured speedups
are a *lower bound* on what byte savings buy when ranks own real cores;
the wire-byte column is the hardware-independent signal.
"""

import time

import numpy as np

from repro.comm import launch
from repro.compression import get_codec
from repro.data.hyperplane import HyperplaneDataset
from repro.nn.losses import MSELoss
from repro.nn.models import HyperplaneMLP
from repro.training.config import TrainingConfig
from repro.training.exchange import SynchronousExchange
from repro.training.runner import train_distributed

#: Acceptance threshold: fp16 vs none, process backend, P = 8, 4 MB.
TARGET_SPEEDUP = 1.3
#: Acceptance threshold: top-k(EF) final loss within 5% of uncompressed.
CONVERGENCE_TOLERANCE = 0.05

#: 4 MB of float64 gradient.
WORKLOAD_ELEMENTS = 1 << 19
CODECS = (None, "fp16", "bf16", "int8", "topk:ratio=0.01")
BACKENDS = ("thread", "process")
WORLD_SIZES = (2, 4, 8)


def _exchange_worker(comm, codec, elements, iterations):
    exchange = SynchronousExchange(comm, compression=codec)
    gradient = np.random.default_rng(comm.rank).standard_normal(elements)
    for _ in range(2):
        result = exchange.exchange(gradient)
    times = []
    for _ in range(iterations):
        comm.barrier()
        start = time.perf_counter()
        result = exchange.exchange(gradient)
        times.append(time.perf_counter() - start)
    return float(np.median(times)), int(result.wire_bytes)


def measure_exchange(backend, codec, world_size, elements=WORKLOAD_ELEMENTS,
                     iterations=10):
    """Median wall-clock and per-rank wire bytes of one default exchange."""
    outputs = launch(
        _exchange_worker, world_size, codec, elements, iterations,
        backend=backend, timeout=600,
    )
    return max(o[0] for o in outputs), outputs[0][1]


def run_sweep(backends=BACKENDS, world_sizes=WORLD_SIZES, codecs=CODECS,
              elements=WORKLOAD_ELEMENTS, iterations=10):
    """(backend, P, codec, seconds, wire bytes, speedup-vs-none) rows."""
    rows = []
    for backend in backends:
        for world_size in world_sizes:
            baseline = None
            for codec in codecs:
                seconds, wire = measure_exchange(
                    backend, codec, world_size, elements, iterations
                )
                if codec is None:
                    baseline = seconds
                rows.append({
                    "backend": backend,
                    "world_size": world_size,
                    "codec": codec or "none",
                    "seconds": seconds,
                    "wire_bytes": wire,
                    "speedup": baseline / seconds,
                })
    return rows


def run_convergence(seed=0, epochs=8, input_dim=256, world_size=4):
    """Fig. 10 hyperplane workload: dense vs (EF / no-EF) top-k.

    Returns ``{variant: final_eval_loss}`` for the uncompressed run,
    error-feedback top-k, and the no-error-feedback ablation (expected
    to be the worst — that is *why* the residuals exist).
    """
    dataset = HyperplaneDataset(
        num_examples=2048, input_dim=input_dim, noise_std=1.0, seed=seed
    )
    train, val = dataset.split(validation_fraction=0.2, seed=seed)

    def model_factory():
        return HyperplaneMLP(input_dim=input_dim, seed=seed + 1)

    losses = {}
    for label, spec in (
        ("uncompressed", None),
        ("topk (error feedback)", "topk"),
        ("topk (no error feedback)", "topk:error_feedback=off"),
    ):
        config = TrainingConfig(
            world_size=world_size,
            epochs=epochs,
            global_batch_size=256,
            learning_rate=0.5,
            mode="sync",
            compression=spec,
            model_sync_period_epochs=None,
            seed=seed,
        )
        result = train_distributed(
            model_factory, train, MSELoss(), config,
            eval_dataset=val, classification=False,
        )
        losses[label] = float(result.epochs[-1].eval_loss)
    return losses


def _acceptance_speedup(rows):
    by_key = {(r["backend"], r["world_size"], r["codec"]): r for r in rows}
    return by_key[("process", 8, "fp16")]["speedup"]


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------
def bench_compression_wall_clock(benchmark):
    """fp16 vs none at the acceptance point (process backend, P=8, 4 MB)."""
    rows = benchmark(
        lambda: run_sweep(backends=("process",), world_sizes=(8,),
                          codecs=(None, "fp16"))
    )
    speedup = _acceptance_speedup(rows)
    wire = {r["codec"]: r["wire_bytes"] for r in rows}
    assert wire["fp16"] * 4 == wire["none"], wire
    assert speedup >= TARGET_SPEEDUP, (
        f"fp16 exchange only {speedup:.2f}x faster than none on the process "
        f"backend at P=8 (need >= {TARGET_SPEEDUP}x)"
    )


def bench_compression_convergence(benchmark):
    """Error-feedback top-k reaches seed-comparable loss on fig10."""
    losses = benchmark(run_convergence)
    dense = losses["uncompressed"]
    ef = losses["topk (error feedback)"]
    assert ef <= dense * (1 + CONVERGENCE_TOLERANCE), (
        f"top-k with error feedback converged to {ef:.4f}, more than "
        f"{CONVERGENCE_TOLERANCE:.0%} above the uncompressed {dense:.4f}"
    )


def bench_codec_transforms(benchmark):
    """Raw encode+decode throughput of every codec on a 4 MB buffer."""
    gradient = np.random.default_rng(0).standard_normal(WORKLOAD_ELEMENTS)

    def roundtrips():
        out = {}
        for spec in CODECS:
            codec = get_codec(spec)
            encoded = codec.encode(gradient)
            out[codec.name] = (encoded.nbytes, codec.decode(encoded))
        return out

    results = benchmark(roundtrips)
    assert results["fp16"][0] == WORKLOAD_ELEMENTS * 2
    assert results["topk"][0] < WORKLOAD_ELEMENTS  # 1% of 8 B/elem


# ---------------------------------------------------------------------------
# standalone report
# ---------------------------------------------------------------------------
def _format_rows(rows):
    dense_bytes = WORKLOAD_ELEMENTS * 8
    lines = [
        f"{'backend':8s} {'P':>2s} {'codec':16s} {'ms/exchange':>12s} "
        f"{'wire B/rank':>12s} {'ratio':>6s} {'speedup':>8s}",
        "-" * 70,
    ]
    for r in rows:
        lines.append(
            f"{r['backend']:8s} {r['world_size']:2d} {r['codec']:16s} "
            f"{r['seconds'] * 1e3:12.2f} {r['wire_bytes']:12d} "
            f"{dense_bytes / max(1, r['wire_bytes']):5.1f}x {r['speedup']:7.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(f"gradient-compression sweep ({WORKLOAD_ELEMENTS * 8 / 2**20:g} MB "
          f"gradient, default TrainingConfig exchange)\n")
    rows = run_sweep()
    print(_format_rows(rows))

    speedup = _acceptance_speedup(rows)
    ok_speed = speedup >= TARGET_SPEEDUP
    print(f"\nacceptance 1: fp16 vs none, process backend, P=8: "
          f"{speedup:.2f}x (need >= {TARGET_SPEEDUP}x): "
          f"{'PASS' if ok_speed else 'FAIL'}")

    print("\nconvergence check (fig10 hyperplane workload, synch-SGD, P=4):")
    losses = run_convergence()
    for label, loss in losses.items():
        print(f"  {label:26s} final eval loss {loss:.4f}")
    dense = losses["uncompressed"]
    ef = losses["topk (error feedback)"]
    ok_conv = ef <= dense * (1 + CONVERGENCE_TOLERANCE)
    print(f"\nacceptance 2: top-k(EF) within {CONVERGENCE_TOLERANCE:.0%} of "
          f"uncompressed ({ef:.4f} vs {dense:.4f}, "
          f"{(ef / dense - 1) * 100:+.1f}%): {'PASS' if ok_conv else 'FAIL'}")
    raise SystemExit(0 if (ok_speed and ok_conv) else 1)
