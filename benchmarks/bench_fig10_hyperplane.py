"""Benchmark regenerating Fig. 10 (hyperplane regression, synch vs eager).

The paper's numbers: eager-SGD (solo) is 1.50x / 1.75x / 2.01x faster than
synch-SGD (Deep500) under 200 / 300 / 400 ms injections, converging to the
same validation loss.  The benchmark runs the scaled-down workload and
checks the ordering (speedup grows with the injected delay; loss matches).
"""

from repro.experiments import fig10_hyperplane


def bench_fig10_hyperplane(benchmark):
    result = benchmark.pedantic(
        lambda: fig10_hyperplane.run(
            scale="small", delays_ms=(200.0, 300.0, 400.0), seed=0, time_scale=0.0005
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig10_hyperplane.report(result))
    speedups = fig10_hyperplane.speedups_per_delay(result)
    # Eager-SGD wins at every injection level.
    assert all(s > 1.0 for s in speedups.values())
    # More imbalance, more benefit (the trend of Fig. 10's top panel).
    assert speedups[400.0] > speedups[200.0]
    # Both variants converge to comparable validation losses.
    for delay in (200, 300, 400):
        sync_loss = result.comparison.results[
            f"synch-SGD-{delay} (Deep500)"
        ].final_epoch.eval_loss
        solo_loss = result.comparison.results[
            f"eager-SGD-{delay} (solo)"
        ].final_epoch.eval_loss
        assert solo_loss < 2.0 * sync_loss + 1e-6
