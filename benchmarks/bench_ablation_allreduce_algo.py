"""Ablation: synchronous allreduce algorithm (recursive doubling vs ring vs
Rabenseifner), both as an analytic cost sweep and as wall-clock throughput
of the thread-backed implementations.
"""

import numpy as np

from repro.comm import launch
from repro.collectives import ALLREDUCE_ALGORITHMS, allreduce
from repro.experiments.report import format_table
from repro.simtime.collective_model import allreduce_time


def bench_ablation_allreduce_cost_model(benchmark):
    def sweep():
        rows = []
        for nbytes in (4 * 1024, 256 * 1024, 4 * 1024 * 1024, 100 * 1024 * 1024):
            row = [nbytes]
            for algo in ("recursive_doubling", "ring", "rabenseifner"):
                row.append(allreduce_time(nbytes, 64, algo) * 1e3)
            rows.append(tuple(row))
        return rows

    rows = benchmark(sweep)
    print()
    print(
        format_table(
            ["message bytes", "recursive doubling (ms)", "ring (ms)", "rabenseifner (ms)"],
            rows,
            title="Ablation: allreduce algorithm cost model (64 ranks)",
        )
    )
    # Bandwidth-optimal algorithms win for the largest payload.
    largest = rows[-1]
    assert largest[2] < largest[1]


def _thread_allreduce(algorithm, elements, iterations=3, world_size=4):
    def worker(comm):
        data = np.ones(elements) * (comm.rank + 1)
        for _ in range(iterations):
            out = allreduce(comm, data, algorithm=algorithm)
        return float(out[0])

    return launch(worker, world_size)


def bench_allreduce_recursive_doubling_threads(benchmark):
    results = benchmark(lambda: _thread_allreduce("recursive_doubling", 64 * 1024))
    assert all(r == 10.0 for r in results)


def bench_allreduce_ring_threads(benchmark):
    results = benchmark(lambda: _thread_allreduce("ring", 64 * 1024))
    assert all(r == 10.0 for r in results)


def bench_allreduce_rabenseifner_threads(benchmark):
    results = benchmark(lambda: _thread_allreduce("rabenseifner", 64 * 1024))
    assert all(r == 10.0 for r in results)
