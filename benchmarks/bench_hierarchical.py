"""Benchmark: flat vs topology-aware hierarchical fused exchange.

Acceptance bar of the multi-host fabric PR (ISSUE 6): at P = 8 with a
4 MB gradient on a simulated two-host topology (ranks 0-3 on host 0,
ranks 4-7 on host 1), the ``hier`` backend's hierarchical fused
exchange must be >= 1.2x faster than the flat ``process`` backend under
the same representative tuned configuration (ring algorithm, 2 MiB
fusion buffers, 2 pipeline chunks).

Both sides of the comparison run real OS processes.  The flat baseline
pushes every hop of the P-rank ring through the TCP socket mesh; the
hierarchical side routes intra-host frames over shared-memory rings and
only the two host leaders' ring over sockets, which is exactly the
traffic split a real two-host deployment would see (the simulated
"inter-host" socket is still loopback, so the measured gap is a *lower*
bound on the real-fabric gap).

``python benchmarks/bench_hierarchical.py`` sweeps world size x
payload, prints the comparison table, writes machine-readable
``BENCH_hierarchy.json`` at the repo root, and exits non-zero if the
bar fails.  Under pytest-benchmark the same harness is timed and
asserted.

Note on substrate: this container serialises every rank onto one core,
so absolute times mix scheduling latency into each hop; the *ratio*
between the two schedules under identical scheduling is the signal.
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.comm import available_backends, launch
from repro.training.exchange import SynchronousExchange

#: Acceptance threshold: hier vs flat process, P = 8, 4 MB, two hosts.
TARGET_SPEEDUP = 1.2

#: The representative tuned exchange configuration of the sweep.
ALGORITHM = "ring"
FUSION_THRESHOLD_BYTES = 2 * 1024 * 1024
PIPELINE_CHUNKS = 2

WORLD_SIZES = (4, 8)
PAYLOAD_BYTES = (1 << 20, 4 << 20)

#: Output file (repo root), committed as the perf trajectory's anchor.
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hierarchy.json"


def two_host_topology(world_size):
    """First half of the ranks on host 0, second half on host 1."""
    half = world_size // 2
    return ",".join("0" if r < half else "1" for r in range(world_size))


def _exchange_worker(comm, nbytes, iterations):
    # The exchange discovers the host topology from the communicator's
    # router: under the hier backend it auto-routes dense buckets to the
    # two-tier hierarchical allreduce, under the process backend it runs
    # the flat ring.  One worker, both schedules.
    exchange = SynchronousExchange(
        comm,
        algorithm=ALGORITHM,
        fusion_threshold_bytes=FUSION_THRESHOLD_BYTES,
        pipeline_chunks=PIPELINE_CHUNKS,
    )
    gradient = np.random.default_rng(comm.rank).standard_normal(nbytes // 8)
    exchange.exchange(gradient)  # warmup (buffers, rings, sockets)
    times = []
    for _ in range(iterations):
        comm.barrier()
        start = time.perf_counter()
        exchange.exchange(gradient)
        times.append(time.perf_counter() - start)
    return times


def _measure_once(backend, world_size, nbytes, iterations, backend_opts=None):
    outputs = launch(
        _exchange_worker, world_size, nbytes, iterations,
        backend=backend, backend_opts=backend_opts, timeout=900,
    )
    # An exchange completes when the slowest rank holds the averaged
    # gradient; the min over iterations is the least-noise estimator.
    return float(np.min(np.max(np.asarray(outputs), axis=0)))


def measure_pair(world_size, nbytes, iterations=10, repeats=4):
    """Best flat and hierarchical exchange time, repeats *interleaved*.

    Machine-level drift (CPU steal, thermal throttling) moves on a
    seconds timescale; alternating the two setups per repeat exposes
    both to the same drift, keeping their ratio honest.
    """
    opts = {"host_topology": two_host_topology(world_size)}
    flat = hier = float("inf")
    for _ in range(repeats):
        flat = min(flat, _measure_once("process", world_size, nbytes,
                                       iterations))
        hier = min(hier, _measure_once("hier", world_size, nbytes,
                                       iterations, backend_opts=opts))
    return {"process": flat, "hier": hier}


def run_sweep(world_sizes=WORLD_SIZES, payloads=PAYLOAD_BYTES, iterations=10):
    rows = []
    for world_size in world_sizes:
        for nbytes in payloads:
            timings = measure_pair(world_size, nbytes, iterations=iterations)
            rows.append({
                "world_size": world_size,
                "payload_bytes": nbytes,
                "host_topology": two_host_topology(world_size),
                "flat_process_seconds": timings["process"],
                "hier_seconds": timings["hier"],
                "speedup": timings["process"] / timings["hier"],
            })
    return rows


def _acceptance(rows):
    target_row = next(
        (r for r in rows
         if r["world_size"] == 8 and r["payload_bytes"] == 4 << 20),
        None,
    )
    speedup = None if target_row is None else target_row["speedup"]
    return {
        "hier_vs_flat_process_p8_4mb": speedup,
        "target": TARGET_SPEEDUP,
        "pass": speedup is not None and speedup >= TARGET_SPEEDUP,
    }


def run_all(iterations=10, output_path=OUTPUT_PATH):
    rows = run_sweep(iterations=iterations)
    acceptance = _acceptance(rows)
    payload = {
        "benchmark": "hierarchical_exchange",
        "config": {
            "algorithm": ALGORITHM,
            "fusion_threshold_bytes": FUSION_THRESHOLD_BYTES,
            "pipeline_chunks": PIPELINE_CHUNKS,
            "iterations": iterations,
            "cpu_count": os.cpu_count(),
        },
        "rows": rows,
        "acceptance": acceptance,
    }
    if output_path is not None:
        Path(output_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ---------------------------------------------------------------------------
# pytest-benchmark entry point
# ---------------------------------------------------------------------------
def bench_hierarchical_speedup(benchmark):
    """hier vs flat process at the acceptance point (P=8, 4 MB, 2 hosts)."""
    if "hier" not in available_backends():
        import pytest

        pytest.skip("hier backend unavailable on this platform")

    def run():
        timings = measure_pair(8, 4 << 20, iterations=6, repeats=2)
        return timings["process"] / timings["hier"]

    speedup = benchmark(run)
    assert speedup >= TARGET_SPEEDUP, (
        f"hierarchical exchange only {speedup:.2f}x faster than the flat "
        f"process backend at P=8 / 4 MB (need >= {TARGET_SPEEDUP}x)"
    )


# ---------------------------------------------------------------------------
# standalone report
# ---------------------------------------------------------------------------
def _format_rows(rows):
    lines = [
        f"{'P':>2s} {'payload':>8s} {'hosts':>12s} {'flat ms':>10s} "
        f"{'hier ms':>10s} {'speedup':>8s}",
        "-" * 56,
    ]
    for r in rows:
        lines.append(
            f"{r['world_size']:2d} {r['payload_bytes'] / 2**20:6.0f}MB "
            f"{r['host_topology']:>12s} "
            f"{r['flat_process_seconds'] * 1e3:10.2f} "
            f"{r['hier_seconds'] * 1e3:10.2f} {r['speedup']:7.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    if "hier" not in available_backends():
        from repro.comm import backend_unavailable_reason

        print(
            "hier backend unavailable on this platform: "
            f"{backend_unavailable_reason('hier')}"
        )
        sys.exit(1)
    print(
        f"flat (process) vs hierarchical (hier) fused exchange "
        f"({ALGORITHM}, {FUSION_THRESHOLD_BYTES >> 20} MiB buffers, "
        f"{PIPELINE_CHUNKS} chunks, two simulated hosts)\n"
    )
    result = run_all()
    print(_format_rows(result["rows"]))
    acceptance = result["acceptance"]
    print(
        f"\nacceptance: hier vs flat process, P=8, 4 MB, 2 hosts: "
        f"{acceptance['hier_vs_flat_process_p8_4mb']:.2f}x "
        f"(need >= {TARGET_SPEEDUP}x): "
        f"{'PASS' if acceptance['pass'] else 'FAIL'}"
    )
    print(f"\nwrote {OUTPUT_PATH}")
    sys.exit(0 if acceptance["pass"] else 1)
