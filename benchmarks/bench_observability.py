"""Benchmark: flight-recorder overhead (ISSUE 9 deliverable).

Two measurements:

* **per-event microbench** — nanoseconds per recorded span/instant, and
  per *disabled* instrumentation site (no recorder bound), which is the
  cost every hot path pays when tracing is off;
* **end-to-end gate** — the same distributed training loop that
  ``python -m repro trace`` runs, timed in alternating untraced/traced
  step blocks *inside one launch* (barrier before each block).  Each
  adjacent (untraced, traced) block pair yields one paired difference;
  the overhead estimate is the **median paired difference** over all
  pairs, ranks, and launches, relative to the median untraced block.
  Pairing cancels launch overhead, warm-up, and the slow drift a shared
  CI box exhibits; the median sheds the multi-x scheduler blowups a
  timeshared core inflicts on individual blocks.  The estimate must
  stay within ``MAX_OVERHEAD_PCT``.

``python benchmarks/bench_observability.py`` prints the table and writes
machine-readable ``BENCH_observability.json`` at the repo root; with
``--check`` it exits non-zero when the end-to-end overhead gate fails
(the CI observability-smoke job runs that mode).

Note on substrate: single-core containers timeshare every rank, so the
recorded-event cost is amplified by scheduler switches landing inside
instrumented comm hops — the measured per-step tracing cost is a few
hundred microseconds regardless of step size.  The gate therefore runs
a representatively sized workload (the paper's 8192-dimensional model
at batch 256 per rank, ~10 ms steps) rather than a toy one whose
sub-millisecond steps would measure scheduler noise, not the recorder.
"""

import json
import statistics
import sys
import time
from pathlib import Path

from repro.comm.backend import launch
from repro.experiments.report import format_table
from repro.obs import recorder as _obs
from repro.obs.recorder import FlightRecorder

#: End-to-end overhead bound enforced by ``--check`` (percent).
MAX_OVERHEAD_PCT = 5.0

WORLD_SIZE = 2
#: Steps per timed block and alternating untraced/traced blocks per
#: launch (half each).  More, smaller blocks give the paired-difference
#: median more draws to vote down scheduler outliers.
BLOCK_STEPS = 5
BLOCKS = 12
#: Independent launches; pairs are pooled across all of them.
REPEATS = 2
MICRO_ITERS = 50_000
#: Workload size — the paper's Fig. 10 model (8192-dimensional) at a
#: realistic per-rank batch, so steps carry representative compute
#: weight (~10 ms).  Against a toy model with sub-millisecond steps the
#: fixed few-hundred-microsecond per-step recorder cost (GIL/scheduler
#: amplified on this single-core substrate) would dominate and the gate
#: would measure the container, not the recorder.
INPUT_DIM = 8_192
PER_RANK_BATCH = 256

#: Output file (repo root), committed as the observability perf anchor.
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"


# ---------------------------------------------------------------------------
# per-event microbench
# ---------------------------------------------------------------------------
def _best_of(fn, repeats: int = 5) -> float:
    """Minimum elapsed seconds of ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def micro_bench() -> dict:
    _obs.bind(None)

    def disabled_sites():
        for _ in range(MICRO_ITERS):
            with _obs.span("x", "bench"):
                pass

    disabled_s = _best_of(disabled_sites)

    rec = FlightRecorder(rank=0, capacity=8192)
    _obs.bind(rec)

    def enabled_spans():
        for _ in range(MICRO_ITERS):
            with _obs.span("x", "bench"):
                pass

    def enabled_instants():
        for _ in range(MICRO_ITERS):
            rec.instant("x", "bench")

    span_s = _best_of(enabled_spans)
    instant_s = _best_of(enabled_instants)
    _obs.bind(None)
    return {
        "iterations": MICRO_ITERS,
        "disabled_site_ns": 1e9 * disabled_s / MICRO_ITERS,
        "span_ns": 1e9 * span_s / MICRO_ITERS,
        "instant_ns": 1e9 * instant_s / MICRO_ITERS,
    }


# ---------------------------------------------------------------------------
# end-to-end: traced vs untraced training steps, paired within one launch
# ---------------------------------------------------------------------------
def _train_rank(comm):
    """Alternate untraced/traced step blocks; return both block-time lists."""
    from repro.data.hyperplane import HyperplaneDataset
    from repro.data.loader import ShardedLoader
    from repro.nn.losses import MSELoss
    from repro.nn.models.mlp import HyperplaneMLP
    from repro.nn.optim import SGD
    from repro.training.distributed_sgd import DistributedSGD
    from repro.training.exchange import build_exchange

    model = HyperplaneMLP(INPUT_DIM, seed=0)
    exchange = build_exchange(
        comm, max(1, model.num_parameters()), "sync", fusion_buckets=2
    )
    sgd = DistributedSGD(
        model, SGD(model, 0.05), exchange, MSELoss(),
        world_size=comm.size, classification=False,
    )
    global_batch = PER_RANK_BATCH * comm.size
    total_steps = BLOCK_STEPS * (BLOCKS + 1)  # +1 warm-up block
    dataset = HyperplaneDataset(
        num_examples=global_batch * total_steps, input_dim=INPUT_DIM,
        noise_std=0.5, seed=0,
    )
    loader = ShardedLoader(
        dataset, global_batch, rank=comm.rank,
        world_size=comm.size, seed=0,
    )
    batches = iter(list(loader.epoch_batches(0)))
    try:
        for _ in range(BLOCK_STEPS):  # warm-up: numpy buffers, tag mints
            sgd.step(next(batches))
        untraced, traced = [], []
        recorder = FlightRecorder(rank=comm.rank)
        for block in range(BLOCKS):
            is_traced = block % 2 == 1
            if is_traced:
                _obs.bind(recorder)
            comm.barrier()  # pair block starts across ranks
            t0 = time.perf_counter()
            for _ in range(BLOCK_STEPS):
                sgd.step(next(batches))
            elapsed = time.perf_counter() - t0
            _obs.bind(None)
            (traced if is_traced else untraced).append(elapsed)
        sgd.close()
        return untraced, traced
    finally:
        _obs.bind(None)


def end_to_end_bench() -> dict:
    # One paired difference per adjacent (untraced, traced) block pair,
    # pooled over every rank and launch; the median pair beats both the
    # mean (multi-x scheduler blowups) and min-of-floors (two
    # independent minima straddle the gate run to run).
    diffs: list = []
    untraced_all: list = []
    for _ in range(REPEATS):
        results = launch(_train_rank, WORLD_SIZE, backend="thread", timeout=300.0)
        for rank_untraced, rank_traced in results:
            untraced_all.extend(rank_untraced)
            diffs.extend(
                t - u for u, t in zip(rank_untraced, rank_traced)
            )
    median_diff = statistics.median(diffs)
    median_untraced = statistics.median(untraced_all)
    overhead_pct = 100.0 * median_diff / median_untraced
    return {
        "world_size": WORLD_SIZE,
        "block_steps": BLOCK_STEPS,
        "blocks": BLOCKS,
        "repeats": REPEATS,
        "pairs": len(diffs),
        "untraced_block_s": median_untraced,
        "median_pair_diff_s": median_diff,
        "untraced_step_ms": 1e3 * median_untraced / BLOCK_STEPS,
        "overhead_step_us": 1e6 * median_diff / BLOCK_STEPS,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    check = "--check" in argv

    micro = micro_bench()
    e2e = end_to_end_bench()

    print(format_table(
        ["measurement", "value"],
        [
            ("disabled site (ns/event)", f"{micro['disabled_site_ns']:.0f}"),
            ("recorded span (ns/event)", f"{micro['span_ns']:.0f}"),
            ("recorded instant (ns/event)", f"{micro['instant_ns']:.0f}"),
            ("untraced step, median (ms)", f"{e2e['untraced_step_ms']:.2f}"),
            ("tracing cost/step, median pair (us)", f"{e2e['overhead_step_us']:+.0f}"),
            ("end-to-end overhead (%)", f"{e2e['overhead_pct']:+.2f}"),
        ],
        title=f"Flight-recorder overhead (P={WORLD_SIZE}, "
        f"{BLOCKS}x{BLOCK_STEPS}-step paired blocks, {REPEATS} launches)",
    ))

    payload = {
        "benchmark": "observability",
        "micro": micro,
        "end_to_end": e2e,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")

    if e2e["overhead_pct"] > MAX_OVERHEAD_PCT:
        print(
            f"OVERHEAD GATE FAILED: {e2e['overhead_pct']:+.2f}% > "
            f"{MAX_OVERHEAD_PCT}%"
        )
        return 1 if check else 0
    print(f"overhead gate: {e2e['overhead_pct']:+.2f}% <= {MAX_OVERHEAD_PCT}% OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
