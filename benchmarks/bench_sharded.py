"""Benchmark: ZeRO-1 sharded exchange vs. the dense replicated update.

Acceptance bar of the sharded-optimizer PR (ISSUE 10), at P = 8 with a
4 MB gradient on the ``process`` backend:

* the zero1 pipeline's **measured** per-rank wire bytes are <= 0.6x the
  dense baseline's (the seed's recursive-doubling allreduce sends the
  full vector every round; the sharded ring sends ``2 (P-1)/P`` of it in
  total);
* one zero1 step (reduce-scatter + owned-window Adam + parameter
  allgather) is >= 1.15x faster end to end than the dense exchange plus
  the replicated full Adam step;
* the per-rank Adam state footprint is <= ``1/P + eps`` of the dense
  optimizer's.

Wire bytes are not modelled: *both* paths run with the communicator
wrapped in the exchange layer's byte-counting proxy
(:class:`repro.training.exchange._WireCountingComm`), so the columns are
the bytes each rank actually pushed into ``send``.  A single-buffer ring
dense row rides along ungated — it shows how much of the win is the
schedule (ring vs. RD) and how much is the sharded update.

``python benchmarks/bench_sharded.py`` prints the table, writes
``BENCH_sharded.json`` at the repo root, and exits non-zero if any gate
fails.  Under pytest-benchmark the same harness is timed and asserted.

Note on substrate: this container serialises every rank onto one core,
so absolute times mix scheduling latency into each hop; the *ratios*
between configurations under identical scheduling are the signal.
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.comm import launch
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.parameters import assign_flat_gradients
from repro.training.exchange import (
    ShardedExchange,
    SynchronousExchange,
    _WireCountingComm,
)

#: Acceptance thresholds at P = 8 / 4 MB on the process backend.
TARGET_WIRE_RATIO = 0.6
TARGET_SPEEDUP = 1.15
#: Per-rank optimizer state must shrink to ~1/P of the replicated dense
#: footprint (slack for uneven shard windows).
STATE_EPS = 0.01

FUSION_THRESHOLD_BYTES = 2 * 1024 * 1024
PIPELINE_CHUNKS = 2

WORLD_SIZES = (4, 8)
PAYLOAD_BYTES = (1 << 20, 4 << 20)
BACKEND = "process"

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"

CONFIGS = {
    # The seed's exchange: one blocking recursive-doubling allreduce of
    # the (bucketed) gradient, then every rank runs the full Adam step.
    "dense-rd": dict(sharded=False, algorithm="recursive_doubling"),
    # Schedule ablation (ungated): bandwidth-optimal ring, still a
    # replicated dense update.
    "dense-ring": dict(sharded=False, algorithm="ring"),
    # The PR: ring reduce-scatter -> owned-window Adam -> parameter
    # allgather, optimizer state sharded ~1/P per rank.
    "zero1-ring": dict(sharded=True, algorithm="ring"),
}


def _step_worker(comm, config_name, nbytes, iterations):
    """Run ``iterations`` full training steps; return times/wire/state."""
    spec = CONFIGS[config_name]
    elements = nbytes // 8
    model = Module()
    model.add_parameter("theta", np.zeros(elements))
    optimizer = Adam(model, 1e-3)
    gradient = np.random.default_rng(comm.rank).standard_normal(elements)

    if spec["sharded"]:
        exchange = ShardedExchange(
            comm,
            algorithm=spec["algorithm"],
            fusion_threshold_bytes=FUSION_THRESHOLD_BYTES,
            pipeline_chunks=PIPELINE_CHUNKS,
        )

        def step():
            return exchange.exchange_update(gradient, model, optimizer)

        counting = exchange.comm  # the exchange installs its own proxy
    else:
        counting = _WireCountingComm(comm)
        exchange = SynchronousExchange(
            counting,
            algorithm=spec["algorithm"],
            fusion_threshold_bytes=FUSION_THRESHOLD_BYTES,
            pipeline_chunks=PIPELINE_CHUNKS,
        )

        def step():
            result = exchange.exchange(gradient)
            assign_flat_gradients(model, result.gradient)
            optimizer.step()
            return result

    step()  # warmup (buffers, rings, sockets, lazy optimizer state)
    sent_before = counting.bytes_sent
    times = []
    for _ in range(iterations):
        comm.barrier()
        start = time.perf_counter()
        step()
        times.append(time.perf_counter() - start)
    wire_per_step = (counting.bytes_sent - sent_before) / iterations
    return times, wire_per_step, optimizer.state_bytes()


def _measure_once(config_name, world_size, nbytes, iterations):
    outputs = launch(
        _step_worker, world_size, config_name, nbytes, iterations,
        backend=BACKEND, timeout=900,
    )
    # A step completes when the slowest rank holds the updated model; the
    # min over iterations is the least-noise estimator.
    step_times = np.asarray([o[0] for o in outputs])
    return {
        "seconds": float(np.min(np.max(step_times, axis=0))),
        "wire_bytes": float(max(o[1] for o in outputs)),
        "state_bytes": int(max(o[2] for o in outputs)),
    }


def measure_point(world_size, nbytes, iterations=5, repeats=3):
    """All configurations at one (P, payload), repeats *interleaved*.

    Machine-level drift (CPU steal, thermal throttling) moves on a
    seconds timescale; cycling the configurations per repeat exposes all
    of them to the same drift, keeping the ratios honest.
    """
    best = {}
    for _ in range(repeats):
        for name in CONFIGS:
            m = _measure_once(name, world_size, nbytes, iterations)
            prev = best.get(name)
            if prev is None or m["seconds"] < prev["seconds"]:
                m["wire_bytes"] = max(
                    m["wire_bytes"], prev["wire_bytes"] if prev else 0.0
                )
                best[name] = m
    return best


def run_sweep(world_sizes=WORLD_SIZES, payloads=PAYLOAD_BYTES, iterations=5,
              repeats=3):
    rows = []
    for world_size in world_sizes:
        for nbytes in payloads:
            point = measure_point(
                world_size, nbytes, iterations=iterations, repeats=repeats
            )
            baseline = point["dense-rd"]
            for name, m in point.items():
                rows.append({
                    "configuration": name,
                    "world_size": world_size,
                    "payload_bytes": nbytes,
                    "seconds_per_step": m["seconds"],
                    "wire_bytes_per_rank": m["wire_bytes"],
                    "optimizer_state_bytes": m["state_bytes"],
                    "speedup_vs_dense_rd": baseline["seconds"] / m["seconds"],
                    "wire_ratio_vs_dense_rd":
                        m["wire_bytes"] / baseline["wire_bytes"],
                })
    return rows


def _acceptance(rows):
    def row(name):
        return next(
            (r for r in rows
             if r["configuration"] == name and r["world_size"] == 8
             and r["payload_bytes"] == 4 << 20),
            None,
        )

    dense, zero1 = row("dense-rd"), row("zero1-ring")
    if dense is None or zero1 is None:
        return {"pass": False, "reason": "acceptance point not measured"}
    wire_ratio = zero1["wire_bytes_per_rank"] / dense["wire_bytes_per_rank"]
    speedup = dense["seconds_per_step"] / zero1["seconds_per_step"]
    state_fraction = (
        zero1["optimizer_state_bytes"] / dense["optimizer_state_bytes"]
    )
    state_bound = 1.0 / 8 + STATE_EPS
    return {
        "zero1_wire_ratio_p8_4mb": wire_ratio,
        "wire_target": TARGET_WIRE_RATIO,
        "zero1_speedup_p8_4mb": speedup,
        "speedup_target": TARGET_SPEEDUP,
        "zero1_state_fraction_p8_4mb": state_fraction,
        "state_target": state_bound,
        "pass": (
            wire_ratio <= TARGET_WIRE_RATIO
            and speedup >= TARGET_SPEEDUP
            and state_fraction <= state_bound
        ),
    }


def run_all(iterations=5, repeats=3, output_path=OUTPUT_PATH):
    rows = run_sweep(iterations=iterations, repeats=repeats)
    acceptance = _acceptance(rows)
    payload = {
        "benchmark": "sharded_optimizer_exchange",
        "config": {
            "backend": BACKEND,
            "optimizer": "adam",
            "fusion_threshold_bytes": FUSION_THRESHOLD_BYTES,
            "pipeline_chunks": PIPELINE_CHUNKS,
            "iterations": iterations,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
        },
        "rows": rows,
        "acceptance": acceptance,
    }
    if output_path is not None:
        Path(output_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ---------------------------------------------------------------------------
# pytest-benchmark entry point
# ---------------------------------------------------------------------------
def bench_sharded_exchange(benchmark):
    """zero1 vs dense RD at the acceptance point (P=8, 4 MB, process)."""

    def run():
        point = measure_point(8, 4 << 20, iterations=4, repeats=2)
        return point

    point = benchmark(run)
    dense, zero1 = point["dense-rd"], point["zero1-ring"]
    wire_ratio = zero1["wire_bytes"] / dense["wire_bytes"]
    speedup = dense["seconds"] / zero1["seconds"]
    assert wire_ratio <= TARGET_WIRE_RATIO, (
        f"zero1 wire is {wire_ratio:.2f}x the dense RD exchange at P=8 / 4 MB "
        f"(need <= {TARGET_WIRE_RATIO}x)"
    )
    assert speedup >= TARGET_SPEEDUP, (
        f"zero1 step only {speedup:.2f}x faster than dense RD + replicated "
        f"Adam at P=8 / 4 MB (need >= {TARGET_SPEEDUP}x)"
    )


# ---------------------------------------------------------------------------
# standalone report
# ---------------------------------------------------------------------------
def _format_rows(rows):
    lines = [
        f"{'config':>12s} {'P':>2s} {'payload':>8s} {'ms/step':>10s} "
        f"{'wire MB/rank':>13s} {'state MB':>9s} {'speedup':>8s} {'wire x':>7s}",
        "-" * 76,
    ]
    for r in rows:
        lines.append(
            f"{r['configuration']:>12s} {r['world_size']:2d} "
            f"{r['payload_bytes'] / 2**20:6.0f}MB "
            f"{r['seconds_per_step'] * 1e3:10.2f} "
            f"{r['wire_bytes_per_rank'] / 2**20:13.2f} "
            f"{r['optimizer_state_bytes'] / 2**20:9.2f} "
            f"{r['speedup_vs_dense_rd']:7.2f}x "
            f"{r['wire_ratio_vs_dense_rd']:6.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(
        f"dense replicated update vs zero1 sharded exchange "
        f"({BACKEND} backend, Adam, {FUSION_THRESHOLD_BYTES >> 20} MiB "
        f"buffers, {PIPELINE_CHUNKS} chunks)\n"
    )
    result = run_all()
    print(_format_rows(result["rows"]))
    a = result["acceptance"]
    print(
        f"\nacceptance (P=8, 4 MB, process):"
        f"\n  wire    {a['zero1_wire_ratio_p8_4mb']:.3f}x dense RD "
        f"(need <= {a['wire_target']})"
        f"\n  speedup {a['zero1_speedup_p8_4mb']:.2f}x over dense RD + "
        f"replicated Adam (need >= {a['speedup_target']})"
        f"\n  state   {a['zero1_state_fraction_p8_4mb']:.4f} of dense "
        f"(need <= {a['state_target']:.4f})"
        f"\n  {'PASS' if a['pass'] else 'FAIL'}"
    )
    print(f"\nwrote {OUTPUT_PATH}")
    sys.exit(0 if a["pass"] else 1)
