"""Benchmark: fused/chunked gradient exchange vs. unfused single buffer.

The acceptance bar for the fusion-pipeline subsystem: for a >= 4 MB
simulated gradient at P = 8, the chunked/fused exchange must be at least
1.3x faster than the seed's unfused single-buffer exchange (one blocking
recursive-doubling allreduce of the whole flat gradient).

``python benchmarks/bench_fusion_pipeline.py`` prints the comparison
table; under pytest-benchmark the same harness is timed and asserted.
"""

import numpy as np

from repro.comm import launch
from repro.experiments import fusion_pipeline
from repro.training.exchange import SynchronousExchange

#: The acceptance threshold on the modelled speedup at P = 8.
TARGET_SPEEDUP = 1.3
WORKLOAD_MB = 4.0


def _run_model():
    return fusion_pipeline.run(
        world_sizes=(4, 8, 16), gradient_mb=WORKLOAD_MB, bucket_mb=(1.0, 4.0), n_chunks=8
    )


def bench_fusion_pipeline_model(benchmark):
    result = benchmark(_run_model)
    print()
    print(fusion_pipeline.report(result))
    headline = result.headline_speedup(world_size=8)
    assert headline >= TARGET_SPEEDUP, (
        f"chunked/fused exchange only {headline:.2f}x faster than the unfused "
        f"single-buffer baseline at P=8 (need >= {TARGET_SPEEDUP}x)"
    )
    # Every chunked/fused configuration at P = 8 clears the bar, not just
    # the best one.
    for row in result.rows:
        if row.world_size == 8 and (row.n_chunks > 1 or row.buckets > 1):
            assert row.speedup >= TARGET_SPEEDUP, row


def bench_fused_exchange_functional(benchmark):
    """Thread-backed fused exchange: correctness + wall-clock statistics."""
    elements = 1 << 14

    def once():
        def worker(comm):
            exchange = SynchronousExchange(
                comm,
                algorithm="ring",
                fusion_threshold_bytes=32 * 1024,
                pipeline_chunks=4,
            )
            result = exchange.exchange(np.full(elements, comm.rank + 1.0))
            return float(result.gradient[0]), len(result.bucket_waits)

        return launch(worker, 4)

    results = benchmark(once)
    for value, buckets in results:
        assert abs(value - 2.5) < 1e-12
        assert buckets == elements * 8 // (32 * 1024)


if __name__ == "__main__":
    result = _run_model()
    result.functional_rows = fusion_pipeline.run_functional()
    print(fusion_pipeline.report(result))
    headline = result.headline_speedup(world_size=8)
    status = "PASS" if headline >= TARGET_SPEEDUP else "FAIL"
    print(f"\nacceptance ({TARGET_SPEEDUP}x at P=8, {WORKLOAD_MB:g} MB): {status}")
