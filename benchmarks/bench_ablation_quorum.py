"""Ablation: the solo -- majority -- full quorum spectrum.

The paper's conclusions suggest "a spectrum between solo, majority, and
full collectives" obtained by varying the quorum size.  This benchmark
sweeps the quorum from 1 to P through the latency model and through the
training-time projection, showing the latency / freshness trade-off.
"""

import numpy as np

from repro.experiments.report import format_table
from repro.simtime import StepTimeline, linear_skew, project_training_time
from repro.simtime.collective_model import quorum_allreduce_latencies


def bench_ablation_quorum_latency(benchmark):
    world_size = 32
    arrivals = linear_skew(world_size, 1.0)

    def sweep():
        rows = []
        for quorum in (1, 4, 8, 16, 24, 32):
            res = quorum_allreduce_latencies(arrivals, 32 * 1024, quorum=quorum)
            rows.append((quorum, res.average_latency * 1e3, res.num_active))
        return rows

    rows = benchmark(sweep)
    print()
    print(
        format_table(
            ["quorum", "avg latency (ms)", "active processes"],
            rows,
            title="Ablation: quorum spectrum (32 ranks, 1 ms/rank skew, 32 KB)",
        )
    )
    latencies = [r[1] for r in rows]
    naps = [r[2] for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(latencies, latencies[1:]))
    assert all(b >= a for a, b in zip(naps, naps[1:]))


def bench_ablation_quorum_training_time(benchmark):
    rng = np.random.default_rng(0)
    durations = np.abs(rng.normal(0.45, 0.1, size=(200, 16)))
    durations[:, 0] += rng.exponential(0.3, size=200)  # one noisy straggler
    timeline = StepTimeline(durations)

    def sweep():
        rows = []
        for quorum in (1, 4, 8, 12, 16):
            proj = project_training_time(
                timeline, "quorum", gradient_bytes=25_000_000 * 4, quorum=quorum, seed=1
            )
            rows.append((quorum, proj.total_time, float(proj.num_active_per_step.mean())))
        sync = project_training_time(timeline, "sync", gradient_bytes=25_000_000 * 4)
        rows.append(("sync (full)", sync.total_time, 16.0))
        return rows

    rows = benchmark(sweep)
    print()
    print(
        format_table(
            ["quorum", "projected training time (s)", "mean fresh contributors"],
            rows,
            title="Ablation: quorum size vs projected training time (16 ranks)",
        )
    )
    times = [r[1] for r in rows[:-1]]
    assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))
