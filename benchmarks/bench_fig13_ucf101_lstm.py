"""Benchmark regenerating Fig. 13 (LSTM / UCF101-like video classification).

Paper headline: on the inherently imbalanced video workload, eager-SGD
(solo) is 1.64x faster than Horovod but loses accuracy; eager-SGD
(majority) is 1.27x faster with equivalent accuracy.
"""

from repro.experiments import fig13_ucf101_lstm


def bench_fig13_ucf101_lstm(benchmark):
    result = benchmark.pedantic(
        lambda: fig13_ucf101_lstm.run(scale="small", seed=0, time_scale=0.0005),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig13_ucf101_lstm.report(result))
    comp = result.comparison
    solo_speedup = comp.speedup_over("eager-SGD (solo)")
    majority_speedup = comp.speedup_over("eager-SGD (majority)")
    assert solo_speedup > 1.0
    assert majority_speedup > 1.0
    # Solo skips more contributors than majority on this workload.
    solo_nap = comp.results["eager-SGD (solo)"].epochs[-1].mean_num_active
    majority_nap = comp.results["eager-SGD (majority)"].epochs[-1].mean_num_active
    assert solo_nap < majority_nap
    # Majority's accuracy stays within reach of the synchronous baseline.
    sync_acc = comp.results["synch-SGD (Horovod)"].final_epoch.eval_top1
    majority_acc = comp.results["eager-SGD (majority)"].final_epoch.eval_top1
    assert majority_acc >= sync_acc - 0.15
