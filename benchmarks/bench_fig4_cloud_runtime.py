"""Benchmark regenerating Fig. 4 (cloud ResNet-50 runtime distribution)."""

from repro.experiments import fig4_cloud_runtime


def bench_fig4_cloud_runtime(benchmark):
    result = benchmark(lambda: fig4_cloud_runtime.run(num_batches=30_000, seed=0))
    print()
    print(fig4_cloud_runtime.report(result))
    assert result.runtime_summary_ms.min >= 399
    assert abs(result.runtime_summary_ms.mean - 454) / 454 < 0.15
    assert result.runtime_summary_ms.max > 1200
