"""Benchmark regenerating Fig. 3 (Transformer/WMT runtime distribution)."""

from repro.experiments import fig3_wmt_runtime


def bench_fig3_wmt_runtime(benchmark):
    result = benchmark(lambda: fig3_wmt_runtime.run(num_sentences=100_000, seed=0))
    print()
    print(fig3_wmt_runtime.report(result))
    assert 120 < result.runtime_summary_ms.min < 300
    assert abs(result.runtime_summary_ms.mean - 475) / 475 < 0.4
    assert result.runtime_summary_ms.max > 2 * result.runtime_summary_ms.mean
