"""Raw throughput of the collective primitives on the default backend.

These are plain performance benchmarks (pytest-benchmark statistics) for
the building blocks: synchronous allreduce, broadcast, solo allreduce and
majority allreduce over 4 ranks.  ``launch`` honours the
``REPRO_COMM_BACKEND`` environment variable, so the same file benchmarks
the thread or the process transport without edits.
"""

import numpy as np

from repro.comm import launch
from repro.collectives import allreduce, broadcast
from repro.collectives.partial import MajorityAllreduce, SoloAllreduce

WORLD = 4
ELEMENTS = 16 * 1024


def bench_sync_allreduce_4_ranks(benchmark):
    def once():
        return launch(
            lambda comm: allreduce(comm, np.ones(ELEMENTS), average=True)[0], WORLD
        )

    results = benchmark(once)
    assert all(abs(r - 1.0) < 1e-12 for r in results)


def bench_broadcast_4_ranks(benchmark):
    def once():
        return launch(
            lambda comm: broadcast(
                comm, np.ones(ELEMENTS) if comm.rank == 0 else None, root=0
            )[0],
            WORLD,
        )

    results = benchmark(once)
    assert all(r == 1.0 for r in results)


def _partial_rounds(comm, cls, rounds=4):
    partial = cls(comm, (ELEMENTS,), seed=1)
    out = 0.0
    for _ in range(rounds):
        out = float(partial.reduce(np.ones(ELEMENTS)).data[0])
    partial.close()
    return out


def bench_solo_allreduce_4_ranks(benchmark):
    # A round's average can exceed 1.0 when slow ranks contribute several
    # accumulated (stale) gradients at once; it is bounded by the number
    # of rounds each rank contributes to.
    results = benchmark(lambda: launch(_partial_rounds, WORLD, SoloAllreduce))
    assert all(0.0 <= r <= 4.0 + 1e-9 for r in results)


def bench_majority_allreduce_4_ranks(benchmark):
    results = benchmark(lambda: launch(_partial_rounds, WORLD, MajorityAllreduce))
    assert all(0.0 <= r <= 4.0 + 1e-9 for r in results)
