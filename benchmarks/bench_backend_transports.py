"""Benchmark: transport backends and narrow-dtype reduction kernels.

Acceptance bars of the shared-memory transport PR (ISSUE 5):

1. **Transport**: at P = 8 with a 4 MB gradient, the ``shm`` backend's
   fused exchange must be >= 1.5x faster than the TCP ``process``
   backend under the same representative tuned configuration (ring
   algorithm, 2 MiB fusion buffers, 2 pipeline chunks — the shape the
   PR-2 autotuner recommends in this size regime).
2. **Kernels**: the vectorised widen-accumulate-narrow fp16 kernel
   (:func:`repro.comm.reduce_kernels.reduce_segments`) must be >= 3x
   faster than the pre-PR scalar ``combine_into`` path (NumPy's native
   element-at-a-time float16 loop) when folding ``P - 1 = 7`` incoming
   segments into an accumulator — the shape of a P = 8 tree reduction
   or a partial collective's stale accumulation.

``python benchmarks/bench_backend_transports.py`` sweeps backend x
world size x payload, prints the table with implied per-rank exchange
bandwidth, writes machine-readable ``BENCH_transports.json`` next to
the repo root (the start of the perf trajectory), and exits non-zero if
either bar fails.  Under pytest-benchmark the same harnesses are timed
and asserted.

Note on substrate: this container serialises every rank onto one core,
so absolute times mix scheduling latency into each hop; the *ratio*
between transports under identical scheduling is the signal.
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.comm import available_backends, launch
from repro.comm import reduce_kernels
from repro.comm.reduce_ops import SUM
from repro.training.exchange import SynchronousExchange

#: Acceptance threshold: shm vs process, P = 8, 4 MB fused exchange.
TARGET_TRANSPORT_SPEEDUP = 1.5
#: Acceptance threshold: vectorised fp16 kernel vs scalar combine_into.
TARGET_KERNEL_SPEEDUP = 3.0

#: The representative tuned exchange configuration of the sweep.
ALGORITHM = "ring"
FUSION_THRESHOLD_BYTES = 2 * 1024 * 1024
PIPELINE_CHUNKS = 2

BACKENDS = ("thread", "process", "shm")
WORLD_SIZES = (2, 4, 8)
PAYLOAD_BYTES = (1 << 20, 4 << 20)

#: Output file (repo root), committed as the perf trajectory's anchor.
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_transports.json"


def _exchange_worker(comm, nbytes, iterations):
    exchange = SynchronousExchange(
        comm,
        algorithm=ALGORITHM,
        fusion_threshold_bytes=FUSION_THRESHOLD_BYTES,
        pipeline_chunks=PIPELINE_CHUNKS,
    )
    gradient = np.random.default_rng(comm.rank).standard_normal(nbytes // 8)
    exchange.exchange(gradient)  # warmup (buffers, rings, sockets)
    times = []
    for _ in range(iterations):
        comm.barrier()
        start = time.perf_counter()
        exchange.exchange(gradient)
        times.append(time.perf_counter() - start)
    return times


def measure_exchange(backend, world_size, nbytes, iterations=6, repeats=3):
    """Per-exchange wall clock: best iteration across ``repeats`` worlds.

    The exchange completes when the slowest rank holds the averaged
    gradient, so each iteration's duration is the max across ranks.
    Every rank of this container shares one core, so any single
    iteration can eat an unrelated scheduling stall; the minimum over
    iterations and worlds is the standard least-noise estimator of the
    intrinsic cost (the same choice the calibration ping-pong makes),
    and it is applied identically to every backend.
    """
    best = float("inf")
    for _ in range(repeats):
        best = min(best, _measure_exchange_once(backend, world_size, nbytes,
                                                iterations))
    return best


def _measure_exchange_once(backend, world_size, nbytes, iterations):
    outputs = launch(
        _exchange_worker, world_size, nbytes, iterations,
        backend=backend, timeout=900,
    )
    return float(np.min(np.max(np.asarray(outputs), axis=0)))


def measure_exchange_pair(backends, world_size, nbytes, iterations=10, repeats=4):
    """Best exchange time per backend, with the repeats *interleaved*.

    Machine-level drift (host CPU steal, thermal throttling) moves on a
    seconds timescale; alternating the backends per repeat exposes both
    to the same drift, making their ratio robust where back-to-back
    blocks would charge the drift to whichever ran second.
    """
    best = {backend: float("inf") for backend in backends}
    for _ in range(repeats):
        for backend in backends:
            best[backend] = min(
                best[backend],
                _measure_exchange_once(backend, world_size, nbytes, iterations),
            )
    return best


def implied_bandwidth_gbps(nbytes, world_size, seconds):
    """Per-rank wire bandwidth the measured exchange implies (GB/s).

    A ring allreduce moves ``2 * (P - 1) / P * nbytes`` per rank; the
    number is what the transport actually sustained, scheduling
    included, making backends comparable at a glance.
    """
    wire = 2.0 * (world_size - 1) / world_size * nbytes
    return wire / seconds / 1e9


def run_transport_sweep(backends=BACKENDS, world_sizes=WORLD_SIZES,
                        payloads=PAYLOAD_BYTES, iterations=10):
    rows = []
    live = [b for b in backends if b in available_backends()]
    for world_size in world_sizes:
        for nbytes in payloads:
            timings = measure_exchange_pair(live, world_size, nbytes,
                                            iterations=iterations)
            reference = timings.get("process")
            for backend in live:
                seconds = timings[backend]
                rows.append({
                    "backend": backend,
                    "world_size": world_size,
                    "payload_bytes": nbytes,
                    "seconds": seconds,
                    "implied_gbps": implied_bandwidth_gbps(
                        nbytes, world_size, seconds
                    ),
                    "speedup_vs_process": (
                        None if reference is None else reference / seconds
                    ),
                })
    return rows


# ---------------------------------------------------------------------------
# fp16 reduction-kernel micro-benchmark
# ---------------------------------------------------------------------------
def measure_fp16_kernel(world_size, elements=1 << 18, iterations=40):
    """Scalar vs vectorised fold of ``P - 1`` fp16 segments.

    The scalar path is the pre-PR ``combine_into``: one native NumPy
    float16 ufunc call per segment (element-at-a-time conversions).  The
    vectorised path is :func:`repro.comm.reduce_kernels.reduce_segments`
    (widen to float32 once, fused cast-and-add per segment, narrow
    once).  The default operand is 2**18 elements — one fusion bucket
    of the sweep's 2 MiB threshold at the dense 8 B/element width, i.e.
    the buffer a per-bucket reduction actually hands the kernel.
    """
    rng = np.random.default_rng(0)
    out = rng.standard_normal(elements).astype(np.float16)
    segments = [
        rng.standard_normal(elements).astype(np.float16)
        for _ in range(max(1, world_size - 1))
    ]

    def scalar():
        acc = out.copy()
        for segment in segments:
            SUM.ufunc(acc, segment, out=acc)  # the pre-PR in-place path
        return acc

    def vectorised():
        return reduce_kernels.reduce_segments(np.add, out.copy(), segments)

    # Interleave the two measurements: machine-level drift then hits
    # both paths alike and cancels out of the ratio.
    scalar()
    vectorised()
    scalar_seconds = float("inf")
    vector_seconds = float("inf")
    for _ in range(iterations):
        start = time.perf_counter()
        scalar()
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        vectorised()
        vector_seconds = min(vector_seconds, time.perf_counter() - start)
    return {
        "world_size": world_size,
        "elements": elements,
        "segments": len(segments),
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
    }


def run_kernel_sweep(world_sizes=WORLD_SIZES):
    return [measure_fp16_kernel(world_size) for world_size in world_sizes]


# ---------------------------------------------------------------------------
# acceptance + report
# ---------------------------------------------------------------------------
def _acceptance(transport_rows, kernel_rows):
    by_key = {
        (r["backend"], r["world_size"], r["payload_bytes"]): r
        for r in transport_rows
    }
    shm_row = by_key.get(("shm", 8, 4 << 20))
    transport_speedup = (
        None if shm_row is None else shm_row["speedup_vs_process"]
    )
    kernel_speedup = next(
        (k["speedup"] for k in kernel_rows if k["world_size"] == 8), None
    )
    return {
        "shm_vs_process_p8_4mb": transport_speedup,
        "transport_target": TARGET_TRANSPORT_SPEEDUP,
        "fp16_kernel_speedup_p8": kernel_speedup,
        "kernel_target": TARGET_KERNEL_SPEEDUP,
        "transport_pass": (
            transport_speedup is not None
            and transport_speedup >= TARGET_TRANSPORT_SPEEDUP
        ),
        "kernel_pass": (
            kernel_speedup is not None
            and kernel_speedup >= TARGET_KERNEL_SPEEDUP
        ),
    }


def run_all(iterations=10, output_path=OUTPUT_PATH):
    transport_rows = run_transport_sweep(iterations=iterations)
    kernel_rows = run_kernel_sweep()
    acceptance = _acceptance(transport_rows, kernel_rows)
    payload = {
        "benchmark": "backend_transports",
        "config": {
            "algorithm": ALGORITHM,
            "fusion_threshold_bytes": FUSION_THRESHOLD_BYTES,
            "pipeline_chunks": PIPELINE_CHUNKS,
            "iterations": iterations,
            "cpu_count": os.cpu_count(),
        },
        "transports": transport_rows,
        "kernels": kernel_rows,
        "acceptance": acceptance,
    }
    if output_path is not None:
        Path(output_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------
def bench_shm_transport_speedup(benchmark):
    """shm vs TCP process backend at the acceptance point (P=8, 4 MB)."""
    if "shm" not in available_backends():
        import pytest

        pytest.skip("shm backend unavailable on this platform")

    def run():
        process = measure_exchange("process", 8, 4 << 20, iterations=6)
        shm = measure_exchange("shm", 8, 4 << 20, iterations=6)
        return process / shm

    speedup = benchmark(run)
    assert speedup >= TARGET_TRANSPORT_SPEEDUP, (
        f"shm exchange only {speedup:.2f}x faster than the TCP process "
        f"backend at P=8 / 4 MB (need >= {TARGET_TRANSPORT_SPEEDUP}x)"
    )


def bench_fp16_kernel_speedup(benchmark):
    """Vectorised fp16 fold vs the scalar combine_into path at P=8."""
    row = benchmark(lambda: measure_fp16_kernel(8))
    assert row["speedup"] >= TARGET_KERNEL_SPEEDUP, (
        f"vectorised fp16 kernel only {row['speedup']:.2f}x over the "
        f"scalar path (need >= {TARGET_KERNEL_SPEEDUP}x)"
    )


# ---------------------------------------------------------------------------
# standalone report
# ---------------------------------------------------------------------------
def _format_transports(rows):
    lines = [
        f"{'backend':8s} {'P':>2s} {'payload':>8s} {'ms/exchange':>12s} "
        f"{'GB/s/rank':>10s} {'vs process':>10s}",
        "-" * 58,
    ]
    for r in rows:
        speedup = r["speedup_vs_process"]
        lines.append(
            f"{r['backend']:8s} {r['world_size']:2d} "
            f"{r['payload_bytes'] / 2**20:6.0f}MB {r['seconds'] * 1e3:12.2f} "
            f"{r['implied_gbps']:10.2f} "
            + (f"{speedup:9.2f}x" if speedup is not None else f"{'-':>10s}")
        )
    return "\n".join(lines)


def _format_kernels(rows):
    lines = [
        f"{'P':>2s} {'segments':>8s} {'scalar ms':>10s} {'vector ms':>10s} "
        f"{'speedup':>8s}",
        "-" * 44,
    ]
    for r in rows:
        lines.append(
            f"{r['world_size']:2d} {r['segments']:8d} "
            f"{r['scalar_seconds'] * 1e3:10.3f} "
            f"{r['vectorized_seconds'] * 1e3:10.3f} {r['speedup']:7.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(
        f"transport sweep ({ALGORITHM} fused exchange, "
        f"{FUSION_THRESHOLD_BYTES >> 20} MiB buffers, "
        f"{PIPELINE_CHUNKS} chunks)\n"
    )
    result = run_all()
    print(_format_transports(result["transports"]))
    print()
    print(
        "fp16 reduce-kernel micro-benchmark (fold P-1 segments of "
        f"{result['kernels'][0]['elements'] >> 10}K elements)"
    )
    print(_format_kernels(result["kernels"]))
    acceptance = result["acceptance"]
    print(
        f"\nacceptance 1: shm vs process, P=8, 4 MB: "
        f"{acceptance['shm_vs_process_p8_4mb']:.2f}x "
        f"(need >= {TARGET_TRANSPORT_SPEEDUP}x): "
        f"{'PASS' if acceptance['transport_pass'] else 'FAIL'}"
    )
    print(
        f"acceptance 2: vectorised fp16 kernel, P=8: "
        f"{acceptance['fp16_kernel_speedup_p8']:.2f}x "
        f"(need >= {TARGET_KERNEL_SPEEDUP}x): "
        f"{'PASS' if acceptance['kernel_pass'] else 'FAIL'}"
    )
    print(f"\nwrote {OUTPUT_PATH}")
    sys.exit(0 if acceptance["transport_pass"] and acceptance["kernel_pass"] else 1)
