"""Benchmark reproducing the paper's strong/weak scaling headlines."""

from repro.experiments import scaling


def bench_scaling_projections(benchmark):
    result = benchmark(lambda: scaling.run(steps=200, seed=0))
    print()
    print(scaling.report(result))
    by_name = {r.name: r for r in result.rows}
    hyper_solo = by_name["hyperplane strong scaling, 8 ranks, eager (solo, 400 ms)"]
    hyper_sync = by_name["hyperplane strong scaling, 8 ranks, synch-SGD (400 ms)"]
    # Eager-SGD scales better than synch-SGD, and its strong-scaling
    # speedup lands near the paper's 3.8x.
    assert hyper_solo.speedup > hyper_sync.speedup
    assert 2.5 < hyper_solo.speedup < 8.0
    resnet = by_name["resnet50 weak scaling, 64 ranks, eager (solo, 460 ms)"]
    assert 35 < resnet.speedup <= 64


def bench_scaling_inherent_imbalance(benchmark):
    result = benchmark(lambda: scaling.run_with_inherent_imbalance(steps=150, seed=0))
    print()
    print(scaling.report(result))
    speeds = {r.mode: r.speedup for r in result.rows}
    # On the content-imbalanced workload: solo >= majority >= sync, and
    # every variant stays below the ideal world_size speedup.
    assert speeds["solo"] >= speeds["majority"] >= speeds["sync"]
    assert all(s <= 8.0 + 1e-9 for s in speeds.values())
