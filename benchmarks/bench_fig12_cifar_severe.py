"""Benchmark regenerating Fig. 12 (ResNet / CIFAR-like, severe imbalance).

Paper headline: under a rotating 50-400 ms skew on every rank, eager-SGD
with majority allreduce matches synch-SGD's accuracy at a 1.29x speedup,
while solo allreduce is faster still but loses accuracy.
"""

from repro.experiments import fig12_cifar_severe


def bench_fig12_cifar_severe(benchmark):
    result = benchmark.pedantic(
        lambda: fig12_cifar_severe.run(scale="small", seed=0, time_scale=0.0005),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig12_cifar_severe.report(result))
    comp = result.comparison
    sync = comp.results["synch-SGD (Horovod)"]
    solo = comp.results["eager-SGD (solo)"]
    majority = comp.results["eager-SGD (majority)"]
    # Time ordering: solo fastest, majority in between, sync slowest.
    assert solo.total_sim_time <= majority.total_sim_time <= sync.total_sim_time
    # Majority keeps a healthy number of fresh contributors, solo does not.
    assert majority.epochs[-1].mean_num_active > solo.epochs[-1].mean_num_active
    # Majority's final quality stays close to the synchronous baseline
    # (compare losses: lower is better).
    assert majority.final_epoch.eval_loss <= solo.final_epoch.eval_loss + 0.05
    assert comp.speedup_over("eager-SGD (majority)") > 1.0
