"""Ablations of eager-SGD design choices on the severe-imbalance workload:

* receive-buffer semantics — the paper's single overwritten receive buffer
  vs exact per-round buffering;
* periodic model synchronisation — on vs off (the paper reports that
  disabling it costs about one accuracy point on ImageNet).
"""

from repro.data import cifar10_like
from repro.experiments.report import format_table
from repro.imbalance import FixedCostModel, RotatingSkewDelay
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.models import MLPClassifier
from repro.training import TrainingConfig, train_distributed


def _run(model_sync_period, overwrite_recvbuff, seed=0):
    dataset = cifar10_like(num_examples=768, image_size=4, signal=1.5, seed=seed)
    train, val = dataset.split(0.25, seed=seed)
    config = TrainingConfig(
        world_size=4,
        epochs=4,
        global_batch_size=64,
        mode="solo",
        learning_rate=0.1,
        optimizer="momentum",
        delay_injector=RotatingSkewDelay(50.0, 400.0),
        cost_model=FixedCostModel(0.1),
        time_scale=0.001,
        model_sync_period_epochs=model_sync_period,
        overwrite_recvbuff=overwrite_recvbuff,
        seed=seed,
    )
    return train_distributed(
        lambda: MLPClassifier(3 * 4 * 4, (32,), 10, seed=7),
        train,
        SoftmaxCrossEntropyLoss(),
        config,
        eval_dataset=val,
    )


def bench_ablation_staleness_and_model_sync(benchmark):
    def sweep():
        return {
            "paper (overwrite recvbuff, sync every 2 epochs)": _run(2, True),
            "no periodic model sync": _run(None, True),
            "exact per-round receive buffers": _run(2, False),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        replicas_identical = len({s.final_model_hash for s in result.rank_summaries}) == 1
        rows.append(
            (
                name,
                round(result.final_epoch.eval_top1, 3),
                round(result.final_epoch.eval_loss, 3),
                replicas_identical,
                round(result.total_sim_time, 1),
            )
        )
    print()
    print(
        format_table(
            ["variant", "final top-1", "final eval loss", "replicas identical", "time (s)"],
            rows,
            title="Ablation: staleness handling in eager-SGD (solo, severe skew)",
        )
    )
    # Periodic synchronisation (or exact buffering) must leave consistent
    # replicas; disabling it may not.
    paper = results["paper (overwrite recvbuff, sync every 2 epochs)"]
    assert len({s.final_model_hash for s in paper.rank_summaries}) == 1
