"""Benchmark: auto-tuned fusion vs. the PR-1 fixed 64 KiB / 1-chunk default.

The acceptance bar for the calibrated auto-tuner: at P in {2, 4, 8} and a
4 MB gradient, the exchange configured by the auto-tuned
``(fusion_threshold_bytes, pipeline_chunks)`` must be **no slower** than
the fixed 64 KiB / 1-chunk default that PR 1's benchmarks hardcoded
(speedup >= 1.0 under the calibrated cost model), and the calibrated
profile must reproduce the measured thread-backend allreduce latency
within 30% at P = 8 across the 4 KiB - 4 MiB sweep.

``python benchmarks/bench_autotune.py`` runs the full (non-quick)
calibration, prints the tune report and the acceptance verdicts; under
pytest-benchmark the cached-profile path is timed and asserted.
"""

from repro.experiments import autotune as autotune_experiment
from repro.tuning import calibrate
from repro.tuning.autotune import tune_with_profile

#: The recommendation must never lose to the fixed default.
TARGET_SPEEDUP = 1.0
#: Acceptance bound on the calibrated model's worst relative error at P = 8.
TARGET_MAX_REL_ERROR = 0.30
WORLD_SIZES = (2, 4, 8)
GRADIENT_BYTES = 4 * 1024 * 1024


def _plans(quick: bool = True):
    plans = []
    for world_size in WORLD_SIZES:
        profile = calibrate(world_size, quick=quick)
        plans.append(tune_with_profile(profile, GRADIENT_BYTES, "ring"))
    return plans


def bench_autotune_recommendations(benchmark):
    """Grid search over cached profiles: every recommendation clears 1.0x."""
    plans = benchmark(_plans)
    for plan in plans:
        assert plan.speedup >= TARGET_SPEEDUP, (
            f"auto-tuned exchange only {plan.speedup:.3f}x the fixed 64 KiB / "
            f"1-chunk default at P={plan.world_size} (need >= {TARGET_SPEEDUP}x): {plan}"
        )


if __name__ == "__main__":
    result = autotune_experiment.run(
        world_sizes=WORLD_SIZES,
        gradient_mb=GRADIENT_BYTES / (1024 * 1024),
        algorithm="ring",
        force=True,
    )
    print(autotune_experiment.report(result))
    print()
    min_speedup = min(plan.speedup for plan in result.plans)
    speedup_ok = min_speedup >= TARGET_SPEEDUP
    print(
        f"acceptance (auto-tuned >= {TARGET_SPEEDUP:g}x fixed 64 KiB / 1-chunk "
        f"at P in {WORLD_SIZES}): {'PASS' if speedup_ok else 'FAIL'} "
        f"(worst {min_speedup:.2f}x)"
    )
    p8 = next(p for p in result.profiles if p.world_size == 8)
    fit_ok = p8.max_rel_error <= TARGET_MAX_REL_ERROR
    print(
        f"acceptance (model within {TARGET_MAX_REL_ERROR:.0%} of measured "
        f"allreduce latency at P = 8, 4 KiB - 4 MiB): "
        f"{'PASS' if fit_ok else 'FAIL'} ({p8.max_rel_error:.1%})"
    )
    raise SystemExit(0 if (speedup_ok and fit_ok) else 1)
