"""Benchmark regenerating Fig. 2 (UCF101 workload characterisation).

Run with ``pytest benchmarks/bench_fig2_ucf101_workload.py --benchmark-only -s``
to see the paper-vs-reproduction table.
"""

from repro.experiments import fig2_workload


def bench_fig2_ucf101_workload(benchmark):
    result = benchmark(lambda: fig2_workload.run(num_videos=9_537, batch_size=16, seed=0))
    print()
    print(fig2_workload.report(result))
    # Regression guards on the distribution shape (paper: 29-1776 frames,
    # median 167; runtimes 201-3410 ms).
    assert 29 <= result.length_summary.min
    assert result.length_summary.max <= 1776
    assert abs(result.length_summary.median - 167) < 25
    assert result.runtime_summary_ms.max <= 3500
    assert result.runtime_summary_ms.std > 300
