"""Benchmark regenerating Fig. 9 (partial allreduce latency + NAP).

Two benches: the paper-scale sweep through the calibrated latency model
(32 processes, 64 B - 4 MB, 64 iterations) and a reduced-scale measurement
of the actual thread-backed collectives, which validates that the
implementation preserves the ordering solo < majority < MPI_Allreduce.
"""

from repro.experiments import fig9_microbenchmark


def bench_fig9_latency_model_sweep(benchmark):
    result = benchmark(
        lambda: fig9_microbenchmark.run(world_size=32, iterations=64, skew_step_ms=1.0)
    )
    print()
    print(fig9_microbenchmark.report(result))
    for row in result.rows:
        assert row.solo_latency_ms < row.majority_latency_ms < row.mpi_latency_ms
    assert result.solo_speedup > 10
    assert 1.5 < result.majority_speedup < 4.5
    assert abs(result.rows[0].majority_nap - 16) < 4
    assert result.rows[0].solo_nap <= 2


def bench_fig9_thread_backend(benchmark):
    rows = benchmark.pedantic(
        lambda: fig9_microbenchmark.run_functional(
            world_size=8, iterations=6, skew_step_ms=6.0, message_elements=512
        ),
        rounds=1,
        iterations=1,
    )
    row = rows[0]
    print()
    print(
        f"thread backend (8 ranks, 6 ms/rank skew): sync={row.mpi_latency_ms:.2f} ms "
        f"majority={row.majority_latency_ms:.2f} ms solo={row.solo_latency_ms:.2f} ms "
        f"NAP solo={row.solo_nap:.1f} majority={row.majority_nap:.1f}"
    )
    assert row.solo_latency_ms < row.mpi_latency_ms
    assert row.solo_nap <= row.majority_nap
