"""Ablation: activation broadcast topology.

The paper implements the activation as a dissemination pattern equivalent
to the union of P binomial trees (logarithmic depth).  The obvious
alternative — the initiator sending P-1 direct messages (a flat star) — is
latency-equivalent for tiny worlds but scales linearly.  This benchmark
compares the two through the cost model and verifies the binomial
activation stays logarithmic.
"""

import math

from repro.experiments.report import format_table
from repro.simtime.collective_model import ACTIVATION_MESSAGE_BYTES
from repro.simtime.network import DEFAULT_NETWORK, message_time


def _binomial_activation_time(size: int) -> float:
    if size <= 1:
        return 0.0
    return math.ceil(math.log2(size)) * message_time(ACTIVATION_MESSAGE_BYTES, DEFAULT_NETWORK)


def _flat_activation_time(size: int) -> float:
    # The initiator injects P-1 messages back to back: the last leaves
    # after (P-1) injection overheads, then one network traversal.
    if size <= 1:
        return 0.0
    params = DEFAULT_NETWORK
    return (size - 1) * params.alpha + message_time(ACTIVATION_MESSAGE_BYTES, params)


def bench_ablation_activation_topology(benchmark):
    def sweep():
        rows = []
        for size in (2, 8, 32, 128, 512, 4096):
            rows.append(
                (
                    size,
                    _binomial_activation_time(size) * 1e6,
                    _flat_activation_time(size) * 1e6,
                )
            )
        return rows

    rows = benchmark(sweep)
    print()
    print(
        format_table(
            ["processes", "binomial activation (us)", "flat star activation (us)"],
            rows,
            title="Ablation: activation broadcast topology",
        )
    )
    # At large scale the binomial activation must be much cheaper.
    largest = rows[-1]
    assert largest[1] < largest[2] / 10
    # And it grows logarithmically: doubling P adds at most one hop.
    assert rows[-1][1] <= rows[0][1] * (math.log2(4096) / 1) + 1e-6
