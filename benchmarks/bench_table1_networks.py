"""Benchmark regenerating Table 1 (evaluated networks and their sizes)."""

from repro.experiments import table1_networks


def bench_table1_networks(benchmark):
    result = benchmark(lambda: table1_networks.run(scale="small"))
    print()
    print(table1_networks.report(result))
    assert len(result.rows) == 4
    # The hyperplane MLP at paper scale matches Table 1 exactly.
    paper = table1_networks.run(scale="paper")
    mlp = next(r for r in paper.rows if "Hyperplane" in r.task)
    assert mlp.repro_parameters == 8_193
