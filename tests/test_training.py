"""Tests for the distributed-training layer (exchanges, SGD step, runner)."""

import numpy as np
import pytest

from repro.comm import ThreadWorld, launch
from repro.data import HyperplaneDataset, cifar10_like
from repro.data.loader import Batch
from repro.imbalance import FixedCostModel, RandomSubsetDelay, RotatingSkewDelay
from repro.nn import MomentumSGD, SGD
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.models import HyperplaneMLP, MLPClassifier
from repro.nn.parameters import flatten_parameters
from repro.training import (
    DistributedSGD,
    PartialExchange,
    SingleProcessExchange,
    SynchronousExchange,
    TrainingConfig,
    build_exchange,
    distributed_evaluate,
    evaluate_model,
    model_hash,
    synchronize_model,
    train_distributed,
)


class TestConfig:
    def test_validation_errors(self):
        with pytest.raises(ValueError):
            TrainingConfig(world_size=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(mode="bogus").validate()
        with pytest.raises(ValueError):
            TrainingConfig(mode="quorum", quorum=None).validate()
        with pytest.raises(ValueError):
            TrainingConfig(global_batch_size=2, world_size=4).validate()
        with pytest.raises(ValueError):
            TrainingConfig(sync_style="mpi").validate()
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="lbfgs").validate()

    def test_local_batch_and_describe(self):
        cfg = TrainingConfig(world_size=4, global_batch_size=64, mode="majority")
        cfg.validate()
        assert cfg.local_batch_size == 16
        assert cfg.is_eager
        assert "eager-SGD (majority)" in cfg.describe()
        sync = TrainingConfig(mode="sync", sync_style="horovod")
        assert "horovod" in sync.describe()
        assert not sync.is_eager


class TestExchanges:
    def test_single_process_exchange(self):
        ex = SingleProcessExchange()
        result = ex.exchange(np.arange(4.0))
        assert np.allclose(result.gradient, np.arange(4.0))
        assert result.included and result.num_active == 1

    @pytest.mark.parametrize("style", ["deep500", "horovod"])
    @pytest.mark.parametrize("buckets", [1, 3])
    def test_synchronous_exchange_averages(self, style, buckets):
        def worker(comm):
            ex = SynchronousExchange(comm, style=style, fusion_buckets=buckets)
            result = ex.exchange(np.full(10, comm.rank + 1.0))
            return result.gradient

        results = launch(worker, 4)
        for grad in results:
            assert np.allclose(grad, 2.5)

    def test_partial_exchange_solo(self):
        def worker(comm):
            ex = PartialExchange(comm, num_parameters=6, mode="solo", seed=3)
            grads = [ex.exchange(np.full(6, comm.rank + 1.0)) for _ in range(3)]
            ex.close()
            return grads

        results = launch(worker, 4)
        for rank_result in results:
            for res in rank_result:
                assert res.gradient.shape == (6,)
                assert 1 <= res.num_active <= 4

    def test_build_exchange_dispatch(self):
        with ThreadWorld(2) as world:
            comm = world.communicator(0)
            assert isinstance(build_exchange(None, 4, "sync"), SingleProcessExchange)
            assert isinstance(build_exchange(comm, 4, "sync"), SynchronousExchange)
            partial = build_exchange(comm, 4, "solo")
            assert isinstance(partial, PartialExchange)
            partial.close()

    def test_invalid_style_and_buckets(self):
        with ThreadWorld(2) as world:
            comm = world.communicator(0)
            with pytest.raises(ValueError):
                SynchronousExchange(comm, style="nccl")
            with pytest.raises(ValueError):
                SynchronousExchange(comm, fusion_buckets=0)


class TestDistributedSGDStep:
    def _make_sgd(self, world_size=1):
        model = MLPClassifier(6, (8,), 3, seed=0)
        optimizer = SGD(model, 0.1)
        sgd = DistributedSGD(
            model,
            optimizer,
            SingleProcessExchange(),
            SoftmaxCrossEntropyLoss(),
            world_size=world_size,
            collect_gradient_norms=True,
        )
        return model, sgd

    def _batch(self, rng, n=16):
        x = rng.normal(size=(n, 6))
        y = rng.integers(0, 3, n)
        return Batch(inputs=x, targets=y, indices=np.arange(n))

    def test_step_updates_parameters_and_reduces_loss(self, rng):
        model, sgd = self._make_sgd()
        batch = self._batch(rng)
        before = flatten_parameters(model).copy()
        losses = [sgd.step(batch).loss for _ in range(20)]
        assert not np.allclose(before, flatten_parameters(model))
        assert losses[-1] < losses[0]

    def test_step_stats_fields(self, rng):
        _, sgd = self._make_sgd()
        stats = sgd.step(self._batch(rng))
        assert stats.compute_time > 0
        assert stats.included
        assert stats.num_active == 1
        assert 0.0 <= stats.top1 <= 1.0
        assert stats.gradient_norm > 0

    def test_gradient_clipping(self, rng):
        model = HyperplaneMLP(6, seed=0)
        sgd = DistributedSGD(
            model,
            SGD(model, 0.01),
            SingleProcessExchange(),
            MSELoss(),
            gradient_clip=0.001,
            classification=False,
            collect_gradient_norms=True,
        )
        x = rng.normal(size=(8, 6)) * 100
        y = rng.normal(size=(8, 1)) * 100
        stats = sgd.step(Batch(inputs=x, targets=y, indices=np.arange(8)))
        assert stats.gradient_norm <= 0.001 + 1e-9


class TestModelSyncAndEvaluation:
    def test_synchronize_model_averages_replicas(self):
        def worker(comm):
            model = MLPClassifier(4, (4,), 2, seed=0)
            # Perturb each replica differently, then synchronise.
            for param in model.parameters():
                param.data += comm.rank
            synchronize_model(comm, model)
            return model_hash(model), float(flatten_parameters(model).mean())

        results = launch(worker, 4)
        hashes = {h for h, _ in results}
        assert len(hashes) == 1

    def test_model_hash_detects_differences(self):
        a = MLPClassifier(4, (4,), 2, seed=0)
        b = MLPClassifier(4, (4,), 2, seed=0)
        assert model_hash(a) == model_hash(b)
        b.parameters()[0].data += 1.0
        assert model_hash(a) != model_hash(b)

    def test_evaluate_model_metrics(self, rng):
        ds = cifar10_like(num_examples=200, image_size=4, signal=5.0, seed=0)
        model = MLPClassifier(3 * 4 * 4, (16,), 10, seed=0)
        metrics = evaluate_model(model, ds, SoftmaxCrossEntropyLoss(), batch_size=64)
        assert set(metrics) == {"loss", "top1", "top5", "count"}
        assert metrics["count"] == 200
        assert 0.0 <= metrics["top1"] <= metrics["top5"] <= 1.0

    def test_distributed_evaluate_matches_single_process(self):
        ds = cifar10_like(num_examples=128, image_size=4, signal=5.0, seed=0)
        loss_fn = SoftmaxCrossEntropyLoss()

        def worker(comm):
            model = MLPClassifier(3 * 4 * 4, (16,), 10, seed=0)
            return distributed_evaluate(comm, model, ds, loss_fn, batch_size=32)

        results = launch(worker, 4)
        single = evaluate_model(MLPClassifier(3 * 4 * 4, (16,), 10, seed=0), ds, loss_fn)
        for metrics in results:
            assert metrics["loss"] == pytest.approx(single["loss"], rel=1e-6)
            assert metrics["top1"] == pytest.approx(single["top1"], abs=1e-9)


class TestRunner:
    def _dataset(self):
        ds = cifar10_like(num_examples=256, image_size=4, signal=4.0, seed=0)
        return ds.split(0.25, seed=0)

    def _model_factory(self):
        return lambda: MLPClassifier(3 * 4 * 4, (16,), 10, seed=11)

    @pytest.mark.parametrize("mode", ["sync", "solo", "majority"])
    def test_training_runs_and_learns(self, mode):
        train, val = self._dataset()
        config = TrainingConfig(
            world_size=4,
            epochs=2,
            global_batch_size=64,
            mode=mode,
            quorum=2 if mode == "quorum" else None,
            learning_rate=0.1,
            optimizer="momentum",
            seed=0,
            model_sync_period_epochs=2,
        )
        result = train_distributed(
            self._model_factory(), train, SoftmaxCrossEntropyLoss(), config,
            eval_dataset=val,
        )
        assert len(result.epochs) == 2
        assert result.epochs[-1].train_loss < result.epochs[0].train_loss
        assert result.step_durations.shape[1] == 4
        assert result.projection is not None
        assert result.total_sim_time > 0
        assert len(result.rank_summaries) == 4

    def test_single_process_run(self):
        train, val = self._dataset()
        config = TrainingConfig(world_size=1, epochs=1, global_batch_size=32, mode="sync")
        result = train_distributed(
            self._model_factory(), train, SoftmaxCrossEntropyLoss(), config,
            eval_dataset=val,
        )
        assert result.epochs[0].mean_num_active == 1.0

    def test_eager_faster_than_sync_under_imbalance(self):
        train, _ = self._dataset()
        base = dict(
            world_size=4,
            epochs=2,
            global_batch_size=64,
            learning_rate=0.1,
            cost_model=FixedCostModel(0.2),
            delay_injector=RandomSubsetDelay(1, 400.0, seed=5),
            seed=0,
        )
        sync = train_distributed(
            self._model_factory(), train, SoftmaxCrossEntropyLoss(),
            TrainingConfig(mode="sync", **base),
        )
        solo = train_distributed(
            self._model_factory(), train, SoftmaxCrossEntropyLoss(),
            TrainingConfig(mode="solo", **base),
        )
        assert solo.total_sim_time < sync.total_sim_time
        assert solo.throughput > sync.throughput

    def test_periodic_model_sync_keeps_replicas_identical(self):
        train, _ = self._dataset()
        config = TrainingConfig(
            world_size=4,
            epochs=2,
            global_batch_size=64,
            mode="solo",
            time_scale=0.001,
            delay_injector=RotatingSkewDelay(10.0, 80.0),
            cost_model=FixedCostModel(0.05),
            model_sync_period_epochs=1,  # sync at the end of every epoch
            seed=0,
        )
        result = train_distributed(
            self._model_factory(), train, SoftmaxCrossEntropyLoss(), config
        )
        hashes = {s.final_model_hash for s in result.rank_summaries}
        assert len(hashes) == 1

    def test_quorum_mode_respects_quorum(self):
        train, _ = self._dataset()
        config = TrainingConfig(
            world_size=4,
            epochs=1,
            global_batch_size=64,
            mode="quorum",
            quorum=3,
            seed=0,
        )
        result = train_distributed(
            self._model_factory(), train, SoftmaxCrossEntropyLoss(), config
        )
        for summary in result.rank_summaries:
            assert summary.min_num_active >= 3

    def test_regression_task(self):
        ds = HyperplaneDataset(num_examples=256, input_dim=16, noise_std=0.1, seed=0)
        train, val = ds.split(0.25, seed=0)
        config = TrainingConfig(
            world_size=2, epochs=3, global_batch_size=64, mode="sync",
            learning_rate=0.5, seed=0,
        )
        result = train_distributed(
            lambda: HyperplaneMLP(16, seed=3), train, MSELoss(), config,
            eval_dataset=val, classification=False,
        )
        assert result.epochs[-1].eval_loss < result.epochs[0].eval_loss
