"""Tests for the fused, chunked gradient-exchange pipeline.

Covers the tentpole subsystem of the fusion PR: the gradient bucketer,
the chunk-pipelined synchronous collectives (including the fixed tag
layout and native non-power-of-two support), the bucketed exchanges, and
the simtime mirror of the chunked-pipeline cost.
"""

import time

import numpy as np
import pytest

from repro.comm import launch
from repro.collectives import allreduce
from repro.collectives import sync as sync_mod
from repro.collectives.partial import QuorumAllreduce, SoloAllreduce
from repro.collectives.sync import (
    _EPOCH_STRIDE,
    _PHASE_STRIDE,
    _TAG_MAX_CHUNKS,
    _TAG_MAX_PHASES,
    _TAG_MAX_ROUNDS,
    _tag,
    allreduce_rabenseifner,
)
from repro.experiments import fusion_pipeline
from repro.simtime.collective_model import allreduce_time, fused_exchange_time
from repro.simtime.collective_sim import simulate_partial_allreduce
from repro.simtime.network import LogGPParams
from repro.training import GradientBucketer, PartialExchange, SynchronousExchange
from repro.training.config import TrainingConfig
from repro.training.exchange import build_exchange


class TestGradientBucketer:
    def test_greedy_packing_respects_threshold(self):
        # 8-byte elements; threshold of 4 elements = 32 bytes.
        b = GradientBucketer([2, 1, 3, 4, 5, 1], fusion_threshold_bytes=32)
        groups = [spec.param_indices for spec in b.buckets]
        assert groups == [(0, 1), (2,), (3,), (4,), (5,)]
        assert b.num_elements == 16
        # Oversized parameter (5 elements > 4-element capacity) still gets
        # its own bucket — parameters are never split.
        assert b.buckets[3].num_elements == 5

    def test_contiguous_coverage(self):
        b = GradientBucketer([3, 3, 3, 3], fusion_threshold_bytes=48)
        spans = [(spec.start, spec.stop) for spec in b.buckets]
        assert spans == [(0, 6), (6, 12)]

    @pytest.mark.parametrize("threshold", [8, 24, 64, 10_000])
    def test_pack_unpack_round_trip_bit_exact(self, rng, threshold):
        sizes = [4, 7, 1, 12, 3, 9]
        b = GradientBucketer(sizes, fusion_threshold_bytes=threshold)
        flat = rng.normal(size=sum(sizes))
        buffers = b.pack(flat)
        assert sum(buf.size for buf in buffers) == flat.size
        restored = b.unpack(buffers)
        assert restored.dtype == np.float64
        assert np.array_equal(restored, flat)  # bit-exact, not allclose

    def test_pack_params_matches_flat_pack(self, rng):
        sizes = [4, 6, 2, 8]
        b = GradientBucketer(sizes, fusion_threshold_bytes=80)
        grads = [rng.normal(size=(s,)) for s in sizes]
        flat = np.concatenate(grads)
        from_params = b.pack_params(grads)
        from_flat = b.pack(flat)
        for a, c in zip(from_params, from_flat):
            assert np.array_equal(a, c)

    def test_from_flat_and_fixed_count(self):
        b = GradientBucketer.from_flat(100, fusion_threshold_bytes=30 * 8)
        assert b.num_buckets == 4
        assert [spec.num_elements for spec in b.buckets] == [25, 25, 25, 25]
        legacy = GradientBucketer.fixed_count(10, 3)
        assert [spec.num_elements for spec in legacy.buckets] == [4, 3, 3]

    def test_validation_errors(self, rng):
        with pytest.raises(ValueError):
            GradientBucketer([])
        with pytest.raises(ValueError):
            GradientBucketer([0, 3])
        with pytest.raises(ValueError):
            GradientBucketer([3], fusion_threshold_bytes=0)
        b = GradientBucketer([3, 3])
        with pytest.raises(ValueError):
            b.pack(np.zeros(5))
        with pytest.raises(ValueError):
            b.unpack([np.zeros(3)])
        range_bucketer = GradientBucketer.from_flat(6, 16)
        with pytest.raises(ValueError):
            range_bucketer.pack_params([np.zeros(3), np.zeros(3)])


def _allreduce_worker(comm, algorithm, n_chunks, data):
    return allreduce(comm, data + comm.rank, algorithm=algorithm, n_chunks=n_chunks)


class TestChunkedCollectives:
    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    @pytest.mark.parametrize("n_chunks", [2, 3, 7])
    def test_chunked_ring_equals_unchunked(self, rng, size, n_chunks):
        data = rng.normal(size=29)
        chunked = launch(_allreduce_worker, size, "ring", n_chunks, data)
        plain = launch(_allreduce_worker, size, "ring", 1, data)
        expected = sum(data + r for r in range(size))
        for c, p in zip(chunked, plain):
            assert np.allclose(c, expected)
            assert np.array_equal(c, p)  # identical reduction order => bit-equal

    @pytest.mark.parametrize("algorithm", ["recursive_doubling", "rabenseifner"])
    @pytest.mark.parametrize("size", [3, 4, 6])
    def test_chunked_other_algorithms(self, rng, algorithm, size):
        data = rng.normal(size=17)
        expected = sum(data + r for r in range(size))
        for result in launch(_allreduce_worker, size, algorithm, 4, data):
            assert np.allclose(result, expected)

    def test_invalid_chunk_counts(self):
        from repro.comm import ThreadWorld

        with ThreadWorld(1) as world:
            comm = world.communicator(0)
            with pytest.raises(ValueError):
                allreduce(comm, np.ones(4), algorithm="ring", n_chunks=0)
            with pytest.raises(ValueError):
                allreduce(
                    comm, np.ones(4), algorithm="ring", n_chunks=_TAG_MAX_CHUNKS + 1
                )

    def test_preserves_shape_when_chunked(self):
        results = launch(lambda comm: allreduce(
                comm, np.ones((3, 5)) * comm.rank, algorithm="ring", n_chunks=3
            ), 4,
        )
        for r in results:
            assert r.shape == (3, 5)
            assert np.allclose(r, 6)


class TestNonPowerOfTwoWorlds:
    @pytest.mark.parametrize("size", [3, 5, 6, 7])
    @pytest.mark.parametrize("algorithm", ["recursive_doubling", "ring", "rabenseifner"])
    def test_all_algorithms_correct(self, rng, size, algorithm):
        data = rng.normal(size=13)
        expected = sum(data + r for r in range(size))
        for result in launch(_allreduce_worker, size, algorithm, 1, data):
            assert np.allclose(result, expected)

    @pytest.mark.parametrize("size", [3, 5, 6, 7])
    def test_rabenseifner_never_falls_back(self, monkeypatch, size):
        """Regression: non-power-of-two worlds used to silently reroute to
        recursive doubling; they must now run Rabenseifner natively."""

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("rabenseifner silently fell back to recursive doubling")

        monkeypatch.setattr(sync_mod, "allreduce_recursive_doubling", forbidden)
        results = launch(lambda comm: allreduce_rabenseifner(comm, np.full(11, comm.rank + 1.0)), size,
        )
        expected = sum(range(1, size + 1))
        for r in results:
            assert np.allclose(r, expected)


class TestTagLayout:
    def test_field_overflow_raises(self):
        with pytest.raises(ValueError):
            _tag(0, _TAG_MAX_PHASES, 0)
        with pytest.raises(ValueError):
            _tag(0, 0, _TAG_MAX_ROUNDS)
        with pytest.raises(ValueError):
            _tag(0, 0, 0, _TAG_MAX_CHUNKS)
        with pytest.raises(ValueError):
            _tag(0, -1, 0)

    def test_large_world_rounds_stay_inside_their_phase(self):
        """Regression: with the old 512-slot round field, a ring allreduce
        over P > 512 ranks collided into the next phase/epoch tag space."""
        # A ring over P = 100_000 ranks uses P - 1 rounds per phase.
        high_round = _tag(0, 4, 99_999)
        assert high_round < _tag(0, 5, 0)
        assert _tag(0, _TAG_MAX_PHASES - 1, _TAG_MAX_ROUNDS - 1, _TAG_MAX_CHUNKS - 1) < _tag(
            1, 0, 0
        )
        assert _PHASE_STRIDE == _TAG_MAX_ROUNDS * _TAG_MAX_CHUNKS
        assert _EPOCH_STRIDE == _TAG_MAX_PHASES * _PHASE_STRIDE

    def test_tags_unique_within_epoch(self):
        seen = set()
        for phase in (0, 3, 7):
            for round_index in (0, 1, 511, 512, 1000):
                for chunk in (0, 1, 7):
                    tag = _tag(5, phase, round_index, chunk)
                    assert tag not in seen
                    seen.add(tag)


class TestPartialCounterHardening:
    def test_num_active_exact_with_averaging_at_odd_world(self):
        """The arrival counter must not be divided by ``average=True`` and
        must survive the non-power-of-two fold exactly."""

        def worker(comm):
            partial = QuorumAllreduce(comm, (3,), quorum=3, average=True, seed=2)
            results = [partial.reduce(np.full(3, comm.rank + 1.0)) for _ in range(3)]
            partial.close()
            return results

        for rank_results in launch(worker, 3):
            for r in rank_results:
                assert r.num_active == 3
                assert isinstance(r.num_active, int)

    def test_num_active_correct_under_max_op(self):
        """A max/min data op must not collapse the arrival count to 1."""

        def worker(comm):
            partial = QuorumAllreduce(
                comm, (2,), quorum=4, op="max", average=False, seed=2
            )
            r = partial.reduce(np.full(2, float(comm.rank)))
            partial.close()
            return r.num_active, float(r.data[0])

        for num_active, value in launch(worker, 4):
            assert num_active == 4
            assert value == 3.0

    def test_corrupted_counter_rejected(self):
        def worker(comm):
            partial = SoloAllreduce(comm, (2,), seed=1)
            try:
                assert partial._decode_num_active(2.0) == 2
                with pytest.raises(RuntimeError):
                    partial._decode_num_active(1.5)
                with pytest.raises(RuntimeError):
                    partial._decode_num_active(float(comm.size + 1))
            finally:
                partial.close()
            return True

        assert all(launch(worker, 2))


class TestFusedSynchronousExchange:
    @pytest.mark.parametrize("style", ["deep500", "horovod"])
    @pytest.mark.parametrize("algorithm", ["ring", "recursive_doubling"])
    def test_fused_chunked_average_matches_plain(self, style, algorithm):
        def worker(comm):
            fused = SynchronousExchange(
                comm,
                style=style,
                algorithm=algorithm,
                fusion_threshold_bytes=64,
                pipeline_chunks=3,
            )
            plain = SynchronousExchange(comm, style=style, algorithm=algorithm)
            grad = np.arange(23.0) * (comm.rank + 1)
            return fused.exchange(grad), plain.exchange(grad)

        for fused_result, plain_result in launch(worker, 4):
            assert np.allclose(fused_result.gradient, plain_result.gradient)
            assert fused_result.num_active == 4
            # 23 float64 elements at 64-byte buckets -> 3 buckets.
            assert len(fused_result.bucket_waits) == 3
            assert all(w >= 0.0 for w in fused_result.bucket_waits)

    def test_horovod_negotiated_order_consistent_across_ranks(self):
        def worker(comm):
            exchange = SynchronousExchange(
                comm, style="horovod", fusion_threshold_bytes=32
            )
            exchange._ensure_bucketer(16)
            return tuple(exchange._negotiated_order(4))

        orders = set(launch(worker, 4))
        assert len(orders) == 1, "all ranks must agree on the negotiated order"

    def test_gradient_length_change_rejected(self):
        def worker(comm):
            exchange = SynchronousExchange(comm, fusion_threshold_bytes=64)
            exchange.exchange(np.ones(8))
            with pytest.raises(ValueError):
                exchange._ensure_bucketer(9)
            # Keep ranks in lockstep with one more valid exchange.
            exchange.exchange(np.ones(8))
            return True

        assert all(launch(worker, 2))


class TestFusedPartialExchange:
    def test_quorum_full_matches_synchronous_average_per_bucket(self):
        def worker(comm):
            exchange = PartialExchange(
                comm,
                num_parameters=23,
                mode="quorum",
                quorum=4,
                seed=7,
                fusion_threshold_bytes=48,
            )
            results = [
                exchange.exchange(np.arange(23.0) * (comm.rank + 1)) for _ in range(2)
            ]
            exchange.close()
            return results

        expected = np.arange(23.0) * 2.5
        for rank_results in launch(worker, 4):
            for r in rank_results:
                assert np.allclose(r.gradient, expected)
                assert r.num_active == 4 and r.included
                assert len(r.bucket_waits) == 4  # ceil(23*8 / 48)

    def test_stale_gradients_preserved_across_buckets(self):
        """Per-bucket send buffers accumulate stale gradients independently:
        nothing is lost and nothing is duplicated in either bucket."""
        rounds = 4

        def worker(comm):
            exchange = PartialExchange(
                comm,
                num_parameters=8,
                mode="solo",
                seed=11,
                overwrite_recvbuff=False,
                fusion_threshold_bytes=4 * 8,  # two buckets of 4 elements
            )
            assert exchange.bucketer.num_buckets == 2
            outputs = []
            for _ in range(rounds):
                time.sleep(comm.rank * 0.03)
                grad = np.concatenate(
                    [np.full(4, 1.0 * (comm.rank + 1)), np.full(4, 10.0 * (comm.rank + 1))]
                )
                outputs.append(exchange.exchange(grad))
            exchange.close()
            return outputs

        results = launch(worker, 2)
        fast = results[0]
        # Conservation per bucket: the delivered (averaged) totals never
        # exceed the contributions, and the fast rank's own gradients are
        # always included (delivered >= its contribution alone).
        delivered_b0 = sum(r.gradient[0] * 2 for r in fast)
        delivered_b1 = sum(r.gradient[4] * 2 for r in fast)
        assert delivered_b0 <= (1 + 2) * rounds + 1e-9
        assert delivered_b1 <= (10 + 20) * rounds + 1e-9
        assert delivered_b0 >= 1.0 * rounds - 1e-9
        assert delivered_b1 >= 10.0 * rounds - 1e-9
        # Bucket ratios stay consistent: bucket 1 carries 10x bucket 0 per
        # contribution, so a bucket that dropped a stale gradient would
        # break the 10x relation between the bucket totals.
        assert delivered_b1 == pytest.approx(10 * delivered_b0, rel=1e-6)


class TestConfigAndBuildExchange:
    def test_new_knobs_validate(self):
        TrainingConfig(fusion_threshold_bytes=1024, pipeline_chunks=4).validate()
        with pytest.raises(ValueError):
            TrainingConfig(fusion_threshold_bytes=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(pipeline_chunks=0).validate()

    def test_build_exchange_threads_fusion_knobs(self):
        from repro.comm import ThreadWorld

        with ThreadWorld(2) as world:
            comm = world.communicator(0)
            sync = build_exchange(
                comm, 64, "sync", fusion_threshold_bytes=128, pipeline_chunks=2
            )
            assert isinstance(sync, SynchronousExchange)
            assert sync.fusion_threshold_bytes == 128
            assert sync.pipeline_chunks == 2
            assert sync._ensure_bucketer(64).num_buckets == 4

    def test_pipeline_chunks_reach_partial_exchange(self):
        def worker(comm):
            exchange = PartialExchange(
                comm, num_parameters=10, mode="quorum", quorum=2,
                seed=3, pipeline_chunks=4,
            )
            chunks = [p.n_chunks for p in exchange.partials]
            result = exchange.exchange(np.full(10, comm.rank + 1.0))
            exchange.close()
            return chunks, float(result.gradient[0])

        for chunks, value in launch(worker, 2):
            assert chunks == [4]
            assert value == pytest.approx(1.5)

    def test_training_run_with_fusion_pipeline(self):
        from repro.data import cifar10_like
        from repro.nn.losses import SoftmaxCrossEntropyLoss
        from repro.nn.models import MLPClassifier
        from repro.training import train_distributed

        train = cifar10_like(num_examples=128, image_size=4, signal=4.0, seed=0)
        config = TrainingConfig(
            world_size=2,
            epochs=1,
            global_batch_size=32,
            mode="sync",
            allreduce_algorithm="ring",
            fusion_threshold_bytes=16 * 1024,
            pipeline_chunks=2,
            seed=0,
        )
        result = train_distributed(
            lambda: MLPClassifier(3 * 4 * 4, (16,), 10, seed=11),
            train,
            SoftmaxCrossEntropyLoss(),
            config,
        )
        assert len(result.epochs) == 1
        assert np.isfinite(result.epochs[0].train_loss)


class TestSimtimeMirror:
    def test_single_chunk_matches_legacy_closed_forms(self):
        params = LogGPParams()
        n, size = 4 * 1024 * 1024, 8
        rd = allreduce_time(n, size, "recursive_doubling", params)
        rounds = 3
        assert rd == pytest.approx(
            params.collective_overhead
            + rounds * (params.alpha + n * params.beta + n * params.gamma)
        )
        ring = allreduce_time(n, size, "ring", params)
        chunk = n / size
        assert ring == pytest.approx(
            params.collective_overhead
            + (size - 1) * (params.alpha + chunk * params.beta + chunk * params.gamma)
            + (size - 1) * (params.alpha + chunk * params.beta)
        )

    @pytest.mark.parametrize("size", [4, 6, 8, 12])
    def test_chunked_rabenseifner_never_predicts_regression(self, size):
        """Regression: at non-power-of-two sizes the chunked branch used a
        different base volume than the closed form, so requesting
        pipelining could *increase* the predicted time discontinuously."""
        base = allreduce_time(4_000_000, size, "rabenseifner", n_chunks=1)
        for n_chunks in (2, 8):
            chunked = allreduce_time(4_000_000, size, "rabenseifner", n_chunks=n_chunks)
            assert chunked <= base + 1e-12

    def test_chunked_pipeline_beats_monolithic_baseline(self):
        n = 4 * 1024 * 1024
        baseline = allreduce_time(n, 8, "recursive_doubling")
        chunked = allreduce_time(n, 8, "ring", n_chunks=8)
        assert baseline / chunked >= 1.3

    def test_fused_exchange_time_overlaps_phases(self):
        n = 4 * 1024 * 1024
        buckets = [n / 4] * 4
        fused = fused_exchange_time(buckets, 8, "ring", n_chunks=8)
        serial = sum(allreduce_time(b, 8, "ring", n_chunks=8) for b in buckets)
        single = allreduce_time(n, 8, "ring", n_chunks=8)
        # Pipelined buckets beat serial issue, and can't beat the
        # physically required single-collective time by construction.
        assert fused < serial
        assert fused >= 0.5 * single

    def test_event_sim_accepts_chunking(self):
        arrivals = np.zeros(8)
        plain = simulate_partial_allreduce(arrivals, 64 * 1024, "sync", n_chunks=1)
        chunked = simulate_partial_allreduce(arrivals, 64 * 1024, "sync", n_chunks=4)
        assert chunked.messages == plain.messages * 4
        assert chunked.completion_times.max() <= plain.completion_times.max()
        with pytest.raises(ValueError):
            simulate_partial_allreduce(arrivals, 64, "sync", n_chunks=0)

    def test_experiment_headline_meets_acceptance(self):
        result = fusion_pipeline.run(world_sizes=(8,), gradient_mb=4.0)
        assert result.headline_speedup(8) >= 1.3
        report = fusion_pipeline.report(result)
        assert "unfused single-buffer" in report
