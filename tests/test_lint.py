"""Repo lint rules: each fires on a synthetic snippet, and src/ is clean."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths, lint_source


def _lint(snippet: str, path: str) -> list:
    return lint_source(textwrap.dedent(snippet), path)


# ---------------------------------------------------------------------------
# literal-tag
# ---------------------------------------------------------------------------
def test_literal_tag_fires_on_raw_constants():
    findings = _lint(
        """
        def f(comm):
            comm.send(x, 1, tag=12345)
            comm.recv(source=0, tag=99)
        """,
        "src/repro/collectives/thing.py",
    )
    assert [f.rule for f in findings] == ["literal-tag", "literal-tag"]


def test_literal_tag_allows_defaults_and_minted_tags():
    findings = _lint(
        """
        def f(comm):
            comm.send(x, 1, tag=0)
            comm.recv(source=0, tag=-1)
            comm.send(x, 1, tag=tags.sync_tag(0, 1, 2))
            comm.probe(0, some_tag)
        """,
        "src/repro/collectives/thing.py",
    )
    assert findings == []


def test_literal_tag_checks_positional_arguments():
    findings = _lint(
        "def f(comm):\n    comm.send(x, 1, 777)\n",
        "src/repro/collectives/thing.py",
    )
    assert [f.rule for f in findings] == ["literal-tag"]


def test_literal_tag_exempts_the_tag_table_itself():
    findings = _lint(
        "def f(comm):\n    comm.send(x, 1, tag=777)\n",
        "src/repro/comm/tags.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# shm-unlink
# ---------------------------------------------------------------------------
def test_shm_create_without_unlink_fires():
    findings = _lint(
        """
        def make():
            return SharedMemory(name="x", create=True, size=64)
        """,
        "src/repro/comm/somewhere.py",
    )
    assert [f.rule for f in findings] == ["shm-unlink"]


def test_shm_create_with_unlink_passes():
    findings = _lint(
        """
        def make():
            return SharedMemory(name="x", create=True, size=64)

        def cleanup(seg):
            seg.unlink()
        """,
        "src/repro/comm/somewhere.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# pickle-ndarray
# ---------------------------------------------------------------------------
def test_pickle_of_arrayish_name_fires_in_transports():
    findings = _lint(
        """
        def pack(payload):
            return pickle.dumps(payload)
        """,
        "src/repro/comm/process_backend.py",
    )
    assert [f.rule for f in findings] == ["pickle-ndarray"]


def test_pickle_with_ndarray_dispatch_passes():
    findings = _lint(
        """
        def pack(payload):
            if isinstance(payload, np.ndarray):
                return frame(payload)
            return pickle.dumps(payload)
        """,
        "src/repro/comm/process_backend.py",
    )
    assert findings == []


def test_pickle_rule_is_scoped_to_transports():
    findings = _lint(
        "def pack(payload):\n    return pickle.dumps(payload)\n",
        "src/repro/training/runner.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# silent-array-copy
# ---------------------------------------------------------------------------
def test_np_array_without_copy_fires_in_hot_paths():
    findings = _lint(
        "def f(x):\n    return np.array(x)\n",
        "src/repro/collectives/sync.py",
    )
    assert [f.rule for f in findings] == ["silent-array-copy"]


def test_np_array_literal_and_explicit_copy_pass():
    findings = _lint(
        """
        def f(x):
            a = np.array([1.0, 2.0])
            b = np.array((x, x))
            c = np.array(x, copy=True)
            d = np.asarray(x)
            return a, b, c, d
        """,
        "src/repro/collectives/sync.py",
    )
    assert findings == []


def test_np_array_rule_scoped_to_hot_packages():
    findings = _lint(
        "def f(x):\n    return np.array(x)\n",
        "src/repro/experiments/fig9.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# valueerror-no-value
# ---------------------------------------------------------------------------
def test_constant_valueerror_fires():
    findings = _lint(
        """
        def f(x):
            if x < 0:
                raise ValueError("x must be >= 0")
        """,
        "src/repro/collectives/sync.py",
    )
    assert [f.rule for f in findings] == ["valueerror-no-value"]


def test_interpolated_valueerror_passes():
    findings = _lint(
        """
        def f(x):
            if x < 0:
                raise ValueError(f"x must be >= 0, got {x}")
            if x > 9:
                raise ValueError("too big: %r" % x)
        """,
        "src/repro/collectives/sync.py",
    )
    assert findings == []


def test_valueerror_rule_scoped_out_of_experiments():
    findings = _lint(
        'def f():\n    raise ValueError("nope")\n',
        "src/repro/experiments/fig9.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# time-time
# ---------------------------------------------------------------------------
def test_time_time_fires_in_timing_sensitive_packages():
    findings = _lint(
        """
        import time
        def f():
            start = time.time()
            return time.time() - start
        """,
        "src/repro/serving/thing.py",
    )
    assert [f.rule for f in findings] == ["time-time", "time-time"]


def test_monotonic_clocks_pass():
    findings = _lint(
        """
        import time
        def f():
            a = time.perf_counter()
            b = time.perf_counter_ns()
            time.sleep(0.01)
            return a, b, time.monotonic()
        """,
        "src/repro/comm/thing.py",
    )
    assert findings == []


def test_time_time_rule_scoped_out_of_experiments():
    findings = _lint(
        "import time\ndef f():\n    return time.time()\n",
        "src/repro/experiments/fig9.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# the repo itself is clean
# ---------------------------------------------------------------------------
def test_src_tree_lints_clean():
    src = Path(__file__).resolve().parent.parent / "src"
    if not src.is_dir():
        pytest.skip("src/ layout not present")
    findings = lint_paths([str(src)])
    assert findings == [], [str(f) for f in findings]
