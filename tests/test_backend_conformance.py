"""Cross-backend conformance suite: one contract, every transport.

Every registered communication backend must provide the same SPMD
semantics through :func:`repro.comm.launch`: MPI-like point-to-point
messaging with tag/source matching, the channel system (dynamic
sub-channels included), the synchronous and partial collectives, and the
``WorldError`` failure contract.  The tests below parametrize the core
behaviours over ``["thread", "process", "shm", "tcp", "hier"]`` so a new
transport (or a regression in an existing one) is caught by a single
suite; the shm-based transports (``shm`` and the hierarchical ``hier``)
are skip-marked on platforms whose capability probe rejected them (no
POSIX shared memory / no fork).  The ``tcp`` backend runs here in its
single-launcher shape (ephemeral loopback seed); ``hier`` runs under its
default single-host topology, so the conformance contract covers its
pure-shm fast path while the dedicated multi-host tests exercise the
mixed fabric.

The pickle-safety tests are part of the contract: payloads and results
cross a process boundary on the socket transport, so everything a rank
sends or returns must survive a pickle round-trip.
"""

import pickle
import time

import numpy as np
import pytest

from repro.comm import (
    AVG,
    MAX,
    MIN,
    PROD,
    SUM,
    CommBackend,
    Message,
    ReduceOp,
    WorldError,
    available_backends,
    default_backend_name,
    get_backend,
    get_op,
    launch,
    set_default_backend,
)

BACKENDS = ["thread", "process", "shm", "tcp", "hier"]

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _skip_if_unavailable(name):
    if name not in available_backends():
        from repro.comm.backend import backend_unavailable_reason

        pytest.skip(
            f"backend {name!r} unavailable: {backend_unavailable_reason(name)}"
        )


@pytest.fixture(params=BACKENDS)
def backend(request):
    _skip_if_unavailable(request.param)
    return request.param


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "thread" in names and "process" in names and "tcp" in names
        # shm (and hier, which rides on it) is platform-gated: either
        # registered, or absent with a recorded reason (and resolving it
        # raises the typed error).
        for gated in ("shm", "hier"):
            if gated not in names:
                from repro.comm.backend import (
                    BackendUnavailableError,
                    backend_unavailable_reason,
                )

                assert backend_unavailable_reason(gated)
                with pytest.raises(BackendUnavailableError):
                    get_backend(gated)

    def test_get_backend_live_handle(self, backend):
        handle = get_backend(backend)
        assert isinstance(handle, CommBackend)
        assert handle.name == backend
        # Resolution is stable: the same live handle every time.
        assert get_backend(backend) is handle

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown comm backend"):
            get_backend("mpi")
        with pytest.raises(ValueError, match="unknown comm backend"):
            launch(lambda comm: None, 2, backend="smoke-signal")

    def test_default_backend_override(self):
        assert default_backend_name() == "thread"
        try:
            set_default_backend("process")
            assert default_backend_name() == "process"
            assert get_backend(None).name == "process"
        finally:
            set_default_backend(None)
        assert default_backend_name() == "thread"
        with pytest.raises(ValueError):
            set_default_backend("bogus")

    def test_world_size_validated(self, backend):
        with pytest.raises(ValueError, match="world_size"):
            launch(lambda comm: None, 0, backend=backend)

    def test_backend_opts_forwarded_separately_from_fn_kwargs(self):
        import threading

        def worker(comm, suffix):
            return threading.current_thread().name + suffix

        # backend_opts reaches CommBackend.run; **kwargs reaches fn.
        results = launch(
            worker, 2, backend="thread",
            backend_opts={"thread_name_prefix": "conf-rank"},
            suffix="!",
        )
        assert results == ["conf-rank0!", "conf-rank1!"]


# ---------------------------------------------------------------------------
# point-to-point
# ---------------------------------------------------------------------------
def _ring_worker(comm):
    dest = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    comm.send(np.full(32, comm.rank, dtype=np.float64), dest, tag=1)
    got = comm.recv(source=src, tag=1, timeout=30)
    return float(got[0])


class TestPointToPoint:
    def test_results_indexed_by_rank(self, backend):
        assert launch(lambda comm: comm.rank * 10, 4, backend=backend) == [0, 10, 20, 30]

    def test_rank_and_size(self, backend):
        assert launch(lambda comm: (comm.rank, comm.size), 3, backend=backend) == [
            (0, 3), (1, 3), (2, 3),
        ]

    @pytest.mark.parametrize("size", [2, 4])
    def test_ring(self, backend, size):
        assert launch(_ring_worker, size, backend=backend) == [
            float((r - 1) % size) for r in range(size)
        ]

    def test_tag_matching_out_of_order(self, backend):
        def worker(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag=7)
                comm.send("second", 1, tag=8)
                return None
            # Receive in reverse tag order: matching must be by tag, not
            # arrival, with the unmatched message staying queued.
            second = comm.recv(source=0, tag=8, timeout=30)
            first = comm.recv(source=0, tag=7, timeout=30)
            return (first, second)

        assert launch(worker, 2, backend=backend)[1] == ("first", "second")

    def test_any_source_gather(self, backend):
        def worker(comm):
            if comm.rank == 0:
                got = sorted(comm.recv(tag=3, timeout=30) for _ in range(comm.size - 1))
                return got
            comm.send(comm.rank * 11, 0, tag=3)
            return None

        assert launch(worker, 4, backend=backend)[0] == [11, 22, 33]

    def test_isend_irecv(self, backend):
        def worker(comm):
            if comm.rank == 0:
                req = comm.isend({"k": [1, 2]}, 1, tag=4)
                assert req.test()
                return None
            req = comm.irecv(source=0, tag=4)
            return req.wait(timeout=30)

        assert launch(worker, 2, backend=backend)[1] == {"k": [1, 2]}

    def test_probe_and_poll(self, backend):
        def worker(comm):
            if comm.rank == 0:
                comm.send(5, 1, tag=9)
                return True
            # Delivery may be asynchronous (socket transport): poll until
            # the message lands, bounded by a deadline.
            deadline = time.monotonic() + 30
            while not comm.probe(tag=9):
                if time.monotonic() > deadline:
                    return False
                time.sleep(0.001)
            assert comm.poll(tag=8) is None
            return comm.poll(tag=9) == 5

        assert all(launch(worker, 2, backend=backend))

    def test_send_copy_isolation(self, backend):
        def worker(comm):
            if comm.rank == 0:
                data = np.zeros(8)
                comm.send(data, 1, tag=2)
                data[:] = 99  # mutation after send must not be visible
                return None
            return float(np.max(np.abs(comm.recv(source=0, tag=2, timeout=30))))

        assert launch(worker, 2, backend=backend)[1] == 0.0

    def test_barrier(self, backend):
        def worker(comm):
            if comm.rank == 0:
                time.sleep(0.05)
            comm.barrier(timeout=30)
            comm.barrier(timeout=30)
            return comm.rank

        assert launch(worker, 4, backend=backend) == [0, 1, 2, 3]

    def test_dup_channel_isolation(self, backend):
        def worker(comm):
            from repro.comm.router import Channel

            lib = comm.dup(Channel.LIB)
            if comm.rank == 0:
                lib.send("lib", 1, tag=0)
                comm.send("app", 1, tag=0)
                return None
            return (comm.recv(source=0, tag=0, timeout=30),
                    lib.recv(source=0, tag=0, timeout=30))

        assert launch(worker, 2, backend=backend)[1] == ("app", "lib")

    def test_dynamic_subchannels(self, backend):
        def worker(comm):
            bucket = comm.dup("lib.bucket3")
            if comm.rank == 0:
                bucket.send(np.arange(4.0), 1, tag=1)
                return None
            return float(bucket.recv(source=0, tag=1, timeout=30)[2])

        assert launch(worker, 2, backend=backend)[1] == 2.0

    def test_unknown_channel_fails_fast(self, backend):
        def worker(comm):
            try:
                comm.dup("bogus").send(1, (comm.rank + 1) % comm.size, tag=0)
            except KeyError:
                return "keyerror"
            return "sent"

        assert launch(worker, 2, backend=backend) == ["keyerror", "keyerror"]


# ---------------------------------------------------------------------------
# payload round-trips
# ---------------------------------------------------------------------------
def _payload_roundtrip_worker(comm, payloads):
    if comm.rank == 0:
        for i, payload in enumerate(payloads):
            comm.send(payload, 1, tag=100 + i)
        return None
    return [comm.recv(source=0, tag=100 + i, timeout=30) for i in range(len(payloads))]


class TestPayloads:
    def test_array_dtype_and_shape_preserved(self, backend):
        payloads = [
            np.arange(6, dtype=np.int32).reshape(2, 3),
            np.ones((3, 1, 2), dtype=np.float32),
            np.array(3.25),                      # 0-d
            np.empty((0, 4), dtype=np.float64),  # empty
            np.arange(12).reshape(3, 4).T,       # non-contiguous view
            np.array([True, False]),
            np.array(                            # structured/record dtype
                [(1, 2.5), (3, 4.5)], dtype=[("a", "<i4"), ("b", "<f8")]
            ),
        ]
        got = launch(_payload_roundtrip_worker, 2, payloads, backend=backend)[1]
        for sent, received in zip(payloads, got):
            assert isinstance(received, np.ndarray)
            assert received.dtype == sent.dtype
            assert received.shape == sent.shape
            assert np.array_equal(received, np.ascontiguousarray(sent).reshape(sent.shape))
        assert got[-1]["a"].tolist() == [1, 3]  # field names survive the wire

    def test_object_payloads(self, backend):
        payloads = [
            ("activate", 3, 1, 0),            # activation control tuple
            ("arrival", 2, 5),                # quorum arrival notification
            ("barrier", 0, 1),                # barrier token
            {"order": [2, 0, 1], "epoch": 4}, # negotiation-style dict
            None,
            "text",
            12345,
        ]
        got = launch(_payload_roundtrip_worker, 2, payloads, backend=backend)[1]
        assert got == payloads

    def test_large_array(self, backend):
        def worker(comm):
            data = np.arange(1 << 17, dtype=np.float64)  # 1 MiB
            if comm.rank == 0:
                comm.send(data * 2, 1, tag=1)
                return True
            got = comm.recv(source=0, tag=1, timeout=60)
            return bool(np.array_equal(got, data * 2))

        assert all(launch(worker, 2, backend=backend))


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------
def _allreduce_worker(comm, algorithm):
    from repro.collectives.sync import allreduce

    data = np.full(513, comm.rank + 1.0)
    out = allreduce(comm, data, algorithm=algorithm)
    return float(out[0])


class TestCollectives:
    @pytest.mark.parametrize("algorithm", ["ring", "recursive_doubling", "rabenseifner"])
    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_allreduce(self, backend, algorithm, size):
        expected = float(size * (size + 1) // 2)
        assert launch(_allreduce_worker, size, algorithm, backend=backend) == [
            expected
        ] * size

    def test_broadcast_and_allgather(self, backend):
        def worker(comm):
            from repro.collectives.sync import allgather, broadcast

            root_value = np.full(17, 7.0) if comm.rank == 0 else None
            b = broadcast(comm, root_value, root=0)
            g = allgather(comm, comm.rank * 2)
            return float(b[0]), list(g)

        for b, g in launch(worker, 4, backend=backend):
            assert b == 7.0
            assert g == [0, 2, 4, 6]

    @pytest.mark.parametrize("mode", ["solo", "majority"])
    def test_partial_allreduce(self, backend, mode):
        def worker(comm):
            from repro.collectives.partial import make_partial_allreduce

            partial = make_partial_allreduce(comm, (64,), mode, seed=1)
            values = []
            for _ in range(3):
                result = partial.reduce(np.ones(64), timeout=60)
                assert 0 <= result.num_active <= comm.size
                values.append(float(result.data[0]))
            partial.close()
            # Every reduced value is an average of >= 0 fresh/stale ones
            # over P; bounded by the number of rounds contributed to.
            return all(0.0 <= v <= 3.0 + 1e-9 for v in values)

        assert all(launch(worker, 4, backend=backend, timeout=120))

    def test_fused_synchronous_exchange(self, backend):
        def worker(comm):
            from repro.training.exchange import SynchronousExchange

            exchange = SynchronousExchange(
                comm,
                algorithm="ring",
                fusion_threshold_bytes=16 * 1024,
                pipeline_chunks=2,
            )
            result = exchange.exchange(np.full(1 << 13, comm.rank + 1.0))
            return float(result.gradient[0]), len(result.bucket_waits)

        expected_avg = (1.0 + 4.0) / 2.0
        for value, buckets in launch(worker, 4, backend=backend, timeout=120):
            assert abs(value - expected_avg) < 1e-12
            assert buckets == (1 << 13) * 8 // (16 * 1024)

    @pytest.mark.parametrize(
        "codec", ["none", "fp16", "bf16", "int8", "topk:ratio=1.0"]
    )
    def test_fused_exchange_with_compression(self, backend, codec):
        """Compressed fused exchange: same contract on every transport.

        Constant-valued buckets make every codec's round trip exact, so
        the averaged gradient can be asserted bit-tight while the wire
        payload (ndarray for reduce-closed codecs, composite tuples for
        int8/topk) crosses the real transport.
        """

        def worker(comm):
            from repro.compression import get_codec
            from repro.training.exchange import SynchronousExchange

            exchange = SynchronousExchange(
                comm,
                algorithm="ring",
                fusion_threshold_bytes=16 * 1024,
                pipeline_chunks=2,
                compression=codec,
            )
            result = exchange.exchange(np.full(1 << 13, comm.rank + 1.0))
            dense_bytes = (1 << 13) * 8
            expected_wire = sum(
                get_codec(codec).wire_bytes(b.num_elements)
                for b in exchange._bucketer.buckets
            )
            return (
                float(np.max(np.abs(result.gradient - 2.5))),
                result.wire_bytes,
                expected_wire,
                dense_bytes,
            )

        for err, wire_bytes, expected_wire, dense in launch(
            worker, 4, backend=backend, timeout=120
        ):
            assert err < 1e-9
            assert wire_bytes == expected_wire
            if codec not in ("none", "topk:ratio=1.0"):
                assert wire_bytes < dense

    @pytest.mark.parametrize("codec", ["fp16", "topk:ratio=0.5"])
    def test_partial_exchange_with_compression(self, backend, codec):
        def worker(comm):
            from repro.training.exchange import PartialExchange

            exchange = PartialExchange(
                comm, 512, mode="solo", compression=codec
            )
            values = []
            for _ in range(3):
                result = exchange.exchange(np.ones(512))
                assert 0 <= result.num_active <= comm.size
                values.append(float(result.gradient[0]))
            exchange.close()
            # Bounded stale accumulation, as in the uncompressed test.
            return all(0.0 <= v <= 3.0 + 1e-6 for v in values)

        assert all(launch(worker, 4, backend=backend, timeout=120))


# ---------------------------------------------------------------------------
# failure contract
# ---------------------------------------------------------------------------
class TestFailures:
    def test_world_error_collects_failures(self, backend):
        def worker(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            # Other ranks block on a message that never arrives; the abort
            # must wake them instead of hanging the test.
            try:
                comm.recv(source=1, tag=99, timeout=60)
            except Exception:
                pass
            return comm.rank

        with pytest.raises(WorldError) as excinfo:
            launch(worker, 3, backend=backend, timeout=90)
        assert 1 in excinfo.value.failures
        assert isinstance(excinfo.value.failures[1], ValueError)
        assert "boom" in str(excinfo.value.failures[1])

    def test_failure_unblocks_barrier(self, backend):
        def worker(comm):
            if comm.rank == 0:
                raise RuntimeError("early exit")
            comm.barrier(timeout=60)
            return comm.rank

        with pytest.raises(WorldError) as excinfo:
            launch(worker, 2, backend=backend, timeout=90)
        assert isinstance(excinfo.value.failures[0], RuntimeError)


# ---------------------------------------------------------------------------
# pickle-safety (process-transport payload contract)
# ---------------------------------------------------------------------------
class TestPickleSafety:
    @pytest.mark.parametrize("op", [SUM, PROD, MAX, MIN, AVG])
    def test_registered_reduce_ops_roundtrip_to_singletons(self, op):
        clone = pickle.loads(pickle.dumps(op))
        assert clone is op  # registered ops deserialise to the registry instance

    def test_reduce_op_by_name_matches_get_op(self):
        for name in ("sum", "prod", "max", "min", "avg"):
            assert pickle.loads(pickle.dumps(get_op(name))) is get_op(name)

    def test_unregistered_reduce_op_roundtrip(self):
        custom = ReduceOp("absmax", np.fmax, 0.0, ufunc=np.fmax)
        clone = pickle.loads(pickle.dumps(custom))
        assert clone is not custom
        assert clone.name == "absmax" and clone.identity == 0.0
        assert np.allclose(clone(np.array([1.0]), np.array([-3.0])), [1.0])

    def test_message_roundtrip(self):
        msg = Message(source=2, dest=0, tag=7, payload=np.arange(5.0), seq=11)
        clone = pickle.loads(pickle.dumps(msg))
        assert (clone.source, clone.dest, clone.tag, clone.seq) == (2, 0, 7, 11)
        assert np.array_equal(clone.payload, msg.payload)

    def test_reduce_op_usable_after_cross_process_trip(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(SUM, 1, tag=1)
                return True
            op = comm.recv(source=0, tag=1, timeout=30)
            return op is SUM and float(op(np.array([2.0]), np.array([3.0]))[0]) == 5.0

        assert all(launch(worker, 2, backend="process"))


# ---------------------------------------------------------------------------
# the deprecated shim
# ---------------------------------------------------------------------------
class TestRunWorldShim:
    def test_run_world_warns_and_still_works(self):
        from repro.comm import run_world

        with pytest.deprecated_call():
            results = run_world(3, lambda comm: comm.rank)
        assert results == [0, 1, 2]

    def test_run_world_warning_points_at_launch(self):
        """The deprecation message must tell callers what to migrate to."""
        import warnings

        from repro.comm import run_world

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = run_world(2, lambda comm: comm.size, channels=("app",))
        assert results == [2, 2]
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "launch" in message and "run_world" in message

    def test_run_world_matches_launch_results(self):
        from repro.comm import launch, run_world

        def worker(comm, offset):
            return comm.rank * 10 + offset

        with pytest.deprecated_call():
            legacy = run_world(3, worker, 7)
        assert legacy == launch(worker, 3, 7, backend="thread")
