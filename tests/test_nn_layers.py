"""Tests for the neural-network layers (forward shapes + gradient checks)."""

import numpy as np
import pytest

from conftest import numerical_gradient_check
from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2D,
    LSTM,
    LSTMCell,
    MaxPool2D,
    AvgPool2D,
    MultiHeadSelfAttention,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
    TransformerEncoderBlock,
)
from repro.nn.layers.norm import LayerNorm
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.module import Module, Parameter


class _WrapLoss:
    """Adapts a layer stack into a model with a scalar loss for grad checks."""

    def __init__(self):
        self.loss = MSELoss()

    def __call__(self, outputs, targets):
        loss, grad = self.loss(outputs.reshape(outputs.shape[0], -1), targets)
        return loss, grad.reshape(outputs.shape)


class TestModuleBasics:
    def test_parameter_registration_and_count(self):
        layer = Dense(4, 3, seed=0)
        names = dict(layer.named_parameters())
        assert set(names) == {"W", "b"}
        assert layer.num_parameters() == 4 * 3 + 3

    def test_nested_module_names(self):
        seq = Sequential(Dense(2, 3, seed=0), ReLU(), Dense(3, 1, seed=0))
        names = [n for n, _ in seq.named_parameters()]
        assert "layer0/W" in names and "layer2/b" in names

    def test_train_eval_propagates(self):
        seq = Sequential(Dense(2, 2, seed=0), Dropout(0.5, seed=0))
        seq.eval()
        assert not seq.layers[1].training
        seq.train()
        assert seq.layers[1].training

    def test_zero_grad(self):
        layer = Dense(3, 2, seed=0)
        layer.forward(np.ones((4, 3)))
        layer.backward(np.ones((4, 2)))
        assert np.any(layer.W.grad != 0)
        layer.zero_grad()
        assert np.all(layer.W.grad == 0)

    def test_setattr_before_init_raises(self):
        class Bad(Module):
            def __init__(self):
                self.x = Parameter(np.zeros(1))  # missing super().__init__()

        with pytest.raises(AttributeError):
            Bad()


class TestDense:
    def test_forward_shape_and_values(self):
        layer = Dense(3, 2, seed=0)
        out = layer(np.zeros((5, 3)))
        assert out.shape == (5, 2)
        assert np.allclose(out, 0.0)  # zero input, zero bias

    def test_gradcheck(self, rng):
        layer = Dense(6, 4, seed=1)
        x = rng.normal(size=(3, 6))
        y = rng.normal(size=(3, 4))
        numerical_gradient_check(layer, x, y, MSELoss(), rng)

    def test_three_dimensional_input(self, rng):
        layer = Dense(5, 2, seed=1)
        out = layer(rng.normal(size=(2, 7, 5)))
        assert out.shape == (2, 7, 2)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == (2, 7, 5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Dense(3, 2, seed=0)(np.zeros((4, 5)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Dense(3, 2, seed=0).backward(np.zeros((1, 2)))


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, Sigmoid, Tanh])
    def test_gradcheck(self, cls, rng):
        model = Sequential(Dense(4, 4, seed=2), cls(), Dense(4, 2, seed=3))
        x = rng.normal(size=(5, 4))
        y = rng.normal(size=(5, 2))
        numerical_gradient_check(model, x, y, MSELoss(), rng)

    def test_relu_masks_negative(self):
        relu = ReLU()
        out = relu(np.array([-1.0, 2.0]))
        assert np.allclose(out, [0.0, 2.0])
        assert np.allclose(relu.backward(np.ones(2)), [0.0, 1.0])

    def test_sigmoid_range(self, rng):
        out = Sigmoid()(rng.normal(size=100) * 50)
        assert np.all((out >= 0) & (out <= 1))


class TestConvAndPooling:
    def test_conv_output_shape(self):
        conv = Conv2D(3, 8, kernel_size=3, stride=2, padding=1, seed=0)
        out = conv(np.zeros((2, 3, 8, 8)))
        assert out.shape == (2, 8, 4, 4)

    def test_conv_gradcheck(self, rng):
        model = Sequential(Conv2D(2, 3, kernel_size=3, seed=1), Flatten())
        x = rng.normal(size=(2, 2, 5, 5))
        y = rng.normal(size=(2, 3 * 5 * 5))
        numerical_gradient_check(model, x, y, MSELoss(), rng)

    def test_conv_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            Conv2D(3, 4, seed=0)(np.zeros((1, 2, 6, 6)))

    def test_maxpool_forward_backward(self):
        pool = MaxPool2D(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool(x)
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4  # one gradient unit per window

    def test_avgpool_and_global(self):
        x = np.ones((2, 3, 4, 4))
        assert AvgPool2D(2)(x).shape == (2, 3, 2, 2)
        out = GlobalAvgPool2D()(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, 1.0)

    def test_pool_requires_divisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(3)(np.zeros((1, 1, 4, 4)))

    def test_pooling_gradchecks(self, rng):
        model = Sequential(Conv2D(1, 2, seed=0), MaxPool2D(2), Flatten())
        x = rng.normal(size=(2, 1, 4, 4))
        y = rng.normal(size=(2, 2 * 2 * 2))
        numerical_gradient_check(model, x, y, MSELoss(), rng)


class TestNormalization:
    def test_batchnorm_normalises(self, rng):
        bn = BatchNorm(4)
        x = rng.normal(3.0, 2.0, size=(64, 4))
        out = bn(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm(2, momentum=0.0)
        x = rng.normal(5.0, 1.0, size=(32, 2))
        bn(x)  # training forward updates running stats (momentum=0 -> copy)
        bn.eval()
        out = bn(np.full((4, 2), 5.0))
        assert np.allclose(out, 0.0, atol=0.3)

    def test_batchnorm_gradcheck_dense_and_conv(self, rng):
        model = Sequential(Dense(3, 4, seed=0), BatchNorm(4), Dense(4, 2, seed=1))
        x = rng.normal(size=(8, 3))
        y = rng.normal(size=(8, 2))
        numerical_gradient_check(model, x, y, MSELoss(), rng)
        conv_model = Sequential(Conv2D(1, 3, seed=0), BatchNorm(3), Flatten())
        xc = rng.normal(size=(4, 1, 4, 4))
        yc = rng.normal(size=(4, 3 * 16))
        numerical_gradient_check(conv_model, xc, yc, MSELoss(), rng)

    def test_layernorm_gradcheck(self, rng):
        model = Sequential(Dense(5, 5, seed=0), LayerNorm(5), Dense(5, 2, seed=1))
        x = rng.normal(size=(6, 5))
        y = rng.normal(size=(6, 2))
        numerical_gradient_check(model, x, y, MSELoss(), rng)

    def test_batchnorm_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            BatchNorm(3)(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            BatchNorm(3)(np.zeros((2, 3, 4)))


class TestDropoutFlatten:
    def test_dropout_eval_identity(self, rng):
        drop = Dropout(0.5, seed=0)
        drop.eval()
        x = rng.normal(size=(10, 10))
        assert np.allclose(drop(x), x)

    def test_dropout_training_scales(self, rng):
        drop = Dropout(0.5, seed=0)
        x = np.ones((2000,))
        out = drop(x)
        # Inverted dropout keeps the expectation.
        assert out.mean() == pytest.approx(1.0, abs=0.1)
        assert np.any(out == 0.0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_flatten_roundtrip(self, rng):
        flat = Flatten()
        x = rng.normal(size=(3, 2, 4))
        out = flat(x)
        assert out.shape == (3, 8)
        assert flat.backward(out).shape == x.shape


class TestResidual:
    def test_identity_shortcut(self, rng):
        block = Residual(Sequential(Dense(4, 4, seed=0)))
        x = rng.normal(size=(3, 4))
        out = block(x)
        assert out.shape == (3, 4)

    def test_shape_mismatch_raises(self, rng):
        block = Residual(Sequential(Dense(4, 3, seed=0)))
        with pytest.raises(ValueError):
            block(rng.normal(size=(2, 4)))

    def test_gradcheck_with_projection(self, rng):
        block = Residual(Dense(4, 6, seed=0), shortcut=Dense(4, 6, seed=1))
        x = rng.normal(size=(3, 4))
        y = rng.normal(size=(3, 6))
        numerical_gradient_check(block, x, y, MSELoss(), rng)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, seed=0)
        out = emb(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 4)

    def test_gradient_accumulates_per_token(self):
        emb = Embedding(5, 2, seed=0)
        tokens = np.array([[1, 1, 2]])
        emb(tokens)
        emb.backward(np.ones((1, 3, 2)))
        assert np.allclose(emb.W.grad[1], 2.0)  # token 1 appears twice
        assert np.allclose(emb.W.grad[2], 1.0)
        assert np.allclose(emb.W.grad[0], 0.0)

    def test_rejects_invalid_tokens(self):
        emb = Embedding(5, 2, seed=0)
        with pytest.raises(ValueError):
            emb(np.array([[7]]))
        with pytest.raises(TypeError):
            emb(np.array([[0.5]]))


class TestLSTM:
    def test_cell_step_shapes(self, rng):
        cell = LSTMCell(3, 5, seed=0)
        h, c = cell.forward(rng.normal(size=(2, 3)))
        assert h.shape == (2, 5) and c.shape == (2, 5)

    def test_lstm_masking_equivalence(self, rng):
        """Padding beyond a sequence's length must not change its output."""
        lstm = LSTM(3, 4, seed=0)
        x_short = rng.normal(size=(1, 3, 3))
        out_short = lstm.forward(x_short, lengths=np.array([3]))
        x_padded = np.concatenate([x_short, rng.normal(size=(1, 4, 3))], axis=1)
        out_padded = lstm.forward(x_padded, lengths=np.array([3]))
        assert np.allclose(out_short, out_padded)

    def test_lstm_gradcheck_variable_lengths(self, rng):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.lstm = LSTM(3, 4, seed=1)
                self.head = Dense(4, 2, seed=2)
                self.lengths = np.array([5, 2, 4])

            def forward(self, x):
                return self.head(self.lstm.forward(x, lengths=self.lengths))

            def backward(self, grad):
                return self.lstm.backward(self.head.backward(grad))

        model = Wrapper()
        x = rng.normal(size=(3, 5, 3))
        y = rng.normal(size=(3, 2))
        numerical_gradient_check(model, x, y, MSELoss(), rng, tol=1e-3)

    def test_lstm_return_sequences(self, rng):
        lstm = LSTM(2, 3, return_sequences=True, seed=0)
        out = lstm.forward(rng.normal(size=(2, 6, 2)))
        assert out.shape == (2, 6, 3)
        grad_in = lstm.backward(np.ones_like(out))
        assert grad_in.shape == (2, 6, 2)

    def test_invalid_lengths(self, rng):
        lstm = LSTM(2, 3, seed=0)
        with pytest.raises(ValueError):
            lstm.forward(rng.normal(size=(2, 4, 2)), lengths=np.array([5, 1]))


class TestAttention:
    def test_attention_shapes_and_mask(self, rng):
        attn = MultiHeadSelfAttention(8, num_heads=2, seed=0)
        x = rng.normal(size=(2, 5, 8))
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 1]], dtype=bool)
        out = attn.forward(x, mask=mask)
        assert out.shape == (2, 5, 8)

    def test_attention_gradcheck(self, rng):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.attn = MultiHeadSelfAttention(4, num_heads=2, seed=1)

            def forward(self, x):
                return self.attn.forward(x)

            def backward(self, grad):
                return self.attn.backward(grad)

        model = Wrapper()
        x = rng.normal(size=(2, 3, 4))
        y = rng.normal(size=(2, 3 * 4))
        numerical_gradient_check(model, x, y, _WrapLoss(), rng, tol=1e-3)

    def test_encoder_block_gradcheck(self, rng):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.block = TransformerEncoderBlock(4, num_heads=2, seed=2)

            def forward(self, x):
                return self.block.forward(x)

            def backward(self, grad):
                return self.block.backward(grad)

        model = Wrapper()
        x = rng.normal(size=(2, 3, 4))
        y = rng.normal(size=(2, 12))
        numerical_gradient_check(model, x, y, _WrapLoss(), rng, tol=1e-3)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(6, num_heads=4)
