"""Tests for models, losses, optimizers, metrics and parameter flattening."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import numerical_gradient_check
from repro.nn import (
    Adam,
    ConstantLR,
    Dense,
    MomentumSGD,
    MSELoss,
    SGD,
    Sequential,
    SoftmaxCrossEntropyLoss,
    StepDecayLR,
    WarmupLR,
    accuracy,
    assign_flat_gradients,
    assign_flat_parameters,
    flatten_gradients,
    flatten_parameters,
    parameter_count,
    topk_accuracy,
)
from repro.nn.models import (
    HyperplaneMLP,
    MLPClassifier,
    ResNetClassifier,
    SequenceLSTMClassifier,
    TransformerClassifier,
    resnet_cifar,
    resnet_imagenet_lite,
)


class TestLosses:
    def test_mse_value_and_gradient(self):
        loss, grad = MSELoss()(np.array([[1.0], [3.0]]), np.array([[0.0], [1.0]]))
        assert loss == pytest.approx((1 + 4) / 2)
        assert np.allclose(grad, [[1.0], [2.0]])

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 1)), np.zeros((3, 1)))

    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 0.0, 0.0]])
        labels = np.array([0])
        loss, grad = SoftmaxCrossEntropyLoss()(logits, labels)
        probs = np.exp(logits[0]) / np.exp(logits[0]).sum()
        assert loss == pytest.approx(-np.log(probs[0]))
        assert grad.shape == (1, 3)
        assert grad[0].sum() == pytest.approx(0.0, abs=1e-12)

    def test_cross_entropy_label_smoothing(self):
        plain = SoftmaxCrossEntropyLoss()(np.array([[5.0, 0.0]]), np.array([0]))[0]
        smoothed = SoftmaxCrossEntropyLoss(0.2)(np.array([[5.0, 0.0]]), np.array([0]))[0]
        assert smoothed > plain

    def test_cross_entropy_invalid_labels(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropyLoss()(np.zeros((2, 3)), np.array([0, 5]))
        with pytest.raises(TypeError):
            SoftmaxCrossEntropyLoss()(np.zeros((1, 3)), np.array([0.5]))

    def test_cross_entropy_gradient_direction(self):
        """Following the negative gradient must reduce the loss."""
        logits = np.array([[0.3, -0.2, 0.1]])
        labels = np.array([2])
        loss_fn = SoftmaxCrossEntropyLoss()
        loss, grad = loss_fn(logits, labels)
        better, _ = loss_fn(logits - 0.1 * grad, labels)
        assert better < loss


class TestMetrics:
    def test_topk(self):
        logits = np.array([[0.1, 0.9, 0.0], [0.8, 0.1, 0.1]])
        labels = np.array([1, 2])
        assert topk_accuracy(logits, labels, k=1) == pytest.approx(0.5)
        assert topk_accuracy(logits, labels, k=3) == pytest.approx(1.0)
        assert accuracy(logits, labels) == pytest.approx(0.5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros((2, 3)), np.array([0, 1]), k=4)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_property_topk_monotone_in_k(self, k):
        rng = np.random.default_rng(k)
        logits = rng.normal(size=(30, 6))
        labels = rng.integers(0, 6, size=30)
        accs = [topk_accuracy(logits, labels, k=i) for i in range(1, k + 1)]
        assert all(b >= a - 1e-12 for a, b in zip(accs, accs[1:]))


class TestParameterFlattening:
    def test_roundtrip(self, rng):
        model = MLPClassifier(6, (5,), 3, seed=0)
        flat = flatten_parameters(model)
        assert flat.size == model.num_parameters() == parameter_count(model)
        new = rng.normal(size=flat.size)
        assign_flat_parameters(model, new)
        assert np.allclose(flatten_parameters(model), new)

    def test_gradient_roundtrip(self, rng):
        model = MLPClassifier(4, (4,), 2, seed=0)
        x = rng.normal(size=(3, 4))
        y = rng.integers(0, 2, 3)
        out = model.forward(x)
        _, grad = SoftmaxCrossEntropyLoss()(out, y)
        model.zero_grad()
        model.backward(grad)
        flat = flatten_gradients(model)
        assign_flat_gradients(model, np.zeros_like(flat))
        assert np.allclose(flatten_gradients(model), 0.0)
        assign_flat_gradients(model, flat)
        assert np.allclose(flatten_gradients(model), flat)

    def test_size_mismatch(self):
        model = MLPClassifier(4, (4,), 2, seed=0)
        with pytest.raises(ValueError):
            assign_flat_parameters(model, np.zeros(3))

    def test_order_is_stable(self):
        a = MLPClassifier(4, (4,), 2, seed=5)
        b = MLPClassifier(4, (4,), 2, seed=5)
        assert np.allclose(flatten_parameters(a), flatten_parameters(b))


class TestOptimizers:
    def _quadratic_setup(self):
        model = Dense(1, 1, bias=False, init="normal", seed=0)
        model.W.data[:] = 5.0
        return model

    def _step(self, model, optimizer, steps=200):
        # Minimise f(w) = w^2 via its gradient 2w.
        for _ in range(steps):
            model.zero_grad()
            model.W.grad[:] = 2.0 * model.W.data
            optimizer.step()
        return float(model.W.data[0, 0])

    def test_sgd_converges_on_quadratic(self):
        model = self._quadratic_setup()
        assert abs(self._step(model, SGD(model, 0.1))) < 1e-3

    def test_momentum_converges(self):
        model = self._quadratic_setup()
        assert abs(self._step(model, MomentumSGD(model, 0.05, momentum=0.9))) < 1e-3

    def test_adam_converges(self):
        model = self._quadratic_setup()
        assert abs(self._step(model, Adam(model, 0.1), steps=400)) < 1e-2

    def test_weight_decay_shrinks_weights(self):
        model = self._quadratic_setup()
        opt = SGD(model, 0.1, weight_decay=0.5)
        model.zero_grad()
        opt.step()
        assert abs(float(model.W.data[0, 0])) < 5.0

    def test_schedules(self):
        assert ConstantLR(0.1).lr(100) == 0.1
        sched = StepDecayLR(1.0, milestones=[10, 20], factor=0.1)
        assert sched.lr(5) == 1.0
        assert sched.lr(15) == pytest.approx(0.1)
        assert sched.lr(25) == pytest.approx(0.01)
        warm = WarmupLR(ConstantLR(1.0), warmup_steps=10)
        assert warm.lr(0) == pytest.approx(0.1)
        assert warm.lr(9) == pytest.approx(1.0)
        assert warm.lr(50) == 1.0

    def test_invalid_hyperparameters(self):
        model = self._quadratic_setup()
        with pytest.raises(ValueError):
            SGD(model, -1.0)
        with pytest.raises(ValueError):
            MomentumSGD(model, 0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(model, 0.1, beta1=1.0)

    def test_training_reduces_loss_end_to_end(self, rng):
        model = MLPClassifier(8, (16,), 3, seed=0)
        opt = MomentumSGD(model, 0.1)
        loss_fn = SoftmaxCrossEntropyLoss()
        x = rng.normal(size=(64, 8))
        templates = rng.normal(size=(3, 8)) * 2
        y = rng.integers(0, 3, 64)
        x = x + templates[y]
        first = None
        for _ in range(30):
            out = model.forward(x)
            loss, grad = loss_fn(out, y)
            if first is None:
                first = loss
            model.zero_grad()
            model.backward(grad)
            opt.step()
        assert loss < first * 0.5


class TestModels:
    def test_hyperplane_mlp_parameter_count_matches_table1(self):
        assert HyperplaneMLP(8192).num_parameters() == 8193

    def test_hyperplane_learns_coefficients(self, rng):
        dim = 16
        model = HyperplaneMLP(dim, seed=0)
        coeffs = rng.normal(size=dim)
        x = rng.normal(size=(256, dim))
        y = (x @ coeffs)[:, None]
        opt = SGD(model, 0.5)
        loss_fn = MSELoss()
        for _ in range(300):
            out = model.forward(x)
            loss, grad = loss_fn(out, y)
            model.zero_grad()
            model.backward(grad)
            opt.step()
        learned = model.linear.W.data[:, 0]
        assert np.allclose(learned, coeffs, atol=0.1)

    def test_resnet_forward_and_gradcheck(self, rng):
        model = resnet_cifar(num_classes=4, width=4, blocks_per_stage=1, seed=0)
        x = rng.normal(size=(2, 3, 8, 8))
        assert model.forward(x).shape == (2, 4)
        y = rng.integers(0, 4, 2)
        numerical_gradient_check(model, x, y, SoftmaxCrossEntropyLoss(), rng, tol=1e-3)

    def test_resnet_imagenet_lite_has_four_stages(self):
        model = resnet_imagenet_lite(num_classes=10, width=4, blocks_per_stage=1, seed=0)
        out = model.forward(np.zeros((1, 3, 16, 16)))
        assert out.shape == (1, 10)

    def test_resnet32_structure_parameter_count(self):
        """blocks_per_stage=5, width=16 recovers the real ResNet-32 scale."""
        model = resnet_cifar(width=16, blocks_per_stage=5, seed=0)
        # The paper's ResNet-32 has 467k parameters; the reproduction's
        # basic-block variant lands in the same ballpark.
        assert 300_000 < model.num_parameters() < 700_000

    def test_lstm_classifier_dict_batches(self, rng):
        model = SequenceLSTMClassifier(feature_dim=5, hidden_dim=6, num_classes=4, seed=0)
        batch = {"x": rng.normal(size=(3, 7, 5)), "lengths": np.array([7, 2, 5])}
        out = model.forward(batch)
        assert out.shape == (3, 4)
        y = rng.integers(0, 4, 3)
        numerical_gradient_check(model, batch, y, SoftmaxCrossEntropyLoss(), rng, tol=1e-3)

    def test_transformer_classifier(self, rng):
        model = TransformerClassifier(
            vocab_size=30, dim=8, num_heads=2, num_layers=1, num_classes=3,
            max_len=16, seed=0,
        )
        batch = {"tokens": rng.integers(0, 30, (2, 6)), "lengths": np.array([6, 3])}
        out = model.forward(batch)
        assert out.shape == (2, 3)
        y = rng.integers(0, 3, 2)
        numerical_gradient_check(model, batch, y, SoftmaxCrossEntropyLoss(), rng, tol=1e-3)

    def test_transformer_rejects_too_long(self, rng):
        model = TransformerClassifier(vocab_size=10, dim=8, max_len=4, seed=0)
        with pytest.raises(ValueError):
            model.forward({"tokens": rng.integers(0, 10, (1, 8))})

    def test_identical_seeds_give_identical_models(self):
        a = resnet_cifar(width=4, seed=9)
        b = resnet_cifar(width=4, seed=9)
        assert np.allclose(flatten_parameters(a), flatten_parameters(b))
