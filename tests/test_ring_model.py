"""SPSC ring model checker: healthy protocol safe, mutations caught."""

import pytest

from repro.analysis.ring_model import (
    HEALTHY_CONFIGS,
    MUTATION_CONFIGS,
    RingConfig,
    explore,
    verify_ring_protocol,
)


@pytest.mark.parametrize(
    "config", HEALTHY_CONFIGS, ids=[c.label for c in HEALTHY_CONFIGS]
)
def test_healthy_protocol_has_no_violations(config):
    result = explore(config)
    assert result.ok, [str(v) for v in result.violations]
    assert result.states > 0


@pytest.mark.parametrize(
    "config, expected_kind",
    MUTATION_CONFIGS,
    ids=[c.label for c, _ in MUTATION_CONFIGS],
)
def test_each_mutation_is_caught(config, expected_kind):
    result = explore(config)
    kinds = {v.kind for v in result.violations}
    assert expected_kind in kinds, (
        f"expected {expected_kind}, saw {sorted(kinds)}"
    )


def test_violations_carry_a_trace():
    config, expected_kind = MUTATION_CONFIGS[0]
    result = explore(config)
    bad = [v for v in result.violations if v.kind == expected_kind]
    assert bad and bad[0].trace, "counterexample must include an interleaving"
    # the trace is made of model step labels
    assert all(step.startswith(("p_", "c_", "(")) for step in bad[0].trace)


def test_capacity_one_forces_the_full_ring_path():
    result = explore(RingConfig(capacity=1, frame_sizes=(3,)))
    assert result.ok, [str(v) for v in result.violations]


def test_invalid_configs_are_rejected():
    with pytest.raises(ValueError, match="capacity"):
        explore(RingConfig(capacity=0, frame_sizes=(1,)))
    with pytest.raises(ValueError, match="frame sizes"):
        explore(RingConfig(capacity=2, frame_sizes=(0,)))


def test_verify_ring_protocol_rollup():
    rows = verify_ring_protocol()
    assert len(rows) == len(HEALTHY_CONFIGS) + len(MUTATION_CONFIGS)
    for row in rows:
        assert row.ok, [str(v) for v in row.violations]
