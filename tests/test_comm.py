"""Tests for the message-passing substrate (repro.comm), thread transport."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    ANY_SOURCE,
    ANY_TAG,
    AVG,
    MAX,
    MIN,
    PROD,
    SUM,
    Communicator,
    Mailbox,
    MailboxClosed,
    Message,
    Router,
    ThreadWorld,
    WorldError,
    get_op,
    launch,
)
from repro.comm.router import Channel


class TestMessage:
    def test_matches_wildcards(self):
        msg = Message(source=2, dest=0, tag=7, payload=None)
        assert msg.matches(ANY_SOURCE, ANY_TAG)
        assert msg.matches(2, 7)
        assert not msg.matches(1, 7)
        assert not msg.matches(2, 8)

    def test_nbytes(self):
        msg = Message(0, 1, 0, np.zeros(10))
        assert msg.nbytes() == 80
        assert Message(0, 1, 0, "hello").nbytes() == 0


class TestReduceOps:
    def test_sum_prod_max_min(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, -1.0])
        assert np.allclose(SUM(a, b), [4, 1])
        assert np.allclose(PROD(a, b), [3, -2])
        assert np.allclose(MAX(a, b), [3, 2])
        assert np.allclose(MIN(a, b), [1, -1])

    def test_reduce_many_and_identity(self):
        arrays = [np.full(3, i) for i in range(1, 5)]
        assert np.allclose(SUM.reduce_many(arrays), np.full(3, 10))
        assert np.allclose(MAX.identity_like((2,)), [-np.inf, -np.inf])
        with pytest.raises(ValueError):
            SUM.reduce_many([])

    def test_get_op(self):
        assert get_op("sum") is SUM
        assert get_op(AVG) is AVG
        with pytest.raises(ValueError):
            get_op("median")


class TestMailbox:
    def test_fifo_per_key_and_out_of_order_matching(self):
        mb = Mailbox(0, "app")
        mb.put(Message(1, 0, 5, "a"))
        mb.put(Message(2, 0, 6, "b"))
        mb.put(Message(1, 0, 5, "c"))
        assert mb.get(source=2, tag=6).payload == "b"
        assert mb.get(source=1, tag=5).payload == "a"
        assert mb.get(source=1, tag=5).payload == "c"

    def test_timeout(self):
        mb = Mailbox(0, "app")
        with pytest.raises(TimeoutError):
            mb.get(timeout=0.01)

    def test_probe_and_poll(self):
        mb = Mailbox(0, "app")
        assert not mb.probe()
        assert mb.poll() is None
        mb.put(Message(0, 0, 1, "x"))
        assert mb.probe(tag=1)
        assert mb.poll(tag=2) is None
        assert mb.poll(tag=1).payload == "x"

    def test_closed_mailbox(self):
        mb = Mailbox(0, "app")
        mb.close()
        with pytest.raises(MailboxClosed):
            mb.get(timeout=0.01)
        with pytest.raises(MailboxClosed):
            mb.put(Message(0, 0, 0, None))

    def test_close_wakes_blocked_receiver(self):
        mb = Mailbox(0, "app")
        errors = []

        def blocked():
            try:
                mb.get(timeout=5)
            except MailboxClosed:
                errors.append("closed")

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.05)
        mb.close()
        t.join(timeout=1)
        assert errors == ["closed"]


class TestRouter:
    def test_deliver_and_stats(self):
        router = Router(2)
        comm0 = Communicator(router, 0)
        comm0.send(np.ones(4), dest=1, tag=3)
        assert router.message_count == 1
        assert router.byte_count == 32
        assert router.pending_messages() == 1
        msg = router.mailbox(1, Channel.APP).get(timeout=1)
        assert np.allclose(msg.payload, 1)

    def test_invalid_rank_and_channel(self):
        router = Router(2)
        with pytest.raises(ValueError):
            router.mailbox(5, Channel.APP)
        with pytest.raises(ValueError):
            Router(0)

    def test_dynamic_channels_created_on_first_use(self):
        # "<known>.<suffix>" channels are created lazily (one mailbox per
        # rank) so higher layers can open private lanes per fusion bucket.
        router = Router(2)
        assert "lib.bucket3" not in router.channels
        box = router.mailbox(1, "lib.bucket3")
        assert box.channel == "lib.bucket3"
        assert "lib.bucket3" in router.channels
        # Both ranks share the dynamically created channel.
        assert router.mailbox(0, "lib.bucket3") is not box
        assert router.mailbox(1, "lib.bucket3") is box
        # Typos still fail fast: only suffixes of declared channels are
        # auto-created, never brand-new base names.
        with pytest.raises(KeyError):
            router.mailbox(0, "bogus")
        with pytest.raises(KeyError):
            router.mailbox(0, "activaton.bucket1")

    def test_dynamic_channels_born_closed_after_router_close(self):
        router = Router(2)
        router.close()
        box = router.mailbox(0, "lib.bucket9")
        with pytest.raises(MailboxClosed):
            box.put(Message(source=1, dest=0, tag=0, payload=1))


class TestCommunicator:
    def test_send_copies_arrays(self):
        world = ThreadWorld(2)
        c0, c1 = world.communicator(0), world.communicator(1)
        data = np.zeros(3)
        c0.send(data, dest=1)
        data[:] = 99  # mutation after send must not be visible
        received = c1.recv(source=0, timeout=1)
        assert np.allclose(received, 0)

    def test_isend_irecv(self):
        world = ThreadWorld(2)
        c0, c1 = world.communicator(0), world.communicator(1)
        req_recv = c1.irecv(source=0, tag=4)
        assert not req_recv.test()
        req_send = c0.isend({"k": 1}, dest=1, tag=4)
        assert req_send.test()
        assert req_recv.wait(timeout=1) == {"k": 1}
        assert req_recv.test()

    def test_probe_poll(self):
        world = ThreadWorld(2)
        c0, c1 = world.communicator(0), world.communicator(1)
        assert c1.poll() is None
        c0.send(5, dest=1, tag=9)
        assert c1.probe(tag=9)
        assert c1.poll(tag=9) == 5

    def test_dup_channel_isolation(self):
        world = ThreadWorld(2)
        c0, c1 = world.communicator(0), world.communicator(1)
        lib1 = c1.dup(Channel.LIB)
        c0.dup(Channel.LIB).send("lib", dest=1, tag=0)
        c0.send("app", dest=1, tag=0)
        assert lib1.recv(source=0, timeout=1) == "lib"
        assert c1.recv(source=0, timeout=1) == "app"

    def test_rank_size(self):
        world = ThreadWorld(3)
        comm = world.communicator(2)
        assert comm.rank == 2 and comm.size == 3

    def test_barrier(self):
        # Transport-agnostic check (no shared-memory side channel, so it
        # also runs under REPRO_COMM_BACKEND=process): after the barrier,
        # a message sent *before* it by the slow rank must be receivable.
        def worker(comm):
            if comm.rank == 0:
                time.sleep(0.05)
                for dest in range(1, comm.size):
                    comm.send("pre-barrier", dest, tag=77)
            comm.barrier()
            if comm.rank != 0:
                assert comm.recv(source=0, tag=77, timeout=5) == "pre-barrier"
            comm.barrier()
            return comm.rank

        results = launch(worker, 4)
        assert sorted(results) == [0, 1, 2, 3]


class TestRunWorld:
    def test_results_indexed_by_rank(self):
        results = launch(lambda comm: comm.rank * 10, 5)
        assert results == [0, 10, 20, 30, 40]

    def test_exception_propagates_as_world_error(self):
        def worker(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            # Other ranks block on a message that never arrives; closing
            # the router must wake them instead of hanging the test.
            try:
                comm.recv(source=0, tag=99, timeout=10)
            except Exception:
                pass
            return comm.rank

        with pytest.raises(WorldError) as excinfo:
            launch(worker, 3, timeout=30)
        assert 1 in excinfo.value.failures
        assert isinstance(excinfo.value.failures[1], ValueError)

    def test_ring_message_passing(self):
        def worker(comm):
            dest = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest, tag=1)
            return comm.recv(source=src, tag=1, timeout=5)

        results = launch(worker, 6)
        assert results == [(r - 1) % 6 for r in range(6)]

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_property_world_sizes(self, size):
        assert launch(lambda comm: comm.size, size) == [size] * size
