"""Tests for the synthetic datasets, bucketing and the sharded loader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    BucketBatchSampler,
    HyperplaneDataset,
    SentenceDataset,
    ShardedLoader,
    UCF101_LENGTH_STATS,
    VideoFeatureDataset,
    bucket_by_length,
    cifar10_like,
    imagenet_like,
    sample_sentence_lengths,
    sample_video_lengths,
)


class TestHyperplane:
    def test_shapes_and_noise(self):
        ds = HyperplaneDataset(num_examples=100, input_dim=16, noise_std=0.1, seed=0)
        assert len(ds) == 100
        batch = ds.get_batch([0, 5, 7])
        assert batch.inputs.shape == (3, 16)
        assert batch.targets.shape == (3, 1)

    def test_labels_follow_hyperplane(self):
        ds = HyperplaneDataset(num_examples=2000, input_dim=8, noise_std=0.0, seed=1)
        predicted = ds.x @ ds.coefficients + ds.intercept
        assert np.allclose(predicted[:, None], ds.y)

    def test_split_is_disjoint_and_complete(self):
        ds = HyperplaneDataset(num_examples=100, input_dim=4, seed=0)
        train, val = ds.split(0.25, seed=1)
        assert len(train) == 75 and len(val) == 25
        assert not set(train.indices.tolist()) & set(val.indices.tolist())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HyperplaneDataset(num_examples=0)
        with pytest.raises(ValueError):
            HyperplaneDataset(noise_std=-1)


class TestImageDatasets:
    def test_cifar_like_properties(self):
        ds = cifar10_like(num_examples=200, image_size=4, seed=0)
        assert len(ds) == 200
        assert ds.num_classes == 10
        batch = ds.get_batch(range(10))
        assert batch.inputs.shape == (10, 3, 4, 4)
        assert batch.targets.max() < 10

    def test_imagenet_like_many_classes(self):
        ds = imagenet_like(num_examples=300, num_classes=50, image_size=4, seed=0)
        assert ds.num_classes == 50
        assert set(np.unique(ds.labels)).issubset(set(range(50)))

    def test_signal_makes_classes_separable(self):
        ds = cifar10_like(num_examples=500, image_size=4, signal=5.0, seed=0)
        # Nearest-template classification should beat chance by a wide margin.
        flat_templates = ds.templates.reshape(ds.num_classes, -1)
        flat_images = ds.images.reshape(len(ds), -1)
        predicted = np.argmin(
            ((flat_images[:, None, :] - flat_templates[None]) ** 2).sum(-1), axis=1
        )
        assert (predicted == ds.labels).mean() > 0.9

    def test_split(self):
        ds = cifar10_like(num_examples=100, image_size=4, seed=0)
        train, val = ds.split(0.2, seed=0)
        assert len(train) == 80 and len(val) == 20
        assert train.get_batch([0]).inputs.shape == (1, 3, 4, 4)


class TestVideoDataset:
    def test_length_distribution_matches_paper(self):
        lengths = sample_video_lengths(9537, seed=0)
        assert lengths.min() >= UCF101_LENGTH_STATS.min_frames
        assert lengths.max() <= UCF101_LENGTH_STATS.max_frames
        assert abs(np.median(lengths) - UCF101_LENGTH_STATS.median_frames) < 20
        assert abs(lengths.std() - UCF101_LENGTH_STATS.std_frames) < 30

    def test_length_scale(self):
        full = sample_video_lengths(500, seed=1)
        scaled = sample_video_lengths(500, seed=1, scale=0.1)
        assert scaled.mean() == pytest.approx(full.mean() * 0.1, rel=0.1)

    def test_batch_padding_and_lengths(self):
        ds = VideoFeatureDataset(num_videos=50, feature_dim=8, num_classes=5,
                                 length_scale=0.05, seed=0)
        batch = ds.get_batch([0, 1, 2, 3])
        x, lengths = batch.inputs["x"], batch.inputs["lengths"]
        assert x.shape[0] == 4 and x.shape[2] == 8
        assert x.shape[1] == lengths.max()
        # Padding beyond each video's length must be zero.
        for row, length in enumerate(lengths):
            assert np.allclose(x[row, length:, :], 0.0)
        assert batch.size_hint == pytest.approx(float(lengths.sum()))

    def test_batches_are_reproducible(self):
        ds = VideoFeatureDataset(num_videos=20, feature_dim=4, length_scale=0.05, seed=3)
        a = ds.get_batch([1, 2]).inputs["x"]
        b = ds.get_batch([1, 2]).inputs["x"]
        assert np.allclose(a, b)

    def test_example_sizes(self):
        ds = VideoFeatureDataset(num_videos=10, feature_dim=4, length_scale=0.05, seed=0)
        assert np.array_equal(ds.example_sizes(), ds.frame_counts())


class TestSentenceDataset:
    def test_lengths_and_tokens(self):
        ds = SentenceDataset(num_sentences=100, vocab_size=64, num_classes=4, seed=0)
        batch = ds.get_batch([0, 1, 2])
        tokens, lengths = batch.inputs["tokens"], batch.inputs["lengths"]
        assert tokens.shape[0] == 3
        assert tokens.max() < 64
        assert tokens.shape[1] == lengths.max()

    def test_sentence_length_distribution(self):
        lengths = sample_sentence_lengths(5000, seed=0)
        assert lengths.min() >= 4 and lengths.max() <= 128
        assert 15 < np.median(lengths) < 30

    def test_class_token_bias(self):
        ds = SentenceDataset(num_sentences=400, vocab_size=100, num_classes=2, seed=0)
        # Sentences of class 0 should use low token ids more often than class 1.
        class0 = [ds._sentence_tokens(i) for i in range(400) if ds.labels[i] == 0][:50]
        class1 = [ds._sentence_tokens(i) for i in range(400) if ds.labels[i] == 1][:50]
        mean0 = np.mean([t.mean() for t in class0])
        mean1 = np.mean([t.mean() for t in class1])
        assert mean0 < mean1

    def test_vocab_validation(self):
        with pytest.raises(ValueError):
            SentenceDataset(vocab_size=3, num_classes=10)


class TestBucketing:
    def test_buckets_cover_all_and_are_ordered(self):
        lengths = np.array([5, 100, 7, 90, 50, 45, 8, 60])
        buckets = bucket_by_length(lengths, num_buckets=3)
        all_indices = np.concatenate(buckets)
        assert sorted(all_indices.tolist()) == list(range(8))
        maxima = [lengths[b].max() for b in buckets]
        minima = [lengths[b].min() for b in buckets]
        assert all(maxima[i] <= minima[i + 1] for i in range(len(buckets) - 1))

    def test_sampler_batches_within_buckets(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 1000, size=200)
        sampler = BucketBatchSampler(lengths, batch_size=8, num_buckets=8, seed=0)
        global_range = lengths.max() - lengths.min()
        for batch in sampler.epoch_batches(0):
            batch_range = lengths[batch].max() - lengths[batch].min()
            # Each batch spans a small slice of the global length range.
            assert batch_range <= global_range / 3

    def test_drop_last(self):
        lengths = np.arange(1, 21)
        sampler = BucketBatchSampler(lengths, batch_size=8, num_buckets=1, drop_last=True)
        batches = list(sampler.epoch_batches(0))
        assert all(len(b) == 8 for b in batches)

    def test_batch_lengths_proxy(self):
        lengths = np.arange(1, 33)
        sampler = BucketBatchSampler(lengths, batch_size=4, num_buckets=2, shuffle=False)
        costs = sampler.batch_lengths(0)
        assert len(costs) == len(list(sampler.epoch_batches(0)))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            bucket_by_length([], num_buckets=2)
        with pytest.raises(ValueError):
            BucketBatchSampler([1, 2, 3], batch_size=0)

    @given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_property_bucketing_partitions_indices(self, lengths):
        buckets = bucket_by_length(lengths, num_buckets=4)
        combined = sorted(int(i) for b in buckets for i in b)
        assert combined == list(range(len(lengths)))


class TestShardedLoader:
    def test_shards_are_disjoint_and_cover_global_batch(self):
        ds = cifar10_like(num_examples=64, image_size=4, seed=0)
        loaders = [
            ShardedLoader(ds, global_batch_size=16, rank=r, world_size=4, seed=7)
            for r in range(4)
        ]
        step_indices = [next(iter(l)).indices for l in loaders]
        combined = np.concatenate(step_indices)
        assert len(combined) == 16
        assert len(set(combined.tolist())) == 16

    def test_same_steps_per_epoch_across_ranks(self):
        ds = cifar10_like(num_examples=100, image_size=4, seed=0)
        loaders = [
            ShardedLoader(ds, global_batch_size=24, rank=r, world_size=3, seed=0)
            for r in range(3)
        ]
        counts = [len(list(l.epoch_batches(0))) for l in loaders]
        assert len(set(counts)) == 1
        assert counts[0] == loaders[0].steps_per_epoch()

    def test_different_epochs_shuffle_differently(self):
        ds = cifar10_like(num_examples=64, image_size=4, seed=0)
        loader = ShardedLoader(ds, global_batch_size=8, rank=0, world_size=1, seed=0)
        first = np.concatenate([b.indices for b in loader.epoch_batches(0)])
        second = np.concatenate([b.indices for b in loader.epoch_batches(1)])
        assert not np.array_equal(first, second)
        assert sorted(first.tolist()) == sorted(second.tolist())

    def test_validation_of_batch_divisibility(self):
        ds = cifar10_like(num_examples=64, image_size=4, seed=0)
        with pytest.raises(ValueError):
            ShardedLoader(ds, global_batch_size=10, rank=0, world_size=3)
        with pytest.raises(ValueError):
            ShardedLoader(ds, global_batch_size=2, rank=0, world_size=4)

    def test_bucketed_loader_requires_sizes_and_balances_steps(self):
        images = cifar10_like(num_examples=64, image_size=4, seed=0)
        with pytest.raises(ValueError):
            ShardedLoader(images, 16, bucket_by_length=True)
        videos = VideoFeatureDataset(num_videos=120, feature_dim=4, length_scale=0.03, seed=0)
        loaders = [
            ShardedLoader(videos, 16, rank=r, world_size=4, seed=0, bucket_by_length=True)
            for r in range(4)
        ]
        counts = [len(list(l.epoch_batches(0))) for l in loaders]
        assert len(set(counts)) == 1 and counts[0] == loaders[0].steps_per_epoch()

    def test_bucketed_loader_creates_interrank_imbalance(self):
        videos = VideoFeatureDataset(num_videos=240, feature_dim=4, length_scale=0.05, seed=1)
        loaders = [
            ShardedLoader(videos, 32, rank=r, world_size=4, seed=0, bucket_by_length=True)
            for r in range(4)
        ]
        per_rank_hints = np.array(
            [[b.size_hint for b in l.epoch_batches(0)] for l in loaders]
        )
        # At a given step the ranks should see meaningfully different
        # amounts of work (that is the whole point of Section 2.1).
        ratio = per_rank_hints.max(axis=0) / np.maximum(per_rank_hints.min(axis=0), 1)
        assert ratio.max() > 1.5
