"""Schedule verifier: healthy sweeps pass, seeded mutants are rejected."""

import numpy as np
import pytest

from repro.analysis import schedule_verifier as sv
from repro.analysis.recording import record_run
from repro.collectives import sync
from repro.collectives.topology import HostTopology
from repro.comm import tags


def _violations(report):
    return [str(v) for r in report.results for v in r.violations]


# ---------------------------------------------------------------------------
# healthy schedules verify clean
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("size", [2, 3, 5, 8])
def test_sweep_passes_at_small_and_non_pot_sizes(size):
    report = sv.VerificationReport(
        [sv.run_case(c) for c in sv.build_cases(size)]
    )
    assert report.ok, _violations(report)


def test_sweep_passes_at_non_uniform_topologies():
    for spec in ([3, 1], [4, 2, 2]):
        size = sum(spec)
        total = sv.expected_sum(size)

        def fn(comm, _p=size):
            return sync.allreduce(
                comm, sv.contribution(comm.rank, _p),
                algorithm="hierarchical", n_chunks=2,
            )
        case = sv.VerifyCase(
            name=f"hier[{'+'.join(map(str, spec))}]",
            world_size=size,
            fn=fn,
            expected=lambda rank, _t=total: _t,
            host_topology=HostTopology.from_hosts(spec),
        )
        result = sv.run_case(case)
        assert result.ok, [str(v) for v in result.violations]


@pytest.mark.parametrize("size", [2, 3, 4, 5, 6, 7, 8, 9, 16, 64])
def test_dissemination_covers_every_size(size):
    result = sv.check_dissemination(size)
    assert result.ok, [str(v) for v in result.violations]


@pytest.mark.parametrize("size", [2, 4, 8, 16])
def test_solo_schedules_match_statically(size):
    result = sv.check_solo_schedule(size)
    assert result.ok, [str(v) for v in result.violations]


def test_tag_layout_static_case():
    result = sv.check_tag_layout()
    assert result.ok, [str(v) for v in result.violations]


# ---------------------------------------------------------------------------
# broken schedules are rejected by the matching checker
# ---------------------------------------------------------------------------
def test_dropped_recv_is_an_orphan_send():
    def fn(comm):
        tag = tags.sync_tag(0, 0, 0, 0)
        comm.send(np.ones(2), (comm.rank + 1) % comm.size, tag=tag)
        if comm.rank != 0:
            comm.recv(source=(comm.rank - 1) % comm.size, tag=tag)

    record = record_run(fn, 4, recv_timeout=1.0)
    violations = sv.check_match_completeness(record, "dropped-recv")
    assert any("orphan send" in str(v) for v in violations), [
        str(v) for v in violations
    ]


def test_reused_tag_is_an_ambiguous_match():
    def fn(comm):
        tag = tags.sync_tag(0, 0, 0, 0)
        if comm.rank == 0:
            comm.send(np.zeros(1), 1, tag=tag)
            comm.send(np.ones(1), 1, tag=tag)
        elif comm.rank == 1:
            comm.recv(source=0, tag=tag)
            comm.recv(source=0, tag=tag)

    record = record_run(fn, 2, recv_timeout=1.0)
    violations = sv.check_match_completeness(record, "reused-tag")
    assert any("ambiguous match" in str(v) for v in violations), [
        str(v) for v in violations
    ]


def test_swapped_ring_neighbor_is_a_deadlock_cycle():
    def fn(comm):
        tag = tags.sync_tag(0, 4, 0, 0)
        succ = (comm.rank + 1) % comm.size
        comm.send(np.ones(2), succ, tag=tag)
        comm.recv(source=succ, tag=tag)  # wrong neighbour: cyclic wait

    record = record_run(fn, 4, recv_timeout=1.0)
    violations = sv.check_deadlock_freedom(record, "swapped-neighbor")
    assert any("cyclic wait" in str(v) for v in violations), [
        str(v) for v in violations
    ]


def test_double_counted_term_breaks_reduction_coverage():
    total = sv.expected_sum(4)

    def fn(comm):
        result = sync.allreduce(
            comm, sv.contribution(comm.rank, 4), algorithm="ring"
        )
        if comm.rank == 0:
            result = result + sv.contribution(0, 4)
        return result

    record = record_run(fn, 4, recv_timeout=1.0)
    violations = sv.check_reduction_coverage(
        record, "double-count", lambda rank: total
    )
    assert any("counted twice" in str(v) or "missing" in str(v)
               for v in violations), [str(v) for v in violations]


def test_rogue_user_tag_breaks_tag_soundness():
    def fn(comm):
        succ = (comm.rank + 1) % comm.size
        pred = (comm.rank - 1) % comm.size
        comm.send(np.ones(1), succ, tag=7)
        comm.recv(source=pred, tag=7)

    record = record_run(fn, 3, recv_timeout=5.0)
    violations = sv.check_tag_soundness(
        record, "user-tag", frozenset({tags.SYNC.name})
    )
    assert any("outside every declared region" in str(v) for v in violations)


def test_wrapping_dissemination_rule_is_rejected():
    """The pre-fix ``(rank + 2^j) mod P`` forward rule strands ranks.

    Regression companion to the ``_forward_activation`` fix: re-run the
    delivery-order exploration against the old wrapping rule and assert
    the verifier still rejects it at a non-power-of-two size.
    """
    size, depth = 5, 3
    initial = (-1,) + (None,) * (size - 1)
    seen = {initial}
    stack = [initial]
    stranded = False
    while stack and not stranded:
        state = stack.pop()
        moves = []
        for rank, k in enumerate(state):
            if k is None:
                continue
            for j in range(k + 1, depth):
                dest = (rank + (1 << j)) % size
                if dest != rank and state[dest] is None:
                    moves.append((dest, j))
        if not moves:
            stranded = any(k is None for k in state)
            continue
        for dest, j in moves:
            nxt = list(state)
            nxt[dest] = j
            t = tuple(nxt)
            if t not in seen:
                seen.add(t)
                stack.append(t)
    assert stranded, "old wrapping rule unexpectedly covers P=5"


def test_self_test_rejects_every_mutant():
    for result in sv.self_test():
        assert result.ok, [str(v) for v in result.violations]
