"""Tests for the command-line interface and the scaling projections."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.experiments import scaling


class TestScalingExperiment:
    def test_injected_imbalance_projections(self):
        result = scaling.run(steps=120, seed=0)
        by_name = {r.name: r for r in result.rows}
        solo = by_name["hyperplane strong scaling, 8 ranks, eager (solo, 400 ms)"]
        sync = by_name["hyperplane strong scaling, 8 ranks, synch-SGD (400 ms)"]
        assert solo.speedup > sync.speedup > 1.0
        assert solo.speedup <= 8.0
        resnet = by_name["resnet50 weak scaling, 64 ranks, eager (solo, 460 ms)"]
        assert 30 < resnet.speedup <= 64
        assert "scaling" in scaling.report(result).lower()

    def test_inherent_imbalance_ordering(self):
        result = scaling.run_with_inherent_imbalance(steps=60, seed=0)
        speeds = {r.mode: r.speedup for r in result.rows}
        assert speeds["solo"] >= speeds["majority"] >= speeds["sync"]
        assert all(0 < s <= 8.0 + 1e-9 for s in speeds.values())


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_fig9_command(self, capsys):
        assert main(["fig9", "--world-size", "16", "--iterations", "8"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out and "Solo" in out

    def test_fig2_command(self, capsys):
        assert main(["fig2", "--num-videos", "2000"]) == 0
        assert "Fig. 2a" in capsys.readouterr().out

    def test_table1_command(self, capsys):
        assert main(["table1", "--scale", "paper"]) == 0
        assert "8,193" in capsys.readouterr().out

    def test_scaling_command(self, capsys):
        assert main(["scaling", "--steps", "60"]) == 0
        assert "weak scaling" in capsys.readouterr().out

    def test_fig10_tiny_command(self, capsys):
        assert main(["fig10", "--scale", "tiny"]) == 0
        assert "Fig. 10" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])
