"""Tests for the synchronous collectives (allreduce, broadcast, reduce)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import launch
from repro.collectives import (
    ALLREDUCE_ALGORITHMS,
    allgather,
    allreduce,
    broadcast,
    reduce_to_root,
)


def _allreduce_worker(comm, algorithm, op, elements):
    data = np.arange(elements, dtype=np.float64) + comm.rank
    return allreduce(comm, data, op=op, algorithm=algorithm)


class TestAllreduceAlgorithms:
    @pytest.mark.parametrize("algorithm", sorted(ALLREDUCE_ALGORITHMS))
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_sum_matches_numpy(self, algorithm, size):
        elements = 17
        results = launch(_allreduce_worker, size, algorithm, "sum", elements)
        expected = sum(np.arange(elements) + r for r in range(size))
        for r in results:
            assert np.allclose(r, expected)

    @pytest.mark.parametrize("algorithm", sorted(ALLREDUCE_ALGORITHMS))
    def test_max_reduction(self, algorithm):
        results = launch(lambda comm: allreduce(comm, np.array([comm.rank, -comm.rank]),
                                      op="max", algorithm=algorithm), 4)
        for r in results:
            assert np.allclose(r, [3, 0])

    def test_average(self):
        results = launch(lambda comm: allreduce(comm, np.full(3, comm.rank + 1.0), average=True), 4)
        for r in results:
            assert np.allclose(r, 2.5)

    def test_unknown_algorithm(self):
        from repro.comm import ThreadWorld

        with ThreadWorld(1) as world:
            with pytest.raises(ValueError):
                allreduce(world.communicator(0), np.ones(2), algorithm="bogus")

    def test_back_to_back_collectives_do_not_interfere(self):
        def worker(comm):
            first = allreduce(comm, np.array([float(comm.rank)]))
            second = allreduce(comm, np.array([float(comm.rank * 10)]))
            return float(first[0]), float(second[0])

        for first, second in launch(worker, 4):
            assert first == 6.0
            assert second == 60.0

    @given(
        size=st.integers(min_value=1, max_value=6),
        elements=st.integers(min_value=1, max_value=40),
        algorithm=st.sampled_from(sorted(ALLREDUCE_ALGORITHMS)),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_sum_invariant(self, size, elements, algorithm):
        results = launch(_allreduce_worker, size, algorithm, "sum", elements)
        expected = sum(np.arange(elements) + r for r in range(size))
        for r in results:
            assert np.allclose(r, expected)


class TestBroadcastReduceAllgather:
    @pytest.mark.parametrize("size,root", [(1, 0), (2, 1), (5, 3), (8, 7)])
    def test_broadcast(self, size, root):
        def worker(comm):
            value = {"payload": 42} if comm.rank == root else None
            return broadcast(comm, value, root=root)

        results = launch(worker, size)
        assert all(r == {"payload": 42} for r in results)

    @pytest.mark.parametrize("size,root", [(1, 0), (3, 0), (4, 2), (7, 6)])
    def test_reduce_to_root(self, size, root):
        def worker(comm):
            return reduce_to_root(comm, np.full(4, comm.rank + 1.0), root=root)

        results = launch(worker, size)
        expected = sum(range(1, size + 1))
        for rank, r in enumerate(results):
            if rank == root:
                assert np.allclose(r, expected)
            else:
                assert r is None

    @pytest.mark.parametrize("size", [1, 2, 5, 8])
    def test_allgather(self, size):
        results = launch(lambda comm: allgather(comm, comm.rank * 2), size)
        for r in results:
            assert r == [2 * i for i in range(size)]

    def test_preserves_shape(self):
        results = launch(lambda comm: allreduce(comm, np.ones((3, 5)) * comm.rank, algorithm="ring"), 4)
        for r in results:
            assert r.shape == (3, 5)
            assert np.allclose(r, 6)


class TestHierarchicalAllreduce:
    """Two-tier allreduce under explicit multi-host topologies.

    The conformance suite covers the single-host fallback (and the
    ``ALLREDUCE_ALGORITHMS`` parametrization above runs it at every
    size); these tests pin the genuinely hierarchical schedules at the
    non-uniform layouts 3+1 and 4+2+2.
    """

    @pytest.mark.parametrize("hosts", [(3, 1), (2, 2), (4, 2, 2)])
    @pytest.mark.parametrize("n_chunks", [1, 3])
    def test_matches_numpy_sum(self, hosts, n_chunks):
        from repro.collectives.topology import HostTopology
        from repro.collectives.sync import allreduce_hierarchical

        size = sum(hosts)
        topology = HostTopology.from_hosts(hosts)
        elements = 23

        def worker(comm):
            data = np.arange(elements, dtype=np.float64) + comm.rank
            return allreduce_hierarchical(
                comm, data, n_chunks=n_chunks, topology=topology
            )

        expected = sum(np.arange(elements) + r for r in range(size))
        for r in launch(worker, size):
            assert np.allclose(r, expected)

    def test_registry_routes_and_averages(self):
        def worker(comm):
            return allreduce(
                comm, np.full(5, comm.rank + 1.0),
                algorithm="hierarchical", average=True,
            )

        for r in launch(worker, 4):
            assert np.allclose(r, 2.5)

    def test_back_to_back_hierarchical_and_ring(self):
        from repro.collectives.topology import HostTopology
        from repro.collectives.sync import allreduce_hierarchical

        topology = HostTopology.from_hosts((3, 1))

        def worker(comm):
            first = allreduce_hierarchical(
                comm, np.array([float(comm.rank)]), topology=topology
            )
            second = allreduce(comm, np.array([float(comm.rank * 10)]),
                               algorithm="ring")
            third = allreduce_hierarchical(
                comm, np.array([1.0]), topology=topology
            )
            return float(first[0]), float(second[0]), float(third[0])

        for first, second, third in launch(worker, 4):
            assert (first, second, third) == (6.0, 60.0, 4.0)

    @pytest.mark.parametrize("hosts", [(3, 1), (4, 2, 2)])
    def test_compressed_replicas_bit_identical(self, hosts):
        from repro.collectives.topology import HostTopology
        from repro.collectives.sync import allreduce_compressed_hierarchical
        from repro.compression import get_codec

        size = sum(hosts)
        topology = HostTopology.from_hosts(hosts)
        codec = get_codec("fp16")

        def worker(comm):
            data = np.full(64, comm.rank + 1.0)
            return allreduce_compressed_hierarchical(
                comm, data, codec, average=True, topology=topology
            )

        results = launch(worker, size)
        expected = sum(range(1, size + 1)) / size
        assert len({r.tobytes() for r in results}) == 1  # exact replicas
        for r in results:
            assert np.allclose(r, expected, atol=1e-2)

    def test_topology_size_mismatch_rejected(self):
        from repro.collectives.topology import HostTopology
        from repro.collectives.sync import allreduce_hierarchical

        topology = HostTopology.from_hosts((3, 1))

        def worker(comm):
            with pytest.raises(ValueError):
                allreduce_hierarchical(comm, np.ones(4), topology=topology)
            return True

        assert all(launch(worker, 2))
