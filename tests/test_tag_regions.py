"""The global tag-region map: disjointness, bounds, round-trips."""

import pytest

from repro.comm import tags


def test_regions_are_pairwise_disjoint():
    tags.check_region_disjointness()  # must not raise
    for a in tags.TAG_REGIONS:
        for b in tags.TAG_REGIONS:
            if a is b:
                continue
            assert a.hi <= b.lo or b.hi <= a.lo, (a.name, b.name)


def test_region_of_maps_each_base_and_user_space():
    for reg in tags.TAG_REGIONS:
        assert tags.region_of(reg.lo) is reg
        assert tags.region_of(reg.hi - 1) is reg
    assert tags.region_of(0) is None
    assert tags.region_of(9_999_999) is None


def test_region_lookup_by_name():
    assert tags.region("sync-collectives") is tags.SYNC
    with pytest.raises(KeyError, match="unknown tag region"):
        tags.region("nope")


def test_sync_tag_round_trip():
    for fields in [
        (0, 0, 0, 0),
        (3, 11, 99, 7),
        (tags.SYNC_MAX_EPOCHS - 1, tags.SYNC_MAX_PHASES - 1,
         tags.SYNC_MAX_ROUNDS - 1, tags.SYNC_MAX_CHUNKS - 1),
    ]:
        tag = tags.sync_tag(*fields)
        assert tag in tags.SYNC
        assert tuple(tags.decode_sync_tag(tag)) == fields


def test_sync_tag_validates_every_field():
    with pytest.raises(ValueError, match="epoch"):
        tags.sync_tag(tags.SYNC_MAX_EPOCHS, 0, 0, 0)
    with pytest.raises(ValueError, match="epoch"):
        tags.sync_tag(-1, 0, 0, 0)
    with pytest.raises(ValueError, match="phase"):
        tags.sync_tag(0, tags.SYNC_MAX_PHASES, 0, 0)
    with pytest.raises(ValueError, match="round"):
        tags.sync_tag(0, 0, tags.SYNC_MAX_ROUNDS, 0)
    with pytest.raises(ValueError, match="chunk"):
        tags.sync_tag(0, 0, 0, tags.SYNC_MAX_CHUNKS)


def test_max_sync_tag_is_int64_safe():
    top = tags.sync_tag(
        tags.SYNC_MAX_EPOCHS - 1, tags.SYNC_MAX_PHASES - 1,
        tags.SYNC_MAX_ROUNDS - 1, tags.SYNC_MAX_CHUNKS - 1,
    )
    assert top < 2 ** 63


def test_barrier_tag_bounds():
    assert tags.barrier_tag(0, 0) == tags.BARRIER_TAG_BASE
    assert tags.barrier_tag(1, 2) == tags.BARRIER_TAG_BASE + 64 + 2
    max_epochs = tags.BARRIER.span // tags.BARRIER_TAGS_PER_EPOCH
    assert tags.barrier_tag(max_epochs - 1, 63) in tags.BARRIER
    with pytest.raises(ValueError, match="barrier epoch"):
        tags.barrier_tag(max_epochs, 0)
    with pytest.raises(ValueError, match="barrier round"):
        tags.barrier_tag(0, tags.BARRIER_TAGS_PER_EPOCH)


def test_partial_tags_stay_in_their_regions():
    assert tags.partial_activation_tag(0) in tags.PARTIAL_ACTIVATION
    assert tags.partial_arrival_tag(5) in tags.PARTIAL_ARRIVAL
    with pytest.raises(ValueError):
        tags.partial_activation_tag(-1)
    with pytest.raises(ValueError):
        tags.partial_activation_tag(tags.PARTIAL_ACTIVATION.span)


def test_solo_tags_stay_in_their_regions():
    assert tags.solo_activation_tag(0) == tags.SOLO_ACTIVATION_TAG_BASE
    assert tags.solo_reduction_tag_base(1) == (
        tags.SOLO_REDUCTION_TAG_BASE + tags.SOLO_TAGS_PER_ROUND
    )
    with pytest.raises(ValueError):
        tags.solo_activation_tag(tags.SOLO_ACTIVATION.span)
    with pytest.raises(ValueError):
        tags.solo_reduction_tag_base(-1)


def test_owning_modules_import_from_the_table():
    from repro.collectives import partial, schedules, sync
    from repro.comm import communicator

    assert sync._SYNC_TAG_BASE == tags.SYNC_TAG_BASE
    assert sync._EPOCH_STRIDE == tags.SYNC_EPOCH_STRIDE
    assert partial._ACTIVATION_TAG_BASE == tags.PARTIAL_ACTIVATION_TAG_BASE
    assert partial._ARRIVAL_TAG_BASE == tags.PARTIAL_ARRIVAL_TAG_BASE
    assert communicator._BARRIER_TAG_BASE == tags.BARRIER_TAG_BASE
    assert (
        schedules.build_solo_allreduce_schedule.__defaults__ is not None
    )
