"""Tests for the load-imbalance models and the convergence theory helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.ucf101 import VideoFeatureDataset
from repro.imbalance import (
    CloudNoiseDelay,
    ConstantDelay,
    FixedCostModel,
    LinearSkewDelay,
    NoDelay,
    QuadraticSequenceCostModel,
    RandomSubsetDelay,
    RotatingSkewDelay,
    SequenceCostModel,
    StepTrace,
    lstm_ucf101_cost_model,
    resnet50_cloud_cost_model,
    transformer_wmt_cost_model,
)
from repro.theory import (
    ConvergenceAssumptions,
    QuorumTracker,
    StalenessTracker,
    has_converged,
    iteration_lower_bound,
    iterations_to_convergence,
    max_learning_rate,
)


class TestDelayInjectors:
    def test_no_delay(self):
        assert np.all(NoDelay().delays(0, 8) == 0)

    def test_constant_delay(self):
        d = ConstantDelay(100.0).delays(3, 4)
        assert np.allclose(d, 0.1)

    def test_random_subset_selects_exactly_k(self):
        injector = RandomSubsetDelay(num_delayed=3, delay_ms=200.0, seed=1)
        for step in range(10):
            d = injector.delays(step, 16)
            assert np.sum(d > 0) == 3
            assert np.allclose(d[d > 0], 0.2)

    def test_random_subset_is_deterministic_and_varies_by_step(self):
        injector = RandomSubsetDelay(1, 100.0, seed=2)
        a = injector.delays(5, 8)
        b = injector.delays(5, 8)
        assert np.array_equal(a, b)
        later = [tuple(injector.delays(s, 8)) for s in range(20)]
        assert len(set(later)) > 1

    def test_random_subset_too_many(self):
        with pytest.raises(ValueError):
            RandomSubsetDelay(5, 10.0).delays(0, 4)

    def test_linear_skew(self):
        d = LinearSkewDelay(1.0).delays(0, 4)
        assert np.allclose(d, [0.001, 0.002, 0.003, 0.004])

    def test_rotating_skew_rotates(self):
        injector = RotatingSkewDelay(50.0, 400.0)
        d0 = injector.delays(0, 8)
        d1 = injector.delays(1, 8)
        assert sorted(d0.tolist()) == sorted(d1.tolist())
        assert not np.allclose(d0, d1)
        assert d0.min() == pytest.approx(0.05) and d0.max() == pytest.approx(0.4)

    def test_cloud_noise_long_tail(self):
        injector = CloudNoiseDelay(median_ms=30.0, sigma=1.0, seed=0)
        samples = np.concatenate([injector.delays(s, 64) for s in range(50)])
        assert np.median(samples) == pytest.approx(0.03, rel=0.3)
        assert samples.max() > 4 * np.median(samples)

    def test_delay_for_rank_matches_delays(self):
        injector = RandomSubsetDelay(2, 100.0, seed=0)
        all_delays = injector.delays(3, 8)
        for rank in range(8):
            assert injector.delay_for_rank(3, rank, 8) == all_delays[rank]

    def test_describe_strings(self):
        assert "RandomSubsetDelay" in RandomSubsetDelay(1, 10).describe()
        assert "RotatingSkewDelay" in RotatingSkewDelay().describe()


class TestCostModels:
    def test_fixed_cost(self):
        model = FixedCostModel(0.25)
        assert model.cost_from_size(1000) == 0.25

    def test_sequence_cost_monotone_and_capped(self):
        model = SequenceCostModel(base_seconds=0.1, seconds_per_unit=0.001, cap_seconds=0.5)
        assert model.cost_from_size(100) < model.cost_from_size(200)
        assert model.cost_from_size(10_000) == 0.5

    def test_sequence_cost_needs_hint(self):
        from repro.data.loader import Batch

        model = SequenceCostModel(0.1, 0.001)
        with pytest.raises(ValueError):
            model.batch_cost(Batch(inputs=np.zeros(3), targets=np.zeros(3), indices=np.arange(3)))

    def test_lstm_cost_model_matches_fig2_range(self):
        model = lstm_ucf101_cost_model(batch_size=16)
        short = model.cost_from_size(16 * 29)
        long = model.cost_from_size(16 * 1776)
        assert short == pytest.approx(0.201, rel=0.05)
        assert long == pytest.approx(3.41, rel=0.05)

    def test_transformer_cost_model_quadratic_tail(self):
        model = transformer_wmt_cost_model(batch_size=64)
        short = model.cost_from_size(64 * 4)
        mean = model.cost_from_size(64 * 22)
        long = model.cost_from_size(64 * 128)
        assert short == pytest.approx(0.179, rel=0.1)
        assert mean == pytest.approx(0.475, rel=0.1)
        assert long > 5 * mean  # quadratic attention cost dominates the tail

    def test_quadratic_model_uses_lengths_when_available(self):
        videos = VideoFeatureDataset(num_videos=20, feature_dim=4, length_scale=0.05, seed=0)
        batch = videos.get_batch(range(4))
        model = QuadraticSequenceCostModel(
            base_seconds=0.1, seconds_per_unit=1e-3, seconds_per_unit_sq=1e-5, batch_size=4
        )
        assert model.batch_cost(batch) > 0.1

    def test_resnet_cloud_cost(self):
        assert resnet50_cloud_cost_model().seconds_per_batch == pytest.approx(0.399)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FixedCostModel(-1.0)
        with pytest.raises(ValueError):
            SequenceCostModel(-0.1, 0.0)
        with pytest.raises(ValueError):
            QuadraticSequenceCostModel(0.1, 0.0, 0.0, batch_size=0)


class TestStepTrace:
    def test_record_and_summarize(self):
        trace = StepTrace(world_size=2)
        trace.record_step([0.1, 0.3])
        trace.record_step([0.2, 0.2])
        matrix = trace.as_matrix()
        assert matrix.shape == (2, 2)
        summary = trace.summarize(histogram_bin_ms=100.0)
        assert summary.summary.count == 4
        assert trace.imbalance_ratio() > 1.0

    def test_record_per_rank(self):
        trace = StepTrace(world_size=2)
        trace.record(0, 0, 0.1)
        trace.record(0, 1, 0.5)
        assert trace.as_matrix().shape == (1, 2)

    def test_invalid_inputs(self):
        trace = StepTrace(world_size=2)
        with pytest.raises(ValueError):
            trace.record(0, 5, 0.1)
        with pytest.raises(ValueError):
            trace.record(0, 0, -0.1)
        with pytest.raises(ValueError):
            trace.record_step([0.1, 0.2, 0.3])


class TestConvergenceTheory:
    def _assumptions(self, quorum=4, tau=3):
        return ConvergenceAssumptions(
            smoothness=2.0,
            second_moment=5.0,
            loss_gap=10.0,
            num_processes=8,
            quorum=quorum,
            staleness_bound=tau,
        )

    def test_learning_rate_bound_positive(self):
        lr = max_learning_rate(self._assumptions(), epsilon=0.1)
        assert lr > 0

    def test_full_quorum_recovers_classic_bound(self):
        assumptions = self._assumptions(quorum=8)
        lr = max_learning_rate(assumptions, epsilon=0.1)
        assert lr == pytest.approx(0.1 / (12 * 25 * 2))

    def test_bound_shrinks_with_more_missing_and_staleness(self):
        eps = 0.1
        lr_few_missing = max_learning_rate(self._assumptions(quorum=7), eps)
        lr_many_missing = max_learning_rate(self._assumptions(quorum=1), eps)
        assert lr_many_missing <= lr_few_missing
        lr_small_tau = max_learning_rate(self._assumptions(tau=1), eps)
        lr_large_tau = max_learning_rate(self._assumptions(tau=50), eps)
        assert lr_large_tau <= lr_small_tau

    def test_iterations_scale_inverse_in_lr(self):
        assumptions = self._assumptions()
        eps = 0.1
        lr = max_learning_rate(assumptions, eps)
        t_full = iterations_to_convergence(assumptions, eps, learning_rate=lr)
        t_half = iterations_to_convergence(assumptions, eps, learning_rate=lr / 2)
        assert t_half >= 2 * t_full - 1

    def test_learning_rate_above_bound_rejected(self):
        assumptions = self._assumptions()
        lr = max_learning_rate(assumptions, 0.1)
        with pytest.raises(ValueError):
            iterations_to_convergence(assumptions, 0.1, learning_rate=lr * 10)

    def test_lower_bound_zero_for_synchronous(self):
        assert iteration_lower_bound(self._assumptions(quorum=8), 0.1) == 0.0
        assert iteration_lower_bound(self._assumptions(quorum=1), 0.1) > 0.0

    def test_has_converged(self):
        assert has_converged([1.0, 0.5, 0.05], epsilon=0.01)
        assert not has_converged([1.0, 0.5], epsilon=0.01)
        with pytest.raises(ValueError):
            has_converged([1.0], epsilon=0)

    def test_invalid_assumptions(self):
        with pytest.raises(ValueError):
            ConvergenceAssumptions(0, 1, 1, 4, 2, 1).validate()
        with pytest.raises(ValueError):
            ConvergenceAssumptions(1, 1, 1, 4, 9, 1).validate()

    @given(
        quorum=st.integers(min_value=1, max_value=8),
        tau=st.integers(min_value=1, max_value=20),
        eps=st.floats(min_value=1e-3, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bound_never_exceeds_classic(self, quorum, tau, eps):
        assumptions = ConvergenceAssumptions(2.0, 5.0, 10.0, 8, quorum, tau)
        lr = max_learning_rate(assumptions, eps)
        classic = eps / (12 * 25 * 2.0)
        assert lr <= classic + 1e-15


class TestTrackers:
    def test_staleness_tracker(self):
        tracker = StalenessTracker()
        for included in [True, False, False, True, False, True]:
            tracker.record(included)
        assert tracker.rounds == 6
        assert tracker.max_staleness == 2
        assert tracker.inclusion_rate == pytest.approx(3 / 6)

    def test_staleness_pending_streak_counts(self):
        tracker = StalenessTracker()
        tracker.record(False)
        tracker.record(False)
        assert tracker.max_staleness == 2

    def test_quorum_tracker(self):
        tracker = QuorumTracker(world_size=8)
        for nap in [8, 5, 4, 3]:
            tracker.record(nap)
        assert tracker.min_quorum == 3
        assert tracker.mean_quorum == pytest.approx(5.0)
        assert tracker.majority_fraction() == pytest.approx(3 / 4)

    def test_quorum_tracker_validation(self):
        tracker = QuorumTracker(world_size=4)
        with pytest.raises(ValueError):
            tracker.record(9)
        with pytest.raises(ValueError):
            QuorumTracker(0)
