"""End-to-end integration tests crossing all subsystem boundaries."""

import numpy as np
import pytest

from repro.data import VideoFeatureDataset, cifar10_like
from repro.imbalance import FixedCostModel, RandomSubsetDelay, lstm_ucf101_cost_model
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.models import MLPClassifier, SequenceLSTMClassifier
from repro.theory import ConvergenceAssumptions, max_learning_rate
from repro.training import TrainingConfig, train_distributed


class TestEndToEnd:
    def test_sync_solo_majority_agree_on_easy_task(self):
        """All three variants must learn the easy task to high accuracy."""
        ds = cifar10_like(num_examples=384, image_size=4, signal=4.0, seed=0)
        train, val = ds.split(0.25, seed=0)
        finals = {}
        for mode in ("sync", "solo", "majority"):
            config = TrainingConfig(
                world_size=4,
                epochs=3,
                global_batch_size=64,
                mode=mode,
                learning_rate=0.1,
                optimizer="momentum",
                delay_injector=RandomSubsetDelay(1, 200.0, seed=1),
                cost_model=FixedCostModel(0.1),
                time_scale=0.001,
                model_sync_period_epochs=2,
                seed=0,
            )
            result = train_distributed(
                lambda: MLPClassifier(3 * 4 * 4, (32,), 10, seed=5),
                train,
                SoftmaxCrossEntropyLoss(),
                config,
                eval_dataset=val,
            )
            finals[mode] = result
        for mode, result in finals.items():
            assert result.final_epoch.eval_top1 > 0.8, mode
        # Under the injected imbalance the eager variants finish earlier.
        assert finals["solo"].total_sim_time < finals["sync"].total_sim_time

    def test_video_pipeline_end_to_end(self):
        """The full UCF101-like path: dataset -> bucketed loader -> LSTM ->

        eager-SGD with majority allreduce, exercising inherent imbalance,
        staleness tracking and the timing projection in one run.
        """
        dataset = VideoFeatureDataset(
            num_videos=160, feature_dim=8, num_classes=4, length_scale=0.04, seed=0
        )
        config = TrainingConfig(
            world_size=4,
            epochs=2,
            global_batch_size=32,
            mode="majority",
            learning_rate=0.1,
            optimizer="momentum",
            cost_model=lstm_ucf101_cost_model(batch_size=8),
            bucket_by_length=True,
            time_scale=0.001,
            model_sync_period_epochs=1,
            seed=0,
        )
        result = train_distributed(
            lambda: SequenceLSTMClassifier(feature_dim=8, hidden_dim=8, num_classes=4, seed=2),
            dataset,
            SoftmaxCrossEntropyLoss(),
            config,
        )
        assert result.epochs[-1].train_loss < result.epochs[0].train_loss
        assert result.projection is not None
        # Majority guarantees a healthy number of fresh contributors.
        assert result.epochs[-1].mean_num_active >= 2.0
        # Periodic sync at every epoch leaves identical replicas.
        assert len({s.final_model_hash for s in result.rank_summaries}) == 1

    def test_theory_guides_learning_rate_choice(self):
        """The Theorem 5.2 bound is usable end to end with observed staleness."""
        assumptions = ConvergenceAssumptions(
            smoothness=10.0,
            second_moment=3.0,
            loss_gap=5.0,
            num_processes=8,
            quorum=4,
            staleness_bound=2,
        )
        lr = max_learning_rate(assumptions, epsilon=0.5)
        assert 0 < lr < 1.0
