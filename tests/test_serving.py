"""Tests for the online serving tier (:mod:`repro.serving`).

Unit level: config validation, the dynamic batcher's SLO/backpressure
policy, subset communicators, the serving tag region.  End to end: a
serve-only world returns exact version-0 predictions; a serve-while-train
world hot-swaps weights without dropping requests; an announce-only
trainer drives the bounded-staleness refusal all the way to
:class:`~repro.serving.StaleReplicaError` at the client.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.collectives.sync import allreduce
from repro.comm import ANY_SOURCE, SubsetCommunicator, launch, split_world, tags
from repro.nn.models.mlp import HyperplaneMLP
from repro.serving import (
    BackpressureError,
    DynamicBatcher,
    InferenceServer,
    ServingConfig,
    StaleReplicaError,
    Workload,
    serve,
)
from repro.serving.server import _request_inputs


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------
class TestServingConfig:
    def test_layout(self):
        cfg = ServingConfig(replicas=3, train_ranks=2)
        assert cfg.world_size == 6
        assert list(cfg.trainer_ranks) == [0, 1]
        assert list(cfg.replica_ranks) == [2, 3, 4]
        assert cfg.frontend_rank == 5
        assert cfg.publisher_rank == 0

    def test_serve_only_has_no_publisher(self):
        cfg = ServingConfig(replicas=2, train_ranks=0)
        assert cfg.publisher_rank is None
        assert cfg.world_size == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replicas": 0},
            {"train_ranks": -1},
            {"max_batch_size": 0},
            {"max_queue_delay_s": -0.1},
            {"max_queue_depth": 0},
            {"max_staleness_versions": -1},
            {"request_timeout_s": 0},
            {"publish_every_steps": 0},
            {"announce_every_steps": 0},
            {"train_ranks": 1, "train_steps": 0},
            {"train_ranks": 4, "train_batch_size": 2},
            {"input_dim": 0},
            {"comm_backend": "no-such-backend"},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises((ValueError, KeyError)):
            ServingConfig(**kwargs).validate()

    def test_describe_mentions_shape(self):
        text = ServingConfig(replicas=2, train_ranks=1).describe()
        assert "2 replica(s)" in text and "train_ranks=1" in text


# ---------------------------------------------------------------------------
# dynamic batcher
# ---------------------------------------------------------------------------
class TestDynamicBatcher:
    def test_dispatches_at_max_batch_size(self):
        b = DynamicBatcher(max_batch_size=3, max_queue_delay_s=10.0, max_queue_depth=16)
        futures = [b.submit(np.array([i])) for i in range(3)]
        start = time.perf_counter()
        batch = b.next_batch()
        assert time.perf_counter() - start < 1.0  # no SLO wait: batch was full
        assert [p.future for p in batch] == futures
        assert b.depth == 0

    def test_dispatches_at_queue_delay(self):
        b = DynamicBatcher(max_batch_size=8, max_queue_delay_s=0.03, max_queue_depth=16)
        b.submit(np.array([1.0]))
        start = time.perf_counter()
        batch = b.next_batch(poll_timeout=1.0)
        waited = time.perf_counter() - start
        assert batch is not None and len(batch) == 1
        assert waited >= 0.02  # held for stragglers until the SLO clock ran out

    def test_partial_batch_keeps_remainder(self):
        b = DynamicBatcher(max_batch_size=2, max_queue_delay_s=0.0, max_queue_depth=16)
        for i in range(5):
            b.submit(np.array([i]))
        sizes = [len(b.next_batch()) for _ in range(3)]
        assert sizes == [2, 2, 1]

    def test_backpressure(self):
        b = DynamicBatcher(max_batch_size=4, max_queue_delay_s=1.0, max_queue_depth=2)
        b.submit(np.zeros(1))
        b.submit(np.zeros(1))
        with pytest.raises(BackpressureError):
            b.submit(np.zeros(1))
        assert b.rejected == 1
        b.next_batch()  # drains the queue
        b.submit(np.zeros(1))  # admitted again

    def test_close_drains_and_refuses(self):
        b = DynamicBatcher(max_batch_size=4, max_queue_delay_s=10.0, max_queue_depth=8)
        b.submit(np.zeros(1))
        drained = b.close()
        assert len(drained) == 1
        with pytest.raises(RuntimeError):
            b.submit(np.zeros(1))
        assert b.next_batch(poll_timeout=0.01) is None

    def test_future_timeout_and_exception(self):
        b = DynamicBatcher(max_batch_size=1, max_queue_delay_s=0.0, max_queue_depth=8)
        future = b.submit(np.zeros(1))
        with pytest.raises(TimeoutError):
            future.wait(timeout=0.01)
        future.set_exception(StaleReplicaError("nope"))
        with pytest.raises(StaleReplicaError):
            future.wait(timeout=0.1)
        done = b.submit(np.zeros(1))
        done.set_result(np.ones(1), 7)
        out, version = done.wait(timeout=0.1)
        assert version == 7 and out[0] == 1.0


# ---------------------------------------------------------------------------
# subset communicator
# ---------------------------------------------------------------------------
def _split_collectives(comm):
    groups = [[0, 1, 2], [3, 4]]
    views = split_world(comm, groups)
    sub = next(v for v in views if v is not None)
    # Independent allreduce per subset, concurrently on one fabric.
    total = allreduce(sub, np.array([float(comm.rank)]), average=False)
    sub.barrier()
    return sub.rank, sub.size, float(total[0]), sub.global_ranks


def _wildcard_rejected(comm):
    sub = SubsetCommunicator(comm, [0, 1])
    if comm.rank == 0:
        try:
            sub.recv(source=ANY_SOURCE, timeout=0.1)
        except ValueError:
            return "rejected"
        return "accepted"
    return None


class TestSubsetCommunicator:
    def test_split_world_collectives_are_independent(self):
        results = launch(_split_collectives, 5, backend="thread")
        for rank in (0, 1, 2):
            view_rank, size, total, members = results[rank]
            assert (view_rank, size) == (rank, 3)
            assert total == 0.0 + 1.0 + 2.0
            assert members == (0, 1, 2)
        for rank in (3, 4):
            view_rank, size, total, members = results[rank]
            assert (view_rank, size) == (rank - 3, 2)
            assert total == 3.0 + 4.0
            assert members == (3, 4)

    def test_wildcard_receive_rejected(self):
        results = launch(_wildcard_rejected, 2, backend="thread")
        assert results[0] == "rejected"

    def test_membership_validation(self):
        class FakeComm:
            rank, size = 0, 4

        with pytest.raises(ValueError):
            SubsetCommunicator(FakeComm(), [1, 2])  # rank 0 not a member
        with pytest.raises(ValueError):
            SubsetCommunicator(FakeComm(), [0, 0])  # duplicate
        with pytest.raises(ValueError):
            SubsetCommunicator(FakeComm(), [0, 9])  # outside world
        with pytest.raises(ValueError):
            split_world(FakeComm(), [[0, 1], [1, 2]])  # overlap


# ---------------------------------------------------------------------------
# serving tag region
# ---------------------------------------------------------------------------
class TestServingTags:
    def test_region_membership(self):
        for tag in (
            tags.serving_request_tag(0),
            tags.serving_response_tag(123),
            tags.serving_swap_tag(1),
            tags.serving_control_tag(0),
        ):
            region = tags.region_of(tag)
            assert region is not None and region.name == "serving"

    def test_sequence_recycling(self):
        cap = tags.SERVING_REQUEST_CAPACITY
        assert tags.serving_request_tag(cap + 5) == tags.serving_request_tag(5)
        assert tags.serving_response_tag(0) != tags.serving_request_tag(0)

    def test_negative_inputs_raise(self):
        for mint in (
            tags.serving_request_tag,
            tags.serving_response_tag,
            tags.serving_swap_tag,
            tags.serving_control_tag,
        ):
            with pytest.raises(ValueError):
                mint(-1)


# ---------------------------------------------------------------------------
# end to end (thread backend)
# ---------------------------------------------------------------------------
class TestServingEndToEnd:
    def test_serve_only_returns_exact_version0_predictions(self):
        cfg = ServingConfig(
            replicas=2,
            comm_backend="thread",
            input_dim=12,
            max_batch_size=4,
            max_queue_delay_s=0.002,
        )
        reference = HyperplaneMLP(cfg.input_dim, seed=cfg.seed).eval()
        with InferenceServer(cfg) as server:
            for index in range(10):
                x = _request_inputs(cfg, index)
                out, version = server.infer(x)
                assert version == 0
                np.testing.assert_allclose(
                    out, reference.forward(x[None, :])[0], rtol=1e-12
                )
        report = server.report
        assert report.frontend["completed_requests"] == 10
        assert report.versions_served == [0]
        assert sum(r["served_requests"] for r in report.replicas) == 10

    def test_serve_while_train_hot_swaps_without_drops(self):
        cfg = ServingConfig(
            replicas=2,
            train_ranks=1,
            comm_backend="thread",
            input_dim=32,
            max_batch_size=4,
            max_queue_delay_s=0.002,
            train_steps=200,
            train_batch_size=16,
            publish_every_steps=5,
        )
        report = serve(cfg, Workload(num_requests=150, clients=4, timeout_s=60))
        assert report.completed_requests == 150  # no drops across swaps
        assert report.workload["stale_failures"] == 0
        assert report.trainers[0]["final_version"] == 200
        # The replicas ended on published weights, identically.
        assert all(r["swaps_applied"] >= 1 for r in report.replicas)
        versions = report.versions_served
        assert versions and versions == sorted(versions)
        assert versions[-1] > 0  # served version advanced beyond the seed

    def test_bounded_staleness_rejection_reaches_client(self):
        # The trainer only ever announces (publish period beyond its
        # lifetime), so the replicas fall behind the announced frontier
        # with no payload to catch up on; K=2 must turn into refusals.
        cfg = ServingConfig(
            replicas=2,
            train_ranks=1,
            comm_backend="thread",
            input_dim=8,
            max_queue_delay_s=0.001,
            max_staleness_versions=2,
            train_steps=20,
            train_batch_size=8,
            publish_every_steps=10_000,
            announce_every_steps=1,
        )
        with InferenceServer(cfg) as server:
            deadline = time.monotonic() + 30.0
            saw_stale = False
            while time.monotonic() < deadline and not saw_stale:
                try:
                    server.infer(np.zeros(cfg.input_dim), timeout=10.0)
                except StaleReplicaError:
                    saw_stale = True
            assert saw_stale, "bounded-staleness refusal never reached the client"
        report = server.report
        assert report.frontend["stale_failures"] >= 1
        assert any(r["rejected_batches"] >= 1 for r in report.replicas)
        assert all(r["applied_version"] == 0 for r in report.replicas)

    def test_interactive_server_observes_version_advance(self):
        cfg = ServingConfig(
            replicas=1,
            train_ranks=1,
            comm_backend="thread",
            input_dim=32,
            max_queue_delay_s=0.001,
            train_steps=400,
            train_batch_size=16,
            publish_every_steps=2,
        )
        observed = []
        with InferenceServer(cfg) as server:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                _, version = server.infer(np.zeros(cfg.input_dim), timeout=10.0)
                observed.append(version)
                if version >= cfg.train_steps:
                    break
        assert observed == sorted(observed)  # versions never move backwards
        assert observed[-1] > 0
        assert server.report.replicas[0]["swaps_applied"] >= 1

    def test_concurrent_submitters_all_complete(self):
        cfg = ServingConfig(
            replicas=2,
            comm_backend="thread",
            input_dim=8,
            max_batch_size=8,
            max_queue_delay_s=0.002,
            max_queue_depth=512,
        )
        with InferenceServer(cfg) as server:
            results = []
            errors = []

            def client(c):
                try:
                    for i in range(20):
                        out, version = server.infer(np.full(8, float(c)))
                        results.append((c, version))
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(c,)) for c in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert len(results) == 100
        assert server.report.frontend["completed_requests"] == 100


@pytest.mark.slow
class TestServingProcessBackend:
    def test_serve_while_train_on_process_backend(self):
        from repro.comm import available_backends

        if "process" not in available_backends():
            pytest.skip("process backend unavailable")
        cfg = ServingConfig(
            replicas=2,
            train_ranks=1,
            comm_backend="process",
            input_dim=16,
            max_batch_size=4,
            max_queue_delay_s=0.002,
            train_steps=30,
            train_batch_size=8,
            publish_every_steps=5,
        )
        report = serve(
            cfg, Workload(num_requests=60, clients=4, timeout_s=120), timeout=240
        )
        assert report.completed_requests == 60
        assert report.versions_served[-1] > 0
