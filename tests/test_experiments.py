"""Tests for the experiment harnesses (one per paper table/figure)."""

import numpy as np
import pytest

from repro.experiments import (
    fig2_workload,
    fig3_wmt_runtime,
    fig4_cloud_runtime,
    fig9_microbenchmark,
    fig10_hyperplane,
    fig12_cifar_severe,
    fig13_ucf101_lstm,
    table1_networks,
)
from repro.experiments.report import format_series, format_table, ratio_line


class TestReportHelpers:
    def test_format_table_alignment_and_title(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", "y")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])

    def test_format_series_subsamples(self):
        text = format_series("s", list(range(100)), list(range(100)), max_points=5)
        assert len(text.splitlines()) == 5 + 4  # title + separator rows + 5 points

    def test_ratio_line(self):
        line = ratio_line("speedup", 1.5, 1.27)
        assert "1.50x" in line and "1.27x" in line


class TestWorkloadFigures:
    def test_fig2_distributions_match_paper_shape(self):
        result = fig2_workload.run(num_videos=4000, seed=0)
        # Length distribution: bounds and median close to the paper.
        assert result.length_summary.min >= 29
        assert result.length_summary.max <= 1776
        assert abs(result.length_summary.median - 167) < 25
        # Runtime distribution: right order of magnitude and long tail.
        assert 150 < result.runtime_summary_ms.min < 600
        assert 2500 < result.runtime_summary_ms.max <= 3500
        assert result.runtime_summary_ms.std > 300
        report = fig2_workload.report(result)
        assert "Fig. 2a" in report and "Fig. 2b" in report

    def test_fig3_runtime_distribution(self):
        result = fig3_wmt_runtime.run(num_sentences=30_000, seed=0)
        assert 120 < result.runtime_summary_ms.min < 300
        assert result.runtime_summary_ms.mean == pytest.approx(475, rel=0.4)
        assert result.runtime_summary_ms.max > 2 * result.runtime_summary_ms.mean
        assert "Fig. 3" in fig3_wmt_runtime.report(result)

    def test_fig4_cloud_distribution(self):
        result = fig4_cloud_runtime.run(num_batches=4000, seed=0)
        assert result.runtime_summary_ms.min >= 399
        assert result.runtime_summary_ms.mean == pytest.approx(454, rel=0.15)
        assert result.runtime_summary_ms.max > 1000
        assert "Fig. 4" in fig4_cloud_runtime.report(result)

    def test_table1_rows(self):
        result = table1_networks.run(scale="small")
        assert len(result.rows) == 4
        tasks = [r.task for r in result.rows]
        assert "UCF101" in tasks and "ImageNet" in tasks
        # The hyperplane MLP parameter count is exact at paper scale.
        paper = table1_networks.run(scale="paper")
        mlp_row = next(r for r in paper.rows if "Hyperplane" in r.task)
        assert mlp_row.repro_parameters == mlp_row.paper_parameters == 8193
        assert "Table 1" in table1_networks.report(result)

    def test_table1_invalid_scale(self):
        with pytest.raises(ValueError):
            table1_networks.run(scale="huge")


class TestFig9Microbenchmark:
    def test_latency_ordering_and_nap(self):
        result = fig9_microbenchmark.run(world_size=32, iterations=32)
        for row in result.rows:
            assert row.solo_latency_ms < row.majority_latency_ms < row.mpi_latency_ms
            assert row.solo_nap <= 2
            assert 10 <= row.majority_nap <= 22
        # Headline ratios land in the paper's regime.
        assert result.solo_speedup > 10
        assert 1.5 < result.majority_speedup < 4.5
        report = fig9_microbenchmark.report(result)
        assert "Fig. 9" in report and "NAP" in report

    def test_functional_backend_ordering(self):
        rows = fig9_microbenchmark.run_functional(
            world_size=4, iterations=4, skew_step_ms=8.0, message_elements=64
        )
        row = rows[0]
        # The thread backend must preserve the ordering solo <= majority <= sync.
        assert row.solo_latency_ms <= row.majority_latency_ms * 1.5
        assert row.solo_latency_ms < row.mpi_latency_ms
        assert row.solo_nap <= row.majority_nap <= 4


class TestTrainingFigures:
    """Tiny-scale smoke runs of the training figures (shape, not numbers)."""

    def test_fig10_speedup_direction(self):
        result = fig10_hyperplane.run(scale="tiny", delays_ms=(300.0,), seed=0)
        speedups = fig10_hyperplane.speedups_per_delay(result)
        assert speedups[300.0] > 1.0
        # Both variants converge to a similar validation loss.
        sync_loss = result.comparison.results["synch-SGD-300 (Deep500)"].final_epoch.eval_loss
        solo_loss = result.comparison.results["eager-SGD-300 (solo)"].final_epoch.eval_loss
        assert solo_loss == pytest.approx(sync_loss, rel=0.5)
        assert "Fig. 10" in fig10_hyperplane.report(result)

    def test_fig12_majority_between_solo_and_sync(self):
        result = fig12_cifar_severe.run(scale="tiny", seed=0)
        comp = result.comparison
        t_sync = comp.results["synch-SGD (Horovod)"].total_sim_time
        t_solo = comp.results["eager-SGD (solo)"].total_sim_time
        t_majority = comp.results["eager-SGD (majority)"].total_sim_time
        assert t_solo < t_sync
        assert t_solo <= t_majority <= t_sync
        # Solo sees far fewer fresh contributors than majority under the
        # severe rotating skew.
        nap_solo = comp.results["eager-SGD (solo)"].epochs[-1].mean_num_active
        nap_majority = comp.results["eager-SGD (majority)"].epochs[-1].mean_num_active
        assert nap_solo < nap_majority
        assert "Fig. 12" in fig12_cifar_severe.report(result)

    def test_fig13_inherent_imbalance_speedup(self):
        result = fig13_ucf101_lstm.run(scale="tiny", seed=0)
        comp = result.comparison
        assert comp.speedup_over("eager-SGD (solo)") > 1.0
        # The workload trace must actually be imbalanced across ranks.
        durations = comp.results["synch-SGD (Horovod)"].step_durations
        ratio = (durations.max(axis=1) / durations.mean(axis=1)).mean()
        assert ratio > 1.1
        assert "Fig. 13" in fig13_ucf101_lstm.report(result)

    def test_invalid_scales(self):
        with pytest.raises(ValueError):
            fig10_hyperplane.run(scale="giant")
        with pytest.raises(ValueError):
            fig12_cifar_severe.run(scale="giant")
        with pytest.raises(ValueError):
            fig13_ucf101_lstm.run(scale="giant")
