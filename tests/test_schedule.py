"""Tests for the schedule engine (ops, graphs, executor, persistence)."""

import numpy as np
import pytest

from repro.comm import ThreadWorld, launch
from repro.schedule import (
    ComputeOp,
    DepMode,
    NopOp,
    OpState,
    PersistentScheduleRunner,
    RecvOp,
    Schedule,
    ScheduleExecutor,
    ScheduleValidationError,
    SendOp,
    TriggerOp,
)
from repro.schedule.executor import ScheduleExecutionError


class TestOps:
    def test_duplicate_name_rejected(self):
        sched = Schedule("s")
        sched.nop("a")
        with pytest.raises(ScheduleValidationError):
            sched.nop("a")

    def test_sendop_requires_exactly_one_payload_source(self):
        with pytest.raises(ValueError):
            SendOp("s", dest=0, tag=0)
        with pytest.raises(ValueError):
            SendOp("s", dest=0, tag=0, buffer="b", payload_fn=lambda b: 1)

    def test_recvop_combine(self):
        op = RecvOp("r", source=0, tag=0, buffer="acc", combine=lambda a, b: a + b)
        buffers = {"acc": np.array([1.0])}
        op.store(buffers, np.array([2.0]))
        assert np.allclose(buffers["acc"], 3.0)

    def test_trigger_op_requires_trigger(self):
        op = TriggerOp("t")
        with pytest.raises(RuntimeError):
            op.execute({})
        op.trigger()
        op.execute({})
        op.reset()
        assert not op.triggered

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            NopOp("")


class TestScheduleGraph:
    def test_cycle_detection(self):
        sched = Schedule("cyclic")
        sched.nop("a")
        sched.nop("b", after=["a"])
        sched.add_dependency("b", "a")
        with pytest.raises(ScheduleValidationError):
            sched.validate()

    def test_unknown_dependency(self):
        sched = Schedule("s")
        sched.nop("a")
        with pytest.raises(ScheduleValidationError):
            sched.add_dependency("missing", "a")

    def test_roots_and_topological_order(self):
        sched = Schedule("s")
        sched.nop("a")
        sched.nop("b", after=["a"])
        sched.nop("c", after=["a"])
        sched.nop("d", after=["b", "c"])
        assert sched.roots() == ["a"]
        order = sched.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")

    def test_or_dependency_readiness(self):
        sched = Schedule("s")
        a = sched.nop("a")
        sched.nop("b")
        sched.nop("c", after=["a", "b"], dep_mode=DepMode.OR)
        assert not sched.is_ready("c")
        a.state = OpState.DONE
        assert sched.is_ready("c")

    def test_and_dependency_readiness(self):
        sched = Schedule("s")
        a = sched.nop("a")
        b = sched.nop("b")
        sched.nop("c", after=["a", "b"])
        a.state = OpState.DONE
        assert not sched.is_ready("c")
        b.state = OpState.DONE
        assert sched.is_ready("c")

    def test_fresh_copy_shares_buffers_resets_state(self):
        sched = Schedule("s", persistent=True)
        sched.nop("a")
        sched.set_buffer("recv", np.zeros(2))
        sched.ops["a"].state = OpState.DONE
        clone = sched.fresh_copy()
        assert clone.ops["a"].state is OpState.PENDING
        assert clone.buffers is sched.buffers
        assert "a" in clone and len(clone) == 1


class TestExecutor:
    def test_local_ops_execute_in_dependency_order(self):
        world = ThreadWorld(1)
        comm = world.communicator(0)
        sched = Schedule("local")
        trace = []
        sched.compute("first", lambda b: trace.append("first"))
        sched.compute("second", lambda b: trace.append("second"), after=["first"])
        ScheduleExecutor(comm, sched).run(timeout=5)
        assert trace == ["first", "second"]

    def test_send_recv_between_ranks(self):
        def worker(comm):
            sched = Schedule(f"p{comm.rank}")
            if comm.rank == 0:
                sched.set_buffer("data", np.arange(4.0))
                sched.send("s", dest=1, tag=11, buffer="data")
            else:
                sched.recv("r", source=0, tag=11, buffer="incoming")
            ScheduleExecutor(comm, sched).run(timeout=10)
            return sched.get_buffer("incoming")

        results = launch(worker, 2)
        assert np.allclose(results[1], np.arange(4.0))

    def test_stuck_schedule_raises(self):
        world = ThreadWorld(1)
        comm = world.communicator(0)
        sched = Schedule("stuck")
        sched.add(TriggerOp("never"))
        sched.nop("after", after=["never"])
        with pytest.raises(ScheduleExecutionError):
            ScheduleExecutor(comm, sched).run(timeout=1)

    def test_run_until_and_abandon(self):
        world = ThreadWorld(1)
        comm = world.communicator(0)
        sched = Schedule("partial")
        sched.nop("goal")
        sched.recv("never_arrives", source=0, tag=5, buffer="x")
        executor = ScheduleExecutor(comm, sched)
        executor.run(until=["goal"], timeout=5)
        skipped = executor.abandon_pending()
        assert "never_arrives" in skipped
        assert sched.ops["never_arrives"].state is OpState.SKIPPED

    def test_unknown_target_rejected(self):
        world = ThreadWorld(1)
        comm = world.communicator(0)
        sched = Schedule("s")
        sched.nop("a")
        with pytest.raises(ScheduleExecutionError):
            ScheduleExecutor(comm, sched).run(until=["nope"], timeout=1)

    def test_consumable_ops_run_once(self):
        world = ThreadWorld(1)
        comm = world.communicator(0)
        sched = Schedule("consume")
        count = []
        sched.compute("c", lambda b: count.append(1))
        executor = ScheduleExecutor(comm, sched)
        executor.step()
        executor.step()
        assert len(count) == 1


class TestPersistentRunner:
    def test_multiple_executions_reuse_buffers(self):
        world = ThreadWorld(1)
        comm = world.communicator(0)

        def factory(execution_index):
            sched = Schedule("persist", persistent=True)
            sched.compute(
                "write",
                lambda buffers, i=execution_index: buffers.__setitem__("recv", i),
            )
            return sched

        runner = PersistentScheduleRunner(comm, factory)
        runner.execute(timeout=5)
        runner.execute(timeout=5)
        assert runner.executions == 2
        # The persistent receive buffer holds the latest execution's value.
        assert runner.persistent_buffers["recv"] == 1
