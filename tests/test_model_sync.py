"""Tests for :mod:`repro.training.model_sync` and hot-swap versioning.

Covers the three contracts the serving tier leans on:

* :func:`synchronize_model` round-trips across transports — divergent
  replicas end up on the exact average, batch-norm statistics included;
* :func:`model_hash` is stable across ranks and input dtypes (it is the
  cross-rank consistency certificate, so any canonicalisation gap would
  produce false drift alarms);
* :class:`~repro.serving.versioning.WeightStore` hot-swap versions are
  monotonic under concurrent updates.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.comm import available_backends, launch
from repro.nn.layers.norm import BatchNorm
from repro.nn.losses import MSELoss
from repro.nn.models.mlp import HyperplaneMLP
from repro.nn.module import Module
from repro.nn.parameters import assign_flat_parameters, flatten_parameters
from repro.serving.versioning import VersionedWeights, WeightStore
from repro.training.model_sync import model_hash, synchronize_model

BACKENDS = ["thread", "process"]


def _skip_if_unavailable(name: str) -> None:
    if name not in available_backends():
        from repro.comm.backend import backend_unavailable_reason

        pytest.skip(f"backend {name!r} unavailable: {backend_unavailable_reason(name)}")


# ---------------------------------------------------------------------------
# SPMD bodies (module-level: the process backend pickles them)
# ---------------------------------------------------------------------------
def _divergent_sync(comm, input_dim):
    model = HyperplaneMLP(input_dim, seed=1000 + comm.rank)
    before = flatten_parameters(model).copy()
    synchronize_model(comm, model)
    return before, flatten_parameters(model), model_hash(model)


def _hash_of_shared_seed(comm, input_dim):
    model = HyperplaneMLP(input_dim, seed=7)
    return model_hash(model)


class _BNModel(Module):
    def __init__(self, features: int, fill: float) -> None:
        super().__init__()
        self.bn = BatchNorm(features)
        self.bn.running_mean[...] = fill
        self.bn.running_var[...] = 2.0 * fill + 1.0

    def forward(self, x):  # pragma: no cover - structure-only model
        return self.bn(x)


def _bn_sync(comm, features):
    model = _BNModel(features, fill=float(comm.rank))
    synchronize_model(comm, model)
    return model.bn.running_mean.copy(), model.bn.running_var.copy()


# ---------------------------------------------------------------------------
# synchronize_model
# ---------------------------------------------------------------------------
class TestSynchronizeModel:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip_averages_divergent_replicas(self, backend):
        _skip_if_unavailable(backend)
        world = 3
        results = launch(_divergent_sync, world, 12, backend=backend)
        befores = np.stack([r[0] for r in results])
        expected = befores.mean(axis=0)
        for before, after, digest in results:
            np.testing.assert_allclose(after, expected, rtol=1e-12, atol=1e-12)
        assert len({r[2] for r in results}) == 1
        # The sync actually changed something (the replicas diverged).
        assert not np.allclose(results[0][0], results[0][1])

    def test_averages_batch_norm_statistics(self):
        world = 4
        results = launch(_bn_sync, world, 5, backend="thread")
        want_mean = np.full(5, np.mean(range(world)))
        want_var = 2.0 * want_mean + 1.0
        for mean, var in results:
            np.testing.assert_allclose(mean, want_mean, rtol=1e-12)
            np.testing.assert_allclose(var, want_var, rtol=1e-12)

    def test_noop_without_communicator(self):
        model = HyperplaneMLP(8, seed=3)
        before = model_hash(model)
        synchronize_model(None, model)
        assert model_hash(model) == before


# ---------------------------------------------------------------------------
# model_hash
# ---------------------------------------------------------------------------
class TestModelHash:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stable_across_ranks(self, backend):
        _skip_if_unavailable(backend)
        hashes = launch(_hash_of_shared_seed, 3, 10, backend=backend)
        assert len(set(hashes)) == 1

    def test_stable_across_dtypes(self):
        model = HyperplaneMLP(16, seed=11)
        flat64 = flatten_parameters(model)
        # Assigning a float32 (or fortran-ordered) vector must hash the
        # same as assigning its float64-cast values: the hash is over the
        # canonical contiguous float64 parameters, not the input buffer.
        reference = HyperplaneMLP(16, seed=11)
        assign_flat_parameters(reference, flat64.astype(np.float32).astype(np.float64))
        assign_flat_parameters(model, np.asfortranarray(flat64.astype(np.float32)))
        assert model_hash(model) == model_hash(reference)

    def test_detects_single_parameter_change(self):
        a = HyperplaneMLP(16, seed=5)
        b = HyperplaneMLP(16, seed=5)
        assert model_hash(a) == model_hash(b)
        flat = flatten_parameters(b)
        flat[3] += 1e-9
        assign_flat_parameters(b, flat)
        assert model_hash(a) != model_hash(b)


# ---------------------------------------------------------------------------
# hot-swap version monotonicity
# ---------------------------------------------------------------------------
class TestWeightStoreMonotonicity:
    def test_stale_stage_is_discarded(self):
        model = HyperplaneMLP(4, seed=0)
        n = flatten_parameters(model).size
        store = WeightStore(0)
        assert store.stage(VersionedWeights(3, np.full(n, 3.0)))
        assert not store.stage(VersionedWeights(2, np.full(n, 2.0)))
        assert store.apply_pending(model) == 3
        assert store.applied_version == 3
        # Older than applied: discarded even with no pending set.
        assert not store.stage(VersionedWeights(3, np.full(n, 9.0)))
        assert store.apply_pending(model) is None
        np.testing.assert_array_equal(flatten_parameters(model), np.full(n, 3.0))
        assert store.swaps_discarded == 2

    def test_concurrent_updates_keep_versions_monotonic(self):
        model = HyperplaneMLP(4, seed=0)
        n = flatten_parameters(model).size
        store = WeightStore(0)
        num_writers, versions_per_writer = 4, 50
        start = threading.Barrier(num_writers + 1)

        def writer(w: int) -> None:
            start.wait()
            rng = np.random.default_rng(w)
            versions = rng.permutation(num_writers * versions_per_writer) + 1
            for version in versions[:versions_per_writer]:
                store.stage(VersionedWeights(int(version), np.full(n, float(version))))

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(num_writers)]
        for t in threads:
            t.start()
        applied = []
        start.wait()
        while any(t.is_alive() for t in threads) or True:
            version = store.apply_pending(model)
            if version is not None:
                applied.append(version)
                # The swapped-in parameters match the version exactly:
                # never a torn mix of two parameter sets.
                np.testing.assert_array_equal(
                    flatten_parameters(model), np.full(n, float(version))
                )
            if not any(t.is_alive() for t in threads):
                final = store.apply_pending(model)
                if final is not None:
                    applied.append(final)
                break
        for t in threads:
            t.join()
        assert applied == sorted(applied)
        assert len(set(applied)) == len(applied)
        assert store.applied_version == applied[-1]
        assert store.staleness() >= 0

    def test_announce_only_staleness(self):
        store = WeightStore(0)
        store.announce(5)
        assert store.staleness() == 5
        assert store.too_stale(4)
        assert not store.too_stale(5)
        assert not store.too_stale(None)
        model = HyperplaneMLP(4, seed=0)
        n = flatten_parameters(model).size
        store.stage(VersionedWeights(5, np.zeros(n)))
        store.apply_pending(model)
        assert store.staleness() == 0
