"""Tests for the calibrated LogGP + auto-tuned fusion subsystem.

Covers the tuning PR: parameter validation on construction, element-width
consistency of the gradient bucketer (property-style round trips), the
least-squares calibration fit (synthetic recovery), the profile cache,
the fusion grid search, and the resolution of ``"auto"`` config values
through the stack.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simtime.collective_model import allreduce_time, fused_exchange_time
from repro.simtime.network import DEFAULT_NETWORK, LogGPParams
from repro.training import GradientBucketer, SynchronousExchange
from repro.training.bucketing import BucketSpec
from repro.training.config import TrainingConfig
from repro.training.exchange import build_exchange
from repro.tuning import (
    CalibratedProfile,
    CalibrationSample,
    ProfileCacheError,
    TunedPlan,
    autotune,
    calibrate,
    fit_loggp,
    load_profile,
    profile_path,
    resolve_auto_fusion,
)
from repro.tuning.autotune import (
    DEFAULT_FIXED_THRESHOLD_BYTES,
    predict_exchange_time,
    tune_with_profile,
)
from repro.tuning.calibration import max_relative_error, predict_sample


# ---------------------------------------------------------------------------
# satellite: LogGPParams validates on construction
# ---------------------------------------------------------------------------
class TestLogGPParamsValidation:
    def test_defaults_are_valid(self):
        LogGPParams().validate()

    @pytest.mark.parametrize("field", ["alpha", "beta", "gamma", "collective_overhead"])
    @pytest.mark.parametrize("bad", [-1e-9, float("nan"), float("inf")])
    def test_invalid_values_rejected_at_construction(self, field, bad):
        """Regression: validate() used to exist but was never called, so
        negative or NaN parameters flowed straight into allreduce_time."""
        with pytest.raises(ValueError, match=field):
            LogGPParams(**{field: bad})

    def test_zero_parameters_allowed(self):
        params = LogGPParams(alpha=0.0, beta=0.0, gamma=0.0, collective_overhead=0.0)
        assert allreduce_time(1024, 4, "ring", params) == 0.0

    def test_numpy_scalars_accepted(self):
        LogGPParams(alpha=np.float32(2e-6), beta=np.float64(1e-10)).validate()
        with pytest.raises(ValueError):
            LogGPParams(alpha=np.float32("nan"))
        with pytest.raises(ValueError):
            LogGPParams(alpha="2e-6")


# ---------------------------------------------------------------------------
# satellite: missing cost-model input guards
# ---------------------------------------------------------------------------
class TestCostModelGuards:
    def test_allreduce_time_rejects_negative_nbytes(self):
        with pytest.raises(ValueError, match="non-negative"):
            allreduce_time(-1, 4)

    def test_fused_exchange_time_rejects_bad_size_and_chunks(self):
        with pytest.raises(ValueError, match="size must be >= 1"):
            fused_exchange_time([1024.0], 0)
        with pytest.raises(ValueError, match="n_chunks must be >= 1"):
            fused_exchange_time([1024.0], 4, n_chunks=0)
        with pytest.raises(ValueError, match="non-negative"):
            fused_exchange_time([1024.0, -4.0], 4)

    def test_valid_calls_unchanged(self):
        assert fused_exchange_time([1024.0], 1) == DEFAULT_NETWORK.collective_overhead
        assert fused_exchange_time([0.0, 1024.0], 4) > 0


# ---------------------------------------------------------------------------
# satellite: bucketer element width consistency + round-trip properties
# ---------------------------------------------------------------------------
class TestBucketerBytesPerElement:
    def test_nbytes_uses_custom_element_width(self):
        """Regression: BucketSpec.nbytes hardcoded 8 bytes/element even when
        the bucketer was built with a custom width."""
        b = GradientBucketer([4, 4], fusion_threshold_bytes=16, bytes_per_element=4)
        assert b.bytes_per_element == 4
        assert [spec.num_elements for spec in b.buckets] == [4, 4]
        assert all(spec.nbytes == 16 for spec in b.buckets)
        assert all(spec.bytes_per_element == 4 for spec in b.buckets)

    @pytest.mark.parametrize("builder", ["from_flat", "fixed_count"])
    def test_builders_thread_element_width(self, builder):
        if builder == "from_flat":
            b = GradientBucketer.from_flat(12, fusion_threshold_bytes=12, bytes_per_element=3)
        else:
            b = GradientBucketer.fixed_count(12, 3, bytes_per_element=3)
        assert b.bytes_per_element == 3
        assert sum(spec.nbytes for spec in b.buckets) == 12 * 3
        for spec in b.buckets:
            assert spec.nbytes == spec.num_elements * 3

    def test_default_width_unchanged(self):
        spec = BucketSpec(0, 0, 10)
        assert spec.nbytes == 80

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=17), min_size=1, max_size=8),
        bytes_per_element=st.sampled_from([1, 2, 3, 4, 5, 7, 8, 12]),
        threshold=st.integers(min_value=1, max_value=256),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_pack_unpack_round_trip_property(self, sizes, bytes_per_element, threshold, seed):
        """pack -> unpack is a bit-exact inverse under any element width,
        and the byte accounting matches the width."""
        b = GradientBucketer(
            sizes, fusion_threshold_bytes=threshold, bytes_per_element=bytes_per_element
        )
        total = sum(sizes)
        flat = np.random.default_rng(seed).normal(size=total)
        buffers = b.pack(flat)
        assert sum(buf.size for buf in buffers) == total
        assert np.array_equal(b.unpack(buffers), flat)
        assert sum(spec.nbytes for spec in b.buckets) == total * bytes_per_element
        # No bucket with more than one parameter exceeds the threshold
        # (single oversized parameters legitimately may).
        for spec in b.buckets:
            if len(spec.param_indices) > 1:
                assert spec.nbytes <= max(threshold, bytes_per_element)

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=17), min_size=1, max_size=8),
        bytes_per_element=st.sampled_from([1, 3, 5, 8]),
        threshold=st.integers(min_value=1, max_value=256),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_pack_params_round_trip_property(self, sizes, bytes_per_element, threshold, seed):
        """pack_params agrees with pack on the concatenated flat gradient."""
        b = GradientBucketer(
            sizes, fusion_threshold_bytes=threshold, bytes_per_element=bytes_per_element
        )
        rng = np.random.default_rng(seed)
        grads = [rng.normal(size=(s,)) for s in sizes]
        flat = np.concatenate(grads)
        from_params = b.pack_params(grads)
        from_flat = b.pack(flat)
        for a, c in zip(from_params, from_flat):
            assert np.array_equal(a, c)
        assert np.array_equal(b.unpack(from_params), flat)

    def test_invalid_element_width_rejected(self):
        with pytest.raises(ValueError):
            GradientBucketer([4], bytes_per_element=0)
        with pytest.raises(ValueError):
            GradientBucketer.from_flat(4, bytes_per_element=0)
        with pytest.raises(ValueError):
            GradientBucketer.fixed_count(4, 2, bytes_per_element=-1)


# ---------------------------------------------------------------------------
# calibration: synthetic fit recovery
# ---------------------------------------------------------------------------
def _synthetic_samples(true: LogGPParams, world_size: int, algorithm: str):
    samples = []
    for nbytes in (4096, 65536, 262144, 1048576):
        samples.append(
            CalibrationSample(
                "pingpong", world_size, nbytes, true.alpha + nbytes * true.beta
            )
        )
        samples.append(
            CalibrationSample("reduce", world_size, nbytes, nbytes * true.gamma)
        )
        samples.append(
            CalibrationSample(
                "allreduce",
                world_size,
                nbytes,
                allreduce_time(nbytes, world_size, algorithm, true),
                algorithm,
            )
        )
    return samples


class TestFitLogGP:
    @pytest.mark.parametrize("algorithm", ["ring", "recursive_doubling", "rabenseifner"])
    @pytest.mark.parametrize("world_size", [4, 8])
    def test_recovers_known_parameters(self, algorithm, world_size):
        true = LogGPParams(
            alpha=3.5e-6, beta=2.2e-10, gamma=6.0e-11, collective_overhead=9.0e-6
        )
        fit = fit_loggp(_synthetic_samples(true, world_size, algorithm))
        assert fit.alpha == pytest.approx(true.alpha, rel=0.05)
        assert fit.beta == pytest.approx(true.beta, rel=0.05)
        assert fit.gamma == pytest.approx(true.gamma, rel=0.05)
        assert fit.collective_overhead == pytest.approx(
            true.collective_overhead, rel=0.05
        )

    def test_fitted_model_predicts_synthetic_sweep(self):
        true = LogGPParams(
            alpha=5e-6, beta=8e-10, gamma=3e-10, collective_overhead=2e-4
        )
        samples = _synthetic_samples(true, 8, "ring")
        fit = fit_loggp(samples)
        assert max_relative_error(samples, fit) < 1e-6

    def test_fit_is_always_valid(self):
        # Wildly inconsistent measurements must still produce a valid
        # (non-negative, finite) parameter set.
        samples = [
            CalibrationSample("pingpong", 4, 1024, 5.0),
            CalibrationSample("reduce", 4, 1024, 1e-9),
            CalibrationSample("allreduce", 4, 1024, 1e-3, "ring"),
            CalibrationSample("allreduce", 4, 4096, 2.0, "ring"),
            CalibrationSample("allreduce", 4, 65536, 1e-4, "ring"),
        ]
        fit_loggp(samples).validate()

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least 4"):
            fit_loggp([CalibrationSample("pingpong", 2, 64, 1e-6)])

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            CalibrationSample("bogus", 2, 64, 1e-6)
        with pytest.raises(ValueError):
            CalibrationSample("pingpong", 2, -1, 1e-6)
        with pytest.raises(ValueError):
            CalibrationSample("pingpong", 2, 64, float("nan"))
        with pytest.raises(ValueError):
            CalibrationSample("pingpong", 2, 64, 0.0)


# ---------------------------------------------------------------------------
# profile cache
# ---------------------------------------------------------------------------
def _profile(world_size=2, **overrides) -> CalibratedProfile:
    defaults = dict(
        backend="thread",
        world_size=world_size,
        params=LogGPParams(),
        algorithm="ring",
        samples=(CalibrationSample("allreduce", world_size, 4096, 1e-4, "ring"),),
        max_rel_error=0.1,
    )
    defaults.update(overrides)
    return CalibratedProfile(**defaults)


class TestProfileCache:
    def test_json_round_trip(self, tmp_path):
        profile = _profile()
        path = profile.save(profile_path(2, cache_dir=tmp_path))
        loaded = CalibratedProfile.load(path)
        assert loaded == profile

    def test_load_profile_missing_returns_none(self, tmp_path):
        assert load_profile(2, cache_dir=tmp_path) is None

    def test_corrupt_cache_raises(self, tmp_path):
        path = profile_path(2, cache_dir=tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        with pytest.raises(ProfileCacheError):
            load_profile(2, cache_dir=tmp_path)

    def test_stale_version_triggers_recalibration_path(self, tmp_path):
        path = profile_path(2, cache_dir=tmp_path)
        data = _profile().to_dict()
        data["version"] = 0
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data))
        assert load_profile(2, cache_dir=tmp_path) is None

    def test_wrong_key_rejected(self, tmp_path):
        _profile(world_size=4).save(profile_path(2, cache_dir=tmp_path))
        with pytest.raises(ProfileCacheError, match="keyed"):
            load_profile(2, cache_dir=tmp_path)

    def test_calibrate_measures_fits_and_caches(self, tmp_path):
        profile = calibrate(
            2,
            sizes=(1024, 8192, 32768),
            base_iterations=2,
            cache_dir=tmp_path,
            force=True,
        )
        profile.params.validate()
        assert profile.world_size == 2 and profile.backend == "thread"
        assert math.isfinite(profile.max_rel_error)
        assert any(s.kind == "allreduce" for s in profile.samples)
        # Second call with the same sweep must come from the cache:
        # identical object contents even though the thread backend would
        # never measure identically twice.
        again = calibrate(2, sizes=(1024, 8192, 32768), cache_dir=tmp_path)
        assert again == profile
        # A subset sweep is covered by the cached profile too.
        subset = calibrate(2, sizes=(1024, 32768), cache_dir=tmp_path)
        assert subset == profile

    def test_cached_quick_profile_does_not_satisfy_full_sweep(self, tmp_path):
        """Regression: the cache was keyed only by (backend, world size),
        so a 3-point quick profile silently satisfied a full calibration
        and the 4 KiB - 4 MiB accuracy claim went unmeasured."""
        quick = calibrate(
            2, sizes=(1024, 8192), base_iterations=2, cache_dir=tmp_path, force=True
        )
        full = calibrate(
            2, sizes=(1024, 8192, 32768), base_iterations=2, cache_dir=tmp_path
        )
        assert full != quick
        assert {s.nbytes for s in full.samples if s.kind == "allreduce"} == {
            1024, 8192, 32768,
        }
        # The fuller profile replaced the quick one in the cache.
        assert load_profile(2, cache_dir=tmp_path) == full

    def test_calibrate_rejects_bad_world_and_backend(self, tmp_path):
        with pytest.raises(ValueError, match="world_size"):
            calibrate(1, cache_dir=tmp_path)
        with pytest.raises(ValueError, match="backend"):
            calibrate(2, backend="mpi", cache_dir=tmp_path)


# ---------------------------------------------------------------------------
# autotune grid search
# ---------------------------------------------------------------------------
class TestAutotune:
    @pytest.mark.parametrize("world_size", [2, 4, 8])
    def test_never_loses_to_fixed_default(self, world_size):
        plan = autotune(DEFAULT_NETWORK, world_size, 4 * 1024 * 1024)
        assert plan.speedup >= 1.0
        assert plan.predicted_time <= plan.baseline_time

    def test_plan_matches_model_prediction(self):
        plan = autotune(DEFAULT_NETWORK, 8, 2 * 1024 * 1024, algorithm="ring")
        assert plan.predicted_time == pytest.approx(
            predict_exchange_time(
                DEFAULT_NETWORK, 8, 2 * 1024 * 1024, "ring",
                plan.fusion_threshold_bytes, plan.pipeline_chunks,
            )
        )
        assert plan.baseline_time == pytest.approx(
            predict_exchange_time(
                DEFAULT_NETWORK, 8, 2 * 1024 * 1024, "ring",
                DEFAULT_FIXED_THRESHOLD_BYTES, 1,
            )
        )

    def test_restricted_grids_are_honoured(self):
        plan = autotune(
            DEFAULT_NETWORK, 4, 1024 * 1024,
            thresholds=[256 * 1024], chunks=[2, 4],
        )
        assert plan.fusion_threshold_bytes == 256 * 1024
        assert plan.pipeline_chunks in (2, 4)

    def test_plan_json_round_trip(self):
        plan = autotune(DEFAULT_NETWORK, 4, 1024 * 1024)
        original = plan.to_dict()
        restored = TunedPlan.from_dict(json.loads(json.dumps(original))).to_dict()
        for key, value in original.items():
            if isinstance(value, float) and math.isnan(value):
                assert math.isnan(restored[key])  # no live trials ran
            else:
                assert restored[key] == value

    def test_live_cross_check_runs_real_exchanges(self):
        plan = autotune(
            DEFAULT_NETWORK, 2, 64 * 1024,
            thresholds=[16 * 1024, 64 * 1024], chunks=[1, 2],
            live_trials=2, live_iterations=1,
        )
        assert math.isfinite(plan.measured_time)
        assert math.isfinite(plan.measured_baseline_time)
        assert plan.measured_time > 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            autotune(DEFAULT_NETWORK, 0, 1024)
        with pytest.raises(ValueError):
            autotune(DEFAULT_NETWORK, 4, 0)
        with pytest.raises(ValueError):
            autotune(DEFAULT_NETWORK, 4, 1024, thresholds=[0])
        with pytest.raises(ValueError):
            autotune(DEFAULT_NETWORK, 4, 1024, chunks=[0])
        with pytest.raises(ValueError):
            autotune(DEFAULT_NETWORK, 4, 1024, live_trials=-1)

    def test_tune_with_profile_uses_profile_world_size(self):
        plan = tune_with_profile(_profile(world_size=4), 1024 * 1024)
        assert plan.world_size == 4


# ---------------------------------------------------------------------------
# two-tier fabrics: per-link-class profiles and topology-aware tuning
# ---------------------------------------------------------------------------
SLOW_INTER = LogGPParams(
    alpha=50e-6, beta=10e-9, gamma=1e-9, collective_overhead=20e-6
)


def _two_tier_profile(world_size=4):
    intra = LogGPParams()
    return _profile(
        world_size=world_size,
        backend="hier",
        link_params={"intra": intra, "inter": SLOW_INTER},
    )


class TestTwoTierProfiles:
    def test_link_accessor_and_two_tier_flag(self):
        flat = _profile()
        assert not flat.is_two_tier
        assert flat.link("intra") == flat.params  # fallback, no link table
        two = _two_tier_profile()
        assert two.is_two_tier
        assert two.link("inter") == SLOW_INTER
        with pytest.raises(ValueError, match="link class"):
            two.link("warp")

    def test_two_tier_json_round_trip(self, tmp_path):
        profile = _two_tier_profile()
        path = profile.save(profile_path(4, backend="hier", cache_dir=tmp_path))
        loaded = CalibratedProfile.load(path)
        assert loaded == profile
        assert loaded.link("inter") == SLOW_INTER
        assert loaded.is_two_tier

    def test_autotune_validates_ranks_per_host(self):
        with pytest.raises(ValueError, match="ranks_per_host"):
            autotune(DEFAULT_NETWORK, 4, 1024 * 1024, ranks_per_host=(3, 2))

    def test_plan_scores_hierarchical_model(self):
        plan = autotune(
            DEFAULT_NETWORK, 8, 2 * 1024 * 1024,
            ranks_per_host=(4, 4), inter_params=SLOW_INTER,
        )
        assert plan.ranks_per_host == (4, 4)
        assert plan.predicted_time == pytest.approx(
            predict_exchange_time(
                DEFAULT_NETWORK, 8, 2 * 1024 * 1024, "ring",
                plan.fusion_threshold_bytes, plan.pipeline_chunks,
                ranks_per_host=(4, 4), inter_params=SLOW_INTER,
            )
        )
        assert plan.speedup >= 1.0

    def test_slower_inter_link_costs_more(self):
        flat = predict_exchange_time(DEFAULT_NETWORK, 8, 4 * 1024 * 1024)
        hier_fast = predict_exchange_time(
            DEFAULT_NETWORK, 8, 4 * 1024 * 1024,
            ranks_per_host=(4, 4), inter_params=DEFAULT_NETWORK,
        )
        hier_slow = predict_exchange_time(
            DEFAULT_NETWORK, 8, 4 * 1024 * 1024,
            ranks_per_host=(4, 4), inter_params=SLOW_INTER,
        )
        assert hier_slow > hier_fast
        assert flat > 0 and hier_fast > 0

    def test_ranks_per_host_round_trips_in_plan(self):
        plan = autotune(
            DEFAULT_NETWORK, 4, 1024 * 1024,
            ranks_per_host=[3, 1], inter_params=SLOW_INTER,
        )
        restored = TunedPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored.ranks_per_host == (3, 1)
        flat_plan = autotune(DEFAULT_NETWORK, 4, 1024 * 1024)
        assert TunedPlan.from_dict(
            json.loads(json.dumps(flat_plan.to_dict()))
        ).ranks_per_host is None

    def test_tune_with_profile_threads_inter_link(self):
        plan = tune_with_profile(_two_tier_profile(), 1024 * 1024,
                                 ranks_per_host=(2, 2))
        assert plan.ranks_per_host == (2, 2)
        assert plan.predicted_time == pytest.approx(
            predict_exchange_time(
                _two_tier_profile().params, 4, 1024 * 1024, "ring",
                plan.fusion_threshold_bytes, plan.pipeline_chunks,
                ranks_per_host=(2, 2), inter_params=SLOW_INTER,
            )
        )


# ---------------------------------------------------------------------------
# "auto" resolution through config / runner / exchange
# ---------------------------------------------------------------------------
class TestAutoResolution:
    def test_config_accepts_auto_and_rejects_other_strings(self):
        TrainingConfig(fusion_threshold_bytes="auto", pipeline_chunks="auto").validate()
        with pytest.raises(ValueError):
            TrainingConfig(fusion_threshold_bytes="fast").validate()
        with pytest.raises(ValueError):
            TrainingConfig(pipeline_chunks="fast").validate()
        with pytest.raises(ValueError):
            TrainingConfig(fusion_threshold_bytes=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(pipeline_chunks=0).validate()

    def test_resolution_uses_cached_profile(self, tmp_path):
        _profile(world_size=2).save(profile_path(2, cache_dir=tmp_path))
        config = TrainingConfig(
            world_size=2,
            fusion_threshold_bytes="auto",
            pipeline_chunks="auto",
            allreduce_algorithm="ring",
            tuning_cache_dir=str(tmp_path),
        )
        config.validate()
        resolved = resolve_auto_fusion(config, num_parameters=1 << 16)
        assert isinstance(resolved.fusion_threshold_bytes, int)
        assert isinstance(resolved.pipeline_chunks, int)
        resolved.validate()
        # The original is untouched (the runner resolves a copy).
        assert config.fusion_threshold_bytes == "auto"

    def test_legacy_buckets_modelled_per_exchange_kind(self, tmp_path):
        """Regression: with legacy fixed-count bucketing, 'auto' chunks
        for a *partial* exchange must be tuned against the single bucket
        PartialExchange actually runs, not against fusion_buckets."""
        import importlib
        from unittest import mock

        # The package re-exports the autotune *function* under the same
        # name as the submodule; fetch the submodule explicitly.
        autotune_module = importlib.import_module("repro.tuning.autotune")

        _profile(world_size=2).save(profile_path(2, cache_dir=tmp_path))
        captured = {}
        real_autotune = autotune_module.autotune

        def spy(*args, **kwargs):
            captured.update(kwargs)
            return real_autotune(*args, **kwargs)

        base = dict(
            world_size=2,
            quorum=2,
            fusion_buckets=4,
            pipeline_chunks="auto",
            tuning_cache_dir=str(tmp_path),
        )
        num_parameters = 1 << 16
        gradient_bytes = num_parameters * 8
        with mock.patch.object(autotune_module, "autotune", side_effect=spy):
            resolve_auto_fusion(
                TrainingConfig(mode="quorum", **base), num_parameters=num_parameters
            )
            assert captured["thresholds"] == [gradient_bytes]  # one bucket
            resolve_auto_fusion(
                TrainingConfig(mode="sync", **base), num_parameters=num_parameters
            )
            assert captured["thresholds"] == [gradient_bytes // 4]

    def test_pinned_values_survive_partial_auto(self, tmp_path):
        _profile(world_size=2).save(profile_path(2, cache_dir=tmp_path))
        config = TrainingConfig(
            world_size=2,
            fusion_threshold_bytes=128 * 1024,
            pipeline_chunks="auto",
            tuning_cache_dir=str(tmp_path),
        )
        resolved = resolve_auto_fusion(config, num_parameters=1 << 16)
        assert resolved.fusion_threshold_bytes == 128 * 1024
        assert isinstance(resolved.pipeline_chunks, int)

    def test_world_of_one_resolves_to_inert_values(self):
        config = TrainingConfig(
            world_size=1, fusion_threshold_bytes="auto", pipeline_chunks="auto"
        )
        resolved = resolve_auto_fusion(config, num_parameters=64)
        assert resolved.fusion_threshold_bytes is None
        assert resolved.pipeline_chunks == 1

    def test_concrete_config_passes_through_unchanged(self):
        config = TrainingConfig(world_size=4, fusion_threshold_bytes=1024)
        assert resolve_auto_fusion(config, num_parameters=64) is config


class TestExchangeAcceptsPlan:
    def _plan(self, world_size=2, threshold=64, chunks=3):
        return TunedPlan(
            world_size=world_size,
            gradient_bytes=23 * 8,
            algorithm="ring",
            fusion_threshold_bytes=threshold,
            pipeline_chunks=chunks,
            predicted_time=1e-4,
            baseline_time=2e-4,
        )

    def test_synchronous_exchange_uses_plan(self):
        from repro.comm import ThreadWorld

        with ThreadWorld(2) as world:
            comm = world.communicator(0)
            exchange = SynchronousExchange(comm, algorithm="ring", plan=self._plan())
            assert exchange.fusion_threshold_bytes == 64
            assert exchange.pipeline_chunks == 3
            assert exchange._ensure_bucketer(23).num_buckets == 3

    def test_world_size_mismatch_rejected(self):
        from repro.comm import ThreadWorld

        with ThreadWorld(2) as world:
            comm = world.communicator(0)
            with pytest.raises(ValueError, match="world size"):
                SynchronousExchange(comm, plan=self._plan(world_size=4))

    def test_build_exchange_forwards_plan(self):
        from repro.comm import ThreadWorld

        with ThreadWorld(2) as world:
            comm = world.communicator(0)
            sync = build_exchange(comm, 64, "sync", plan=self._plan())
            assert isinstance(sync, SynchronousExchange)
            assert sync.fusion_threshold_bytes == 64
            assert sync.pipeline_chunks == 3

    def test_partial_exchange_uses_plan(self):
        from repro.comm import launch

        def worker(comm):
            from repro.training import PartialExchange

            exchange = PartialExchange(
                comm, num_parameters=23, mode="quorum", quorum=2, seed=3,
                plan=self._plan(),
            )
            buckets = exchange.bucketer.num_buckets
            chunks = [p.n_chunks for p in exchange.partials]
            result = exchange.exchange(np.full(23, comm.rank + 1.0))
            exchange.close()
            return buckets, chunks, float(result.gradient[0])

        for buckets, chunks, value in launch(worker, 2):
            assert buckets == 3
            assert chunks == [3, 3, 3]
            assert value == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# experiments harness
# ---------------------------------------------------------------------------
class TestTuneHarness:
    def test_run_and_report(self, tmp_path):
        from repro.experiments import autotune as harness

        result = harness.run(
            world_sizes=(2,), gradient_mb=1.0, quick=True, cache_dir=tmp_path
        )
        assert len(result.profiles) == 1 and len(result.plans) == 1
        assert result.plans[0].speedup >= 1.0
        text = harness.report(result)
        assert "calibrated LogGP parameters" in text
        assert "auto-tuned fusion recommendation" in text
        assert "model vs. measured allreduce latency" in text
        # The cached profile written by the harness must be readable.
        cached = load_profile(2, cache_dir=tmp_path)
        assert cached is not None
        assert predict_sample(cached.samples[-1], cached.params) > 0

    def test_run_validates_inputs(self, tmp_path):
        from repro.experiments import autotune as harness

        with pytest.raises(ValueError):
            harness.run(world_sizes=(), cache_dir=tmp_path)
        with pytest.raises(ValueError):
            harness.run(world_sizes=(1,), cache_dir=tmp_path)
        with pytest.raises(ValueError):
            harness.run(world_sizes=(2,), gradient_mb=0.0, cache_dir=tmp_path)


class TestCodecCostCalibration:
    """Live-measured codec transform costs in the cached tuning profile."""

    def test_measure_codec_costs_shape_and_sanity(self):
        from repro.tuning.calibration import measure_codec_costs

        costs = measure_codec_costs(nbytes=1 << 16, base_iterations=2)
        assert "none" not in costs  # identity codec is free by definition
        for name in ("fp16", "bf16", "int8", "topk"):
            assert name in costs
            for key in ("encode_seconds_per_byte", "decode_seconds_per_byte"):
                value = costs[name][key]
                # Per dense byte on any real machine: positive, far
                # below a microsecond (that would be < 1 MB/s).
                assert 0.0 < value < 1e-6, (name, key, value)

    def test_profile_roundtrips_codec_costs(self, tmp_path):
        costs = {
            "fp16": {
                "encode_seconds_per_byte": 3.25e-10,
                "decode_seconds_per_byte": 1.5e-10,
            }
        }
        profile = _profile(codec_costs=costs)
        path = profile.save(tmp_path / "thread-p2.json")
        loaded = CalibratedProfile.load(path)
        assert loaded.codec_costs == costs

    def test_compression_model_uses_measured_costs(self):
        from repro.compression import get_codec

        codec = get_codec("fp16")
        measured = {
            "fp16": {
                "encode_seconds_per_byte": 9.9e-9,
                "decode_seconds_per_byte": 8.8e-9,
            }
        }
        model = _profile(codec_costs=measured).compression_model(codec)
        assert model.encode_seconds_per_byte == 9.9e-9
        assert model.decode_seconds_per_byte == 8.8e-9
        assert model.name == "fp16"
        assert model.wire_scale == codec.cost_model().wire_scale

    def test_compression_model_falls_back_to_constants(self):
        from repro.compression import get_codec

        codec = get_codec("bf16")
        model = _profile(codec_costs={}).compression_model(codec)
        assert model.encode_seconds_per_byte == codec.encode_seconds_per_byte
        assert model.decode_seconds_per_byte == codec.decode_seconds_per_byte

    def test_calibrate_stores_costs_in_cache(self, tmp_path):
        from repro.tuning.calibration import calibrate, load_profile

        profile = calibrate(2, backend="thread", quick=True, cache_dir=tmp_path)
        assert profile.codec_costs and "fp16" in profile.codec_costs
        cached = load_profile(2, backend="thread", cache_dir=tmp_path)
        assert cached is not None
        assert cached.codec_costs == profile.codec_costs

    def test_tune_with_profile_threads_measured_costs(self):
        from repro.tuning.autotune import tune_with_profile

        # An absurd measured encode cost must dominate the tuned plan's
        # predicted time, proving the measured (not hardcoded) numbers
        # reach the grid search.
        slow = {
            "fp16": {
                "encode_seconds_per_byte": 1e-7,
                "decode_seconds_per_byte": 1e-7,
            }
        }
        fast = {
            "fp16": {
                "encode_seconds_per_byte": 1e-12,
                "decode_seconds_per_byte": 1e-12,
            }
        }
        plan_slow = tune_with_profile(
            _profile(codec_costs=slow), 1 << 20, compression="fp16"
        )
        plan_fast = tune_with_profile(
            _profile(codec_costs=fast), 1 << 20, compression="fp16"
        )
        assert plan_slow.predicted_time > plan_fast.predicted_time * 10
