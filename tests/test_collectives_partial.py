"""Tests for partial collectives: solo, majority and quorum allreduce."""

import time

import numpy as np
import pytest

from repro.comm import launch
from repro.collectives import (
    MajorityAllreduce,
    PartialMode,
    QuorumAllreduce,
    SoloAllreduce,
    make_partial_allreduce,
)
from repro.collectives.schedules import (
    COMPLETED,
    INTERNAL_ACTIVATION,
    RECV_BUFFER,
    SEND_BUFFER,
    build_solo_allreduce_schedule,
)
from repro.schedule import ScheduleExecutor


def _run_rounds(comm, mode, rounds, skew_ms=0.0, contribution_scale=1.0, **kwargs):
    """Each rank contributes `rank+1` per round, optionally skewed."""
    partial = make_partial_allreduce(comm, (4,), mode, seed=99, **kwargs)
    outputs = []
    for _ in range(rounds):
        if skew_ms:
            time.sleep(comm.rank * skew_ms / 1000.0)
        result = partial.reduce(np.full(4, (comm.rank + 1) * contribution_scale))
        outputs.append(result)
    partial.close()
    return outputs


class TestSoloAllreduce:
    def test_per_round_results_identical_across_ranks(self):
        # With exact per-round buffering (overwrite_recvbuff=False) every
        # rank must observe the same reduced value for the same round
        # (Lemma 5.1, safety property 3).  With the paper-faithful single
        # receive buffer a lagging rank may legitimately observe a later
        # round instead, which is covered by test_overwrite_semantics_flag.
        results = launch(_run_rounds, 4, "solo", 4, overwrite_recvbuff=False)
        for round_index in range(4):
            values = {tuple(results[r][round_index].data) for r in range(4)}
            assert len(values) == 1, "all ranks must see the same reduced value"

    def test_no_skew_includes_everyone_eventually(self):
        """Without skew, over all rounds the total contribution is conserved."""
        rounds = 6
        # Exact per-round buffering so one rank's view counts each round once.
        results = launch(_run_rounds, 4, "solo", rounds, overwrite_recvbuff=False)
        # Sum of the reduced (averaged) values over all rounds equals the
        # total contribution / P as long as no gradient is left behind...
        # the last rounds may leave stale gradients in the send buffers, so
        # the delivered total can only be less than or equal to the total
        # contributed, and must be positive.
        per_round = [results[0][t].data[0] for t in range(rounds)]
        total_contributed = sum(range(1, 5)) / 4 * rounds
        assert 0 < sum(per_round) <= total_contributed + 1e-9

    def test_fast_rank_initiates_and_slow_excluded(self):
        results = launch(_run_rounds, 4, "solo", 3, 25.0)
        # Rank 0 (fastest) should have its gradient included in every round.
        assert all(r.included for r in results[0])
        # The slowest rank misses at least one round under heavy skew.
        assert not all(r.included for r in results[3])
        # NAP stays well below the world size for the first round.
        assert results[0][0].num_active <= 2

    def test_stale_gradients_carried_to_later_rounds(self):
        """A slow rank's gradient is not lost: it arrives in a later round."""
        rounds = 5
        results = launch(_run_rounds, 2, "solo", rounds, 30.0, overwrite_recvbuff=False
        )
        # Contributions are never duplicated (delivered <= contributed) and
        # the fast rank's own gradients are always delivered; the slow
        # rank's gradients may still be pending in its send buffer when
        # training stops, which is exactly the staleness the paper trades
        # for wait-freedom.
        delivered = sum(results[0][t].data[0] * 2 for t in range(rounds))
        contributed = (1 + 2) * rounds
        assert delivered <= contributed + 1e-9
        assert delivered >= 1.0 * rounds - 1e-9  # rank 0 is always included
        # At least one round combined more than rank 0 alone or the slow
        # rank reported an inclusion: stale gradients do flow when the
        # slow rank catches up.
        slow_included = any(r.included for r in results[1])
        richer_round = any(results[0][t].data[0] * 2 > 1.0 + 1e-9 for t in range(rounds))
        assert slow_included or richer_round or delivered == pytest.approx(rounds)

    def test_single_rank_world(self):
        results = launch(_run_rounds, 1, "solo", 3)
        for r in results[0]:
            assert np.allclose(r.data, 1.0)
            assert r.included and r.num_active == 1


class TestMajorityAllreduce:
    def test_average_nap_at_least_half(self):
        rounds = 8
        results = launch(_run_rounds, 4, "majority", rounds, 5.0)
        naps = [results[0][t].num_active for t in range(rounds)]
        assert np.mean(naps) >= 2.0, f"expected majority participation, got {naps}"

    def test_initiator_varies_across_rounds(self):
        rounds = 12
        results = launch(_run_rounds, 4, "majority", rounds, 2.0)
        initiators = {results[0][t].initiator for t in range(rounds)}
        assert len(initiators) > 1

    def test_per_round_results_identical_across_ranks(self):
        results = launch(_run_rounds, 4, "majority", 3, 3.0, overwrite_recvbuff=False
        )
        for t in range(3):
            values = {tuple(results[r][t].data) for r in range(4)}
            assert len(values) == 1


class TestQuorumAllreduce:
    def test_quorum_is_met_every_round(self):
        rounds = 5
        results = launch(_run_rounds, 4, "quorum", rounds, 5.0, 1.0, quorum=3
        )
        for t in range(rounds):
            assert results[0][t].num_active >= 3

    def test_quorum_full_equals_synchronous_average(self):
        rounds = 3
        results = launch(_run_rounds, 4, "quorum", rounds, 2.0, 1.0, quorum=4)
        expected = sum(range(1, 5)) / 4.0
        for t in range(rounds):
            assert results[0][t].data[0] == pytest.approx(expected)
            assert results[0][t].num_active == 4

    def test_invalid_quorum_rejected(self):
        from repro.comm import ThreadWorld

        with ThreadWorld(2) as world:
            with pytest.raises(ValueError):
                QuorumAllreduce(world.communicator(0), (2,), quorum=5)

    def test_factory_requires_quorum(self):
        from repro.comm import ThreadWorld

        with ThreadWorld(2) as world:
            with pytest.raises(ValueError):
                make_partial_allreduce(world.communicator(0), 2, "quorum")


class TestSemantics:
    def test_shape_mismatch_rejected(self):
        def worker(comm):
            partial = SoloAllreduce(comm, (4,), seed=1)
            try:
                with pytest.raises(ValueError):
                    partial.reduce(np.ones(3))
                # Run one valid round so both ranks stay in lockstep.
                partial.reduce(np.ones(4))
            finally:
                partial.close()
            return True

        assert all(launch(worker, 2))

    def test_overwrite_semantics_flag(self):
        """With overwrite_recvbuff=False every rank sees its own round."""

        def worker(comm, overwrite):
            partial = SoloAllreduce(comm, (1,), seed=5, overwrite_recvbuff=overwrite)
            values = []
            for t in range(4):
                time.sleep(comm.rank * 0.02)
                values.append(float(partial.reduce(np.array([float(t + 1)])).data[0]))
            partial.close()
            return values

        exact = launch(worker, 2, False)
        # In exact mode both ranks report the same per-round sequence.
        assert exact[0] == pytest.approx(exact[1])

    def test_mode_enum(self):
        assert PartialMode("solo") is PartialMode.SOLO
        assert PartialMode("majority") is PartialMode.MAJORITY
        with pytest.raises(ValueError):
            PartialMode("bogus")

    def test_close_is_idempotent_and_context_manager(self):
        def worker(comm):
            with SoloAllreduce(comm, (2,), seed=3) as partial:
                partial.reduce(np.ones(2))
            partial.close()  # second close must not raise
            return True

        assert all(launch(worker, 2))


class TestScheduleBasedSoloAllreduce:
    """The schedule-DAG implementation of Fig. 6 (activation + reduction)."""

    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_any_initiator_produces_full_sum(self, size):
        def worker(comm, initiator):
            sched = build_solo_allreduce_schedule(comm.rank, comm.size, round_index=0)
            sched.set_buffer(SEND_BUFFER, np.full(3, comm.rank + 1.0))
            executor = ScheduleExecutor(comm.dup("activation"), sched)
            if comm.rank == initiator:
                sched.ops[INTERNAL_ACTIVATION].trigger()
            executor.run(until=[COMPLETED], timeout=30)
            executor.abandon_pending()
            return sched.get_buffer(RECV_BUFFER)

        for initiator in (0, size - 1):
            results = launch(worker, size, initiator)
            expected = sum(range(1, size + 1))
            for r in results:
                assert np.allclose(r, expected)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            build_solo_allreduce_schedule(0, 6, 0)
