"""Observability stack: flight recorder, metrics, Chrome trace, collection.

Covers the tentpole pieces end to end: ring overflow / drop accounting,
span nesting, the Chrome trace-event JSON schema round-trip, clock-offset
alignment across two real processes, and the cross-rank metrics merge
over the thread/process/shm transports.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.comm.backend import available_backends, launch
from repro.obs import recorder as rec_mod
from repro.obs.collect import (
    estimate_clock_offsets,
    gather_traces,
    telemetry_round_trip,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    merge_snapshots,
    straggler_attribution,
)
from repro.obs.recorder import FlightRecorder, bind, current
from repro.obs.trace import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

MERGE_BACKENDS = ["thread", "process", "shm"]


def _skip_if_unavailable(name):
    if name not in available_backends():
        from repro.comm.backend import backend_unavailable_reason

        pytest.skip(
            f"backend {name!r} unavailable: {backend_unavailable_reason(name)}"
        )


@pytest.fixture(autouse=True)
def _unbound_recorder():
    """Every test starts and ends with no recorder on the main thread."""
    bind(None)
    yield
    bind(None)


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_overflow_drops_oldest_and_counts(self):
        rec = FlightRecorder(rank=0, capacity=8)
        for i in range(20):
            rec.instant(f"ev{i}")
        assert len(rec) == 8
        assert rec.total_recorded == 20
        assert rec.dropped == 12
        names = [ev[1] for ev in rec.events()]
        # Oldest-first, and exactly the 8 newest survive.
        assert names == [f"ev{i}" for i in range(12, 20)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_span_nesting_timestamps_contained(self):
        rec = bind(FlightRecorder(rank=0))
        with rec_mod.span("outer", "test"):
            with rec_mod.span("inner", "test"):
                pass
        events = {ev[1]: ev for ev in rec.events()}
        assert set(events) == {"outer", "inner"}
        _, _, _, o_ts, o_dur, _, _ = events["outer"]
        _, _, _, i_ts, i_dur, _, _ = events["inner"]
        assert o_ts <= i_ts
        assert i_ts + i_dur <= o_ts + o_dur
        # The inner span exits first, so it lands in the ring first.
        assert [ev[1] for ev in rec.events()] == ["inner", "outer"]

    def test_module_helpers_are_noops_when_unbound(self):
        assert current() is None
        # No recorder: the shared null span is returned, nothing recorded.
        s1 = rec_mod.span("a")
        s2 = rec_mod.span("b")
        assert s1 is s2
        with s1:
            rec_mod.instant("nothing")
            rec_mod.counter("nothing", 1.0)

    def test_binding_is_thread_local(self):
        rec = bind(FlightRecorder(rank=3))
        seen = {}

        def worker():
            seen["other-thread"] = current()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["other-thread"] is None
        assert current() is rec

    def test_dump_round_trips_through_json(self):
        rec = FlightRecorder(rank=1, capacity=16)
        with rec.span("phase", "cat", nbytes=128):
            rec.instant("tick", "cat", round=2)
        rec.counter("depth", 3)
        dump = rec.dump()
        restored = json.loads(json.dumps(dump))
        assert restored["rank"] == 1
        assert restored["dropped"] == 0
        assert len(restored["events"]) == 3


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_rejects_negative_increment(self):
        c = Counter()
        c.inc(2.5)
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)
        assert c.value == 2.5

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_registry_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")
        assert reg.counter("x") is reg.counter("x")

    @pytest.mark.parametrize("p", [50, 99])
    def test_histogram_percentiles_within_1pct(self, p, rng):
        # Latency-shaped data: lognormal around a few milliseconds.
        sample = np.exp(rng.normal(np.log(3e-3), 0.8, size=20_000))
        hist = LogHistogram()
        hist.extend(sample)
        exact = float(np.percentile(sample, p))
        approx = hist.percentile(p)
        assert abs(approx - exact) / exact < 0.01
        assert hist.count == sample.size
        assert hist.mean == pytest.approx(float(sample.mean()))

    def test_histogram_rejects_bad_values(self):
        hist = LogHistogram()
        with pytest.raises(ValueError):
            hist.push(-1.0)
        with pytest.raises(ValueError):
            hist.push(float("nan"))
        with pytest.raises(ValueError, match="growth"):
            LogHistogram(growth=1.0)

    def test_histogram_merge_matches_pooled_percentiles(self, rng):
        a, b = LogHistogram(), LogHistogram()
        xs = np.exp(rng.normal(0.0, 1.0, size=8_000))
        ys = np.exp(rng.normal(1.0, 0.5, size=8_000))
        a.extend(xs)
        b.extend(ys)
        a.merge(b)
        pooled = np.concatenate([xs, ys])
        assert a.count == pooled.size
        for p in (50, 99):
            exact = float(np.percentile(pooled, p))
            assert abs(a.percentile(p) - exact) / exact < 0.01

    def test_merge_snapshots_across_ranks(self, rng):
        snaps = []
        pooled = []
        for rank in range(3):
            reg = MetricsRegistry()
            reg.counter("steps").inc(10 + rank)
            reg.gauge("num-active").set(rank)
            lat = rng.exponential(2e-3, size=1_000)
            reg.histogram("latency-s").extend(lat)
            pooled.append(lat)
            snaps.append(reg.snapshot())
        merged = merge_snapshots(snaps)
        assert merged["steps"]["value"] == 33
        assert merged["num-active"]["value"] == 2
        hist = merged["latency-s"]
        exact = float(np.percentile(np.concatenate(pooled), 50))
        assert abs(hist["p50"] - exact) / exact < 0.01
        assert hist["count"] == 3_000

    def test_merge_snapshots_type_conflict(self):
        with pytest.raises(TypeError, match="conflicting types"):
            merge_snapshots([
                {"x": {"type": "counter", "value": 1.0}},
                {"x": {"type": "gauge", "value": 1.0}},
            ])

    def test_straggler_attribution_shares_sum_to_one(self):
        steps = [
            [{"compute_s": 1.0, "wait_s": 0.5, "exchange_s": 0.7}] * 4,
            [{"compute_s": 2.0, "wait_s": 0.1, "exchange_s": 0.1}] * 4,
        ]
        report = straggler_attribution(steps)
        assert len(report) == 2
        for record in report:
            total = (
                record["compute_share"]
                + record["wait_share"]
                + record["wire_share"]
            )
            assert total == pytest.approx(1.0)
        # Rank 1 computes more and waits less than rank 0.
        assert report[1]["compute_share"] > report[0]["compute_share"]
        assert report[1]["wait_share"] < report[0]["wait_share"]

    def test_straggler_attribution_windows(self):
        steps = [[{"compute_s": 1.0, "wait_s": 0.0, "exchange_s": 0.0}] * 6]
        report = straggler_attribution(steps, window=2)
        assert [r["window"] for r in report] == [0, 1, 2]
        assert all(r["steps"] == 2 for r in report)


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------
def _recorded_rank(rank: int) -> dict:
    rec = FlightRecorder(rank=rank, capacity=64)
    with rec.span("compute", "step", step=0):
        pass
    rec.instant("partial-activation", "partial", round=1)
    rec.counter("queue-depth", 5, cat="serving")
    rec.flow_out(1234)
    rec.flow_in(1234)
    return rec.dump()


class TestChromeTrace:
    def test_schema_round_trip(self, tmp_path):
        dumps = [_recorded_rank(0), _recorded_rank(1)]
        trace = to_chrome_trace(dumps, clock_offsets_ns={0: 0, 1: -500})
        assert validate_chrome_trace(trace) == []
        path = tmp_path / "trace.json"
        write_chrome_trace(path, trace)
        restored = json.loads(path.read_text())
        events = restored["traceEvents"]
        assert {e["ph"] for e in events} >= {"X", "i", "C", "s", "f", "M"}
        assert sorted({e["pid"] for e in events if e["ph"] != "M"}) == [0, 1]
        assert all(e["ts"] >= 0 for e in events if e["ph"] != "M")
        assert restored["otherData"]["clock_offsets_ns"] == {"0": 0, "1": -500}

    def test_clock_offsets_shift_timestamps(self):
        dumps = [_recorded_rank(0), _recorded_rank(1)]
        base = to_chrome_trace(dumps)
        shifted = to_chrome_trace(dumps, clock_offsets_ns={0: 0, 1: 5_000_000})
        def first_x(trace, pid):
            return min(
                e["ts"] for e in trace["traceEvents"]
                if e["ph"] == "X" and e["pid"] == pid
            )
        # +5 ms on rank 1's clock moves its events 5000 us later relative
        # to rank 0's (modulo the common rebase to the earliest event).
        delta_base = first_x(base, 1) - first_x(base, 0)
        delta_shift = first_x(shifted, 1) - first_x(shifted, 0)
        assert delta_shift - delta_base == pytest.approx(5_000.0, abs=1.0)

    def test_validator_rejects_malformed_events(self):
        trace = to_chrome_trace([_recorded_rank(0)])
        trace["traceEvents"].append({"ph": "X", "pid": 0})  # no name/ts/dur
        errors = validate_chrome_trace(trace)
        assert errors

    def test_write_refuses_invalid_trace(self, tmp_path):
        with pytest.raises(ValueError):
            write_chrome_trace(
                tmp_path / "bad.json",
                {"traceEvents": [{"ph": "?"}], "otherData": {}},
            )

    def test_tag_regions_enriched_at_export(self):
        from repro.comm import tags

        rec = FlightRecorder(rank=0)
        rec._append(
            "X", "send", "comm", 0, 10,
            {"peer": 1, "tag": tags.barrier_tag(0, 0), "nbytes": 8},
        )
        trace = to_chrome_trace([rec.dump()])
        send = [e for e in trace["traceEvents"] if e.get("name") == "send"][0]
        assert send["args"]["region"] == "barrier"


# ---------------------------------------------------------------------------
# cross-rank collection over the fabric
# ---------------------------------------------------------------------------
class TestCollection:
    def test_clock_offsets_across_two_processes(self):
        _skip_if_unavailable("process")

        def fn(comm):
            return estimate_clock_offsets(comm, rounds=4)

        results = launch(fn, 2, backend="process", timeout=120.0)
        offsets = results[0]
        assert results[1] is None
        assert sorted(offsets) == [0, 1]
        assert offsets[0] == 0
        # Same host, same monotonic clock domain: the midpoint estimate
        # must land within a generous 50 ms even on a loaded CI box.
        assert abs(offsets[1]) < 50_000_000

    def test_round_trip_rejects_bad_rounds(self):
        from repro.comm import tags

        class _Comm:
            rank, size = 0, 2

        with pytest.raises(ValueError, match="rounds"):
            estimate_clock_offsets(_Comm(), rounds=0)
        with pytest.raises(ValueError, match="rounds"):
            estimate_clock_offsets(
                _Comm(), rounds=tags.TELEMETRY_SYNC_MAX_ROUNDS + 1
            )

    @pytest.mark.parametrize("backend", MERGE_BACKENDS)
    @pytest.mark.parametrize("size", [2, 4])
    def test_telemetry_round_trip(self, backend, size):
        _skip_if_unavailable(backend)
        results = launch(
            telemetry_round_trip, size, backend=backend, timeout=120.0
        )
        assert results[0] == size * (size + 1) // 2
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("backend", MERGE_BACKENDS)
    def test_metrics_merge_across_ranks(self, backend):
        _skip_if_unavailable(backend)
        size = 3

        def fn(comm):
            reg = MetricsRegistry()
            reg.counter("steps").inc(comm.rank + 1)
            reg.gauge("rank").set(comm.rank)
            reg.histogram("wait-s").extend([1e-3 * (comm.rank + 1)] * 10)
            collected = gather_traces(comm, reg.snapshot(), rounds=2)
            if collected is None:
                return None
            snapshots, offsets = collected
            assert sorted(offsets) == list(range(comm.size))
            return merge_snapshots(snapshots)

        results = launch(fn, size, backend=backend, timeout=120.0)
        merged = results[0]
        assert merged["steps"]["value"] == 6.0
        assert merged["rank"]["value"] == 2.0
        assert merged["wait-s"]["count"] == 30
        # Bucket midpoints of 1/2/3 ms: the median is the 2 ms bucket.
        assert merged["wait-s"]["p50"] == pytest.approx(2e-3, rel=0.01)


# ---------------------------------------------------------------------------
# the traced training run behind `python -m repro trace`
# ---------------------------------------------------------------------------
class TestTraceCommand:
    def test_traced_run_thread_backend(self, tmp_path):
        from repro.obs.tracecmd import TraceConfig, format_summary, run_trace

        out = tmp_path / "trace.json"
        summary = run_trace(
            TraceConfig(world_size=2, steps=3, fusion_buckets=2, capacity=4096),
            backend="thread",
            out=str(out),
        )
        trace = json.loads(out.read_text())
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        pids = sorted({e["pid"] for e in events if e["ph"] != "M"})
        assert pids == [0, 1]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"compute", "exchange", "update", "bucket-wait", "send", "recv"} <= names
        assert any(e["ph"] == "s" for e in events)
        assert any(e["ph"] == "f" for e in events)
        assert summary["metrics"]["steps"]["value"] == 6.0
        assert len(summary["straggler"]) == 2
        assert "trace report" in format_summary(summary)

    def test_trace_cli_entrypoint(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli-trace.json"
        code = main([
            "trace", "--backend", "thread", "--world-size", "2",
            "--steps", "2", "--out", str(out),
        ])
        assert code == 0
        assert "trace report" in capsys.readouterr().out
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_recorder_capacity_truncation_is_reported(self, tmp_path):
        from repro.obs.tracecmd import TraceConfig, run_trace

        out = tmp_path / "tiny.json"
        summary = run_trace(
            TraceConfig(world_size=2, steps=3, capacity=32),
            backend="thread",
            out=str(out),
        )
        # A 32-event ring cannot hold a 3-step traced run: the exporter
        # must surface the drop counts instead of silently truncating.
        assert sum(summary["dropped_events"].values()) > 0


# ---------------------------------------------------------------------------
# serving latency accounting rides the histogram
# ---------------------------------------------------------------------------
class TestServingHistogram:
    @pytest.mark.slow
    def test_serve_report_carries_histogram(self):
        from repro.serving import ServingConfig, Workload, serve

        report = serve(
            ServingConfig(replicas=1, train_ranks=0, comm_backend="thread"),
            Workload(num_requests=12, clients=2),
            timeout=120.0,
        )
        w = report.workload
        assert w["completed"] == 12
        hist = w["latency_histogram"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 12
        restored = LogHistogram.from_dict(hist)
        assert restored.percentile(50) == pytest.approx(
            w["latency_p50_s"], rel=1e-6
        )
        assert w["latency_p50_s"] <= w["latency_p99_s"]
        # The frontend's own accounting carries the histogram too.
        assert report.frontend["latency_histogram"]["count"] == 12
