"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.parameters import (
    assign_flat_parameters,
    flatten_gradients,
    flatten_parameters,
)


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: multi-process end-to-end tests (seconds, not milliseconds)"
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def numerical_gradient_check(
    model,
    inputs,
    targets,
    loss_fn,
    rng: np.random.Generator,
    num_checks: int = 6,
    eps: float = 1e-5,
    tol: float = 5e-4,
) -> float:
    """Compare analytic parameter gradients against finite differences.

    Returns the maximum relative error over the sampled coordinates and
    asserts it is below ``tol``.
    """
    outputs = model.forward(inputs)
    _, grad = loss_fn(outputs, targets)
    model.zero_grad()
    model.backward(grad)
    analytic = flatten_gradients(model)
    flat = flatten_parameters(model)
    indices = rng.choice(flat.size, size=min(num_checks, flat.size), replace=False)
    worst = 0.0
    for i in indices:
        original = flat[i]
        flat[i] = original + eps
        assign_flat_parameters(model, flat)
        loss_plus = loss_fn(model.forward(inputs), targets)[0]
        flat[i] = original - eps
        assign_flat_parameters(model, flat)
        loss_minus = loss_fn(model.forward(inputs), targets)[0]
        flat[i] = original
        assign_flat_parameters(model, flat)
        numeric = (loss_plus - loss_minus) / (2 * eps)
        denom = max(1e-8, abs(numeric) + abs(analytic[i]))
        worst = max(worst, abs(numeric - analytic[i]) / denom)
    assert worst < tol, f"gradient check failed: relative error {worst:.3e}"
    return worst
