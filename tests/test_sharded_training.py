"""ZeRO-1 sharded optimizer states: collectives, exchange, training parity.

Covers the sharded-exchange subsystem end to end:

* ``shard_bounds`` / ``GradientBucketer.shard_windows`` — the static
  ownership maps partition every vector exactly once, per schedule family;
* the windowed optimizer API — ``step_windows`` is bitwise identical to
  the dense ``step`` on the owned slices, and the state dicts round-trip;
* cross-backend conformance of ``reduce_scatter`` / ``allgather_flat``
  over every registered transport at power-of-two and prime world sizes;
* the headline parity property: training with ``sharding="zero1"`` is
  **bitwise identical** to the dense ring exchange + replicated optimizer
  (same seeds, fp64), while per-rank optimizer state shrinks ~P-fold.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.collectives.sharding import (
    ALLGATHER_FOR_REDUCE_SCATTER,
    allgather_flat,
    reduce_scatter,
    shard_bounds,
)
from repro.collectives.sync import allgather, allreduce
from repro.collectives.topology import HostTopology
from repro.comm import available_backends, backend_unavailable_reason, launch
from repro.nn.optim import SGD, Adam, MomentumSGD
from repro.nn.parameters import assign_flat_gradients, flatten_parameters
from repro.training.bucketing import GradientBucketer
from repro.training.exchange import ShardedExchange, build_exchange

BACKENDS = ["thread", "process", "shm", "tcp", "hier"]

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _skip_if_unavailable(name):
    if name not in available_backends():
        pytest.skip(
            f"backend {name!r} unavailable: {backend_unavailable_reason(name)}"
        )


@pytest.fixture(params=BACKENDS)
def backend(request):
    _skip_if_unavailable(request.param)
    return request.param


# ---------------------------------------------------------------------------
# static ownership maps
# ---------------------------------------------------------------------------
class TestShardBounds:
    @pytest.mark.parametrize("algorithm", ["ring", "halving"])
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
    @pytest.mark.parametrize("length", [0, 1, 7, 64, 1000])
    def test_partition(self, algorithm, size, length):
        bounds = shard_bounds(length, size, algorithm)
        assert len(bounds) == size
        covered = np.zeros(length, dtype=int)
        for lo, hi in bounds:
            assert 0 <= lo <= hi <= length
            covered[lo:hi] += 1
        assert np.all(covered == 1)

    def test_hierarchical_partition(self):
        for spec in ([2, 2], [3, 2], [4, 4], [2, 3, 3], [5]):
            topology = HostTopology.from_hosts(spec)
            size = sum(spec)
            for length in (1, 13, 64, 1000):
                bounds = shard_bounds(
                    length, size, "hierarchical", topology=topology
                )
                covered = np.zeros(length, dtype=int)
                for lo, hi in bounds:
                    covered[lo:hi] += 1
                assert np.all(covered == 1)

    def test_halving_extras_own_nothing(self):
        # Non-power-of-two: the folded-in extras hold no window.
        bounds = shard_bounds(100, 5, "halving")
        assert bounds[4] == (0, 0)
        assert sum(hi - lo for lo, hi in bounds) == 100

    def test_errors(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)
        with pytest.raises(ValueError):
            shard_bounds(-1, 4)
        with pytest.raises(ValueError):
            shard_bounds(10, 4, "nope")


class TestShardWindows:
    def test_windows_cover_each_bucket(self):
        bucketer = GradientBucketer.fixed_count(1000, 3)
        windows = bucketer.shard_windows(4)
        assert len(windows) == bucketer.num_buckets
        for b, bucket in enumerate(bucketer.buckets):
            covered = np.zeros(bucket.num_elements, dtype=int)
            for lo, hi in windows[b]:
                covered[lo:hi] += 1
            assert np.all(covered == 1)

    def test_matches_shard_bounds(self):
        bucketer = GradientBucketer.fixed_count(640, 2)
        windows = bucketer.shard_windows(4, "halving")
        for b, bucket in enumerate(bucketer.buckets):
            assert windows[b] == shard_bounds(bucket.num_elements, 4, "halving")

    def test_world_size_validation(self):
        bucketer = GradientBucketer.fixed_count(10, 1)
        with pytest.raises(ValueError):
            bucketer.shard_windows(0)


# ---------------------------------------------------------------------------
# windowed optimizer API + state dicts
# ---------------------------------------------------------------------------
def _make_model(seed=3):
    return nn.Sequential(nn.Dense(10, 6, seed=seed), nn.Dense(6, 3, seed=seed + 1))


def _optimizers(model):
    return [
        SGD(model, 0.05, weight_decay=0.01),
        MomentumSGD(model, 0.05, momentum=0.9, nesterov=True),
        Adam(model, 0.01),
    ]


class TestWindowedOptimizer:
    def test_step_windows_matches_dense_step(self):
        """Owned-window updates are bitwise identical to the dense step."""
        rng = np.random.default_rng(0)
        for make in (
            lambda m: SGD(m, 0.05, weight_decay=0.01),
            lambda m: MomentumSGD(m, 0.05, momentum=0.9, nesterov=True),
            lambda m: Adam(m, 0.01),
        ):
            dense_model, win_model = _make_model(), _make_model()
            dense_opt, win_opt = make(dense_model), make(win_model)
            n = flatten_parameters(dense_model).size
            flat_params = flatten_parameters(win_model)
            for _ in range(4):
                grad = rng.standard_normal(n)
                assign_flat_gradients(dense_model, grad)
                dense_opt.step()
                # Windowed path: update the whole vector as 3 windows.
                cuts = [0, n // 3, 2 * n // 3, n]
                params, grads, keys = [], [], []
                flat_params = flatten_parameters(win_model)
                for lo, hi in zip(cuts, cuts[1:]):
                    params.append(flat_params[lo:hi])
                    grads.append(grad[lo:hi])
                    keys.append(f"{lo}:{hi}")
                win_opt.step_windows(params, grads, keys)
                from repro.nn.parameters import assign_flat_parameters

                assign_flat_parameters(win_model, flat_params)
                assert np.array_equal(
                    flatten_parameters(dense_model), flatten_parameters(win_model)
                )
            assert dense_opt.step_count == win_opt.step_count == 4

    def test_empty_windows_still_advance_step_count(self):
        model = _make_model()
        opt = Adam(model, 0.01)
        opt.step_windows([], [], [])
        assert opt.step_count == 1

    def test_window_shape_mismatch_rejected(self):
        model = _make_model()
        opt = SGD(model, 0.05)
        with pytest.raises(ValueError):
            opt.step_windows([np.zeros(3)], [np.zeros(4)], ["0:3"])
        with pytest.raises(ValueError):
            opt.step_windows([np.zeros(3)], [np.zeros(3)], [])

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_state_dict_round_trip(self, index):
        """Save mid-run, restore into a fresh optimizer, trajectories match."""
        rng = np.random.default_rng(42)
        model_a, model_b = _make_model(), _make_model()
        opt_a = _optimizers(model_a)[index]
        n = flatten_parameters(model_a).size
        grads = [rng.standard_normal(n) for _ in range(6)]
        for g in grads[:3]:
            assign_flat_gradients(model_a, g)
            opt_a.step()
        state = opt_a.state_dict()

        # Restore into a fresh model/optimizer advanced to the same point.
        from repro.nn.parameters import assign_flat_parameters

        assign_flat_parameters(model_b, flatten_parameters(model_a))
        opt_b = _optimizers(model_b)[index]
        opt_b.load_state_dict(state)
        assert opt_b.step_count == opt_a.step_count
        for g in grads[3:]:
            assign_flat_gradients(model_a, g)
            opt_a.step()
            assign_flat_gradients(model_b, g)
            opt_b.step()
            assert np.array_equal(
                flatten_parameters(model_a), flatten_parameters(model_b)
            )

    def test_state_dict_covers_window_state(self):
        model = _make_model()
        opt = MomentumSGD(model, 0.05, momentum=0.9)
        n = flatten_parameters(model).size
        flat = flatten_parameters(model)
        opt.step_windows([flat[: n // 2]], [np.ones(n // 2)], [f"0:{n // 2}"])
        state = opt.state_dict()
        assert f"0:{n // 2}" in state["window_state"]
        fresh = MomentumSGD(model, 0.05, momentum=0.9)
        fresh.load_state_dict(state)
        assert np.array_equal(
            fresh.state_dict()["window_state"][f"0:{n // 2}"]["velocity"],
            state["window_state"][f"0:{n // 2}"]["velocity"],
        )

    def test_load_rejects_unknown_and_misshapen(self):
        model = _make_model()
        opt = MomentumSGD(model, 0.05, momentum=0.9)
        assign_flat_gradients(model, np.ones(flatten_parameters(model).size))
        opt.step()
        state = opt.state_dict()
        bad = {**state, "param_state": {"no-such-param": {}}}
        with pytest.raises(ValueError):
            opt.load_state_dict(bad)
        name = next(iter(state["param_state"]))
        misshapen = {
            **state,
            "param_state": {
                **state["param_state"],
                name: {"velocity": np.zeros(1)},
            },
        }
        with pytest.raises(ValueError):
            opt.load_state_dict(misshapen)

    def test_state_bytes_counts_slots(self):
        model = _make_model()
        n = flatten_parameters(model).size
        sgd, mom, adam = _optimizers(model)
        assign_flat_gradients(model, np.ones(n))
        for opt in (sgd, mom, adam):
            opt.step()
        assert sgd.state_bytes() == 0
        assert mom.state_bytes() == n * 8
        assert adam.state_bytes() == 2 * n * 8


# ---------------------------------------------------------------------------
# cross-backend conformance of the sharded collectives
# ---------------------------------------------------------------------------
def _conformance_worker(comm, n):
    # Integer-valued contributions: sums are exact in any reduction order,
    # so the expected vector is arrival-order independent.
    data = np.arange(n, dtype=np.float64) + 100.0 * comm.rank
    expected = np.add.reduce(
        [np.arange(n, dtype=np.float64) + 100.0 * r for r in range(comm.size)]
    )
    verdicts = {}
    for algorithm in ("ring", "halving"):
        flat, (lo, hi) = reduce_scatter(comm, data, algorithm=algorithm)
        window_ok = bool(np.array_equal(flat[lo:hi], expected[lo:hi]))
        full = allgather_flat(
            comm, flat, algorithm=ALLGATHER_FOR_REDUCE_SCATTER[algorithm]
        )
        verdicts[algorithm] = (window_ok, bool(np.array_equal(full, expected)))
    return verdicts


class TestCrossBackendConformance:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 8])
    def test_reduce_scatter_allgather(self, backend, size):
        results = launch(
            _conformance_worker, size, 67, backend=backend, timeout=120.0
        )
        for algorithm in ("ring", "halving"):
            assert all(r[algorithm][0] for r in results), algorithm
            assert all(r[algorithm][1] for r in results), algorithm


def _ring_identity_worker(comm, n):
    data = np.linspace(-1.0, 1.0, n) * (comm.rank + 1)
    reference = allreduce(comm, data, algorithm="ring")
    flat, _ = reduce_scatter(comm, data, algorithm="ring")
    composed = allgather_flat(comm, flat, algorithm="ring")
    return bool(np.array_equal(reference, composed))


class TestRingSplitIdentity:
    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    def test_split_phases_bitwise_match_ring_allreduce(self, size):
        """reduce_scatter + allgather IS the ring allreduce, bit for bit."""
        assert all(launch(_ring_identity_worker, size, 193, backend="thread"))


def _allgather_out_worker(comm, n):
    data = np.full(n, float(comm.rank))
    slots = [np.empty(n) for _ in range(comm.size)]
    returned = allgather(comm, data, out=slots)
    same_list = returned is slots
    values_ok = all(
        np.array_equal(slots[r], np.full(n, float(r))) for r in range(comm.size)
    )
    # Steady state: a second round reuses the same buffers in place.
    second = allgather(comm, data + 10.0, out=slots)
    reuse_ok = second is slots and all(
        np.array_equal(slots[r], np.full(n, float(r) + 10.0))
        for r in range(comm.size)
    )
    try:
        allgather(comm, data, out=slots[:-1])
        slot_count_checked = False
    except ValueError:
        slot_count_checked = True
    return same_list, values_ok, reuse_ok, slot_count_checked


class TestAllgatherOut:
    @pytest.mark.parametrize("size", [2, 4])
    def test_out_buffers_are_filled_and_reused(self, size):
        for verdict in launch(_allgather_out_worker, size, 17, backend="thread"):
            assert all(verdict)


# ---------------------------------------------------------------------------
# the sharded exchange
# ---------------------------------------------------------------------------
def _exchange_worker(comm, sharding, algorithm, opt_name, steps, fusion_buckets):
    model = _make_model(seed=9)
    opt = {
        "sgd": lambda: SGD(model, 0.05),
        "momentum": lambda: MomentumSGD(model, 0.05, momentum=0.9, nesterov=True),
        "adam": lambda: Adam(model, 0.01),
    }[opt_name]()
    n = flatten_parameters(model).size
    ex = build_exchange(
        comm, n, "sync", algorithm=algorithm, sharding=sharding,
        fusion_buckets=fusion_buckets,
    )
    rng = np.random.default_rng(1000 + comm.rank)
    wire = 0
    for _ in range(steps):
        grad = rng.standard_normal(n)
        if ex.updates_parameters:
            result = ex.exchange_update(grad, model, opt)
            assert result.gradient is None
        else:
            result = ex.exchange(grad)
            assign_flat_gradients(model, result.gradient)
            opt.step()
        wire += result.wire_bytes
    return flatten_parameters(model).copy(), opt.state_bytes(), opt.step_count, wire


class TestShardedExchange:
    @pytest.mark.parametrize("opt_name", ["sgd", "momentum", "adam"])
    @pytest.mark.parametrize("size", [2, 3, 4, 5])
    def test_zero1_bitwise_matches_dense_ring(self, opt_name, size):
        """Same seeds, fp64: zero1 and the dense ring path agree bit for bit."""
        dense = launch(
            _exchange_worker, size, "none", "ring", opt_name, 4, 2,
            backend="thread",
        )
        zero1 = launch(
            _exchange_worker, size, "zero1", "ring", opt_name, 4, 2,
            backend="thread",
        )
        for (dp, dstate, dcount, _), (zp, zstate, zcount, zwire) in zip(dense, zero1):
            assert np.array_equal(dp, zp)
            assert dcount == zcount == 4
            if dstate:
                # Optimizer state shrinks ~P-fold (slack for uneven shards).
                assert zstate <= dstate // size + 2 * size * 8
            assert zwire > 0

    def test_zero1_state_is_sharded_across_ranks(self):
        zero1 = launch(
            _exchange_worker, 4, "zero1", "ring", "adam", 2, 1, backend="thread"
        )
        dense = launch(
            _exchange_worker, 4, "none", "ring", "adam", 2, 1, backend="thread"
        )
        total_sharded = sum(state for _, state, _, _ in zero1)
        assert total_sharded == dense[0][1]  # shards tile the dense state

    @pytest.mark.parametrize("algorithm", ["rabenseifner", "hierarchical"])
    def test_zero1_other_algorithms_allclose(self, algorithm):
        dense = launch(
            _exchange_worker, 4, "none", "ring", "momentum", 3, 2,
            backend="thread",
        )
        zero1 = launch(
            _exchange_worker, 4, "zero1", algorithm, "momentum", 3, 2,
            backend="thread",
        )
        for (dp, *_), (zp, *_) in zip(dense, zero1):
            assert np.allclose(dp, zp, rtol=1e-12, atol=1e-12)

    def test_exchange_method_is_refused(self):
        def worker(comm):
            ex = ShardedExchange(comm)
            with pytest.raises(RuntimeError):
                ex.exchange(np.ones(8))
            return True

        assert all(launch(worker, 2, backend="thread"))

    def test_codec_must_be_reduce_closed(self):
        def worker(comm):
            with pytest.raises(ValueError):
                ShardedExchange(comm, compression="topk")
            with pytest.raises(ValueError):
                ShardedExchange(comm, algorithm="halving", compression="fp16")
            ShardedExchange(comm, compression="fp16")  # ring + fp16 is fine
            return True

        assert all(launch(worker, 2, backend="thread"))

    def test_build_exchange_validation(self):
        def worker(comm):
            with pytest.raises(ValueError):
                build_exchange(comm, 8, "sync", sharding="zero9")
            with pytest.raises(ValueError):
                build_exchange(comm, 8, "solo", sharding="zero1")
            ex = build_exchange(comm, 8, "sync", sharding="zero1")
            assert isinstance(ex, ShardedExchange)
            assert ex.updates_parameters
            return True

        assert all(launch(worker, 2, backend="thread"))

    def test_single_rank_falls_back(self):
        ex = build_exchange(None, 8, "sync", sharding="zero1")
        assert not ex.updates_parameters


# ---------------------------------------------------------------------------
# training-level parity (runner + config)
# ---------------------------------------------------------------------------
class TestTrainingParity:
    def _run(self, sharding, algorithm):
        from repro.data import cifar10_like
        from repro.nn.losses import SoftmaxCrossEntropyLoss
        from repro.nn.models import MLPClassifier
        from repro.training import TrainingConfig, train_distributed

        train, _ = cifar10_like(
            num_examples=128, image_size=4, signal=4.0, seed=0
        ).split(0.25, seed=0)
        config = TrainingConfig(
            world_size=4,
            epochs=1,
            global_batch_size=32,
            mode="sync",
            allreduce_algorithm=algorithm,
            sharding=sharding,
            learning_rate=0.1,
            optimizer="momentum",
            seed=0,
            model_sync_period_epochs=None,
        )
        return train_distributed(
            lambda: MLPClassifier(3 * 4 * 4, (16,), 10, seed=11),
            train,
            SoftmaxCrossEntropyLoss(),
            config,
        )

    def test_zero1_training_bitwise_matches_dense(self):
        dense = self._run("none", "ring")
        zero1 = self._run("zero1", "ring")
        dense_hashes = {s.final_model_hash for s in dense.rank_summaries}
        zero1_hashes = {s.final_model_hash for s in zero1.rank_summaries}
        assert len(dense_hashes) == len(zero1_hashes) == 1
        assert dense_hashes == zero1_hashes

    def test_config_validation(self):
        from repro.training import TrainingConfig

        with pytest.raises(ValueError):
            TrainingConfig(sharding="zero3").validate()
        with pytest.raises(ValueError):
            TrainingConfig(sharding="zero1", mode="solo").validate()
        with pytest.raises(ValueError):
            TrainingConfig(
                sharding="zero1", collect_gradient_norms=True
            ).validate()
        config = TrainingConfig(sharding="zero1")
        config.validate()
        assert "zero1" in config.describe()
