"""Tests of the gradient-compression subsystem (:mod:`repro.compression`).

Covers the codec registry, per-codec round-trip properties (exactness
for lossless paths, bounded error and residual accounting for lossy
ones), error feedback, the exchange integration on the thread backend,
the simtime cost-model terms, the per-codec autotuner and the
``TrainingConfig`` plumbing.
"""

import numpy as np
import pytest

from repro.compression import (
    BucketCompressor,
    EncodedGradient,
    GradientCodec,
    available_codecs,
    get_codec,
    parse_codec_spec,
)
from repro.simtime.collective_model import (
    NO_COMPRESSION,
    CompressionModel,
    allreduce_time,
    fused_exchange_time,
    solo_allreduce_latencies,
    synchronous_allreduce_latencies,
)
from repro.simtime.network import DEFAULT_NETWORK
from repro.training.config import TrainingConfig

ALL_CODECS = ["none", "fp16", "bf16", "int8", "topk"]
LOSSY_CODECS = ["fp16", "bf16", "int8", "topk"]


def _gradient(n=4096, seed=0, scale=1.0):
    return scale * np.random.default_rng(seed).standard_normal(n)


# ---------------------------------------------------------------------------
# registry and spec parsing
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_CODECS) <= set(available_codecs())

    def test_unknown_codec_raises(self):
        with pytest.raises(ValueError, match="unknown compression codec"):
            get_codec("gzip")

    def test_none_resolves_to_none_codec(self):
        assert get_codec(None).name == "none"
        assert get_codec("none").name == "none"

    def test_instances_are_fresh(self):
        # Codecs carry per-use configuration, so resolution must not
        # return shared singletons (unlike comm backends).
        assert get_codec("topk") is not get_codec("topk")

    def test_codec_instance_passthrough(self):
        codec = get_codec("fp16")
        assert get_codec(codec) is codec
        with pytest.raises(ValueError, match="options"):
            get_codec(codec, error_feedback=True)

    def test_spec_parsing(self):
        assert parse_codec_spec("fp16") == ("fp16", {})
        name, options = parse_codec_spec("topk:ratio=0.05,error_feedback=off")
        assert name == "topk"
        assert options == {"ratio": 0.05, "error_feedback": False}
        assert parse_codec_spec("topk:k=32")[1] == {"k": 32}

    def test_malformed_spec_raises(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_codec_spec("topk:ratio")
        with pytest.raises(ValueError, match="non-empty"):
            parse_codec_spec("")

    def test_keyword_options_override_inline(self):
        codec = get_codec("topk:ratio=0.5", ratio=0.25)
        assert codec.ratio == 0.25

    def test_unknown_options_rejected(self):
        with pytest.raises(ValueError, match="options"):
            get_codec("fp16:volume=11")

    def test_invalid_topk_options(self):
        with pytest.raises(ValueError, match="ratio"):
            get_codec("topk", ratio=0.0)
        with pytest.raises(ValueError, match="ratio"):
            get_codec("topk", ratio=1.5)
        with pytest.raises(ValueError, match="k must be"):
            get_codec("topk", k=0)

    def test_lossless_error_feedback_rejected(self):
        with pytest.raises(ValueError, match="lossless"):
            get_codec("none", error_feedback=True)

    def test_describe_mentions_configuration(self):
        assert "ratio=0.05" in get_codec("topk:ratio=0.05").describe()
        assert "fp16" in get_codec("fp16").describe()


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------
class TestRoundTrips:
    @pytest.mark.parametrize("seed", range(5))
    def test_none_is_bit_exact(self, seed):
        codec = get_codec("none")
        x = _gradient(seed=seed)
        out = codec.decode(codec.encode(x))
        assert np.array_equal(out, x)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("scale", [1e-3, 1.0, 100.0])
    def test_fp16_relative_error_bound(self, seed, scale):
        codec = get_codec("fp16")
        x = _gradient(seed=seed, scale=scale)
        out = codec.decode(codec.encode(x))
        # binary16: 10-bit mantissa -> one-ulp relative error bound of
        # 2^-10, plus one subnormal ulp (2^-24) of absolute slack for
        # values that flush below the normal range.
        assert np.all(np.abs(out - x) <= np.abs(x) * 2.0 ** -10 + 2.0 ** -24)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("scale", [1e-3, 1.0, 1e6])
    def test_bf16_relative_error_bound(self, seed, scale):
        codec = get_codec("bf16")
        x = _gradient(seed=seed, scale=scale)
        out = codec.decode(codec.encode(x))
        # bfloat16: 8-bit mantissa -> one-ulp bound of 2^-8 (the encode
        # double-rounds through float32, so the half-ulp bound of a
        # single rounding does not apply).
        assert np.all(np.abs(out - x) <= np.abs(x) * 2.0 ** -8 + 1e-300)

    def test_bf16_survives_fp16_overflow_range(self):
        codec = get_codec("bf16")
        x = np.array([1e5, -7e4, 1e30])
        out = codec.decode(codec.encode(x))
        assert np.all(np.isfinite(out))
        assert np.all(np.abs(out - x) <= np.abs(x) * 2.0 ** -8)

    @pytest.mark.parametrize("seed", range(5))
    def test_int8_absolute_error_bound(self, seed):
        codec = get_codec("int8")
        x = _gradient(seed=seed)
        encoded = codec.encode(x)
        codes, scale = codec.split_payload(encoded.payload)
        assert codes.dtype == np.int8
        assert scale == pytest.approx(np.max(np.abs(x)) / 127.0)
        out = codec.decode(encoded)
        assert np.all(np.abs(out - x) <= scale / 2 + 1e-12)

    def test_int8_all_zero_bucket(self):
        codec = get_codec("int8")
        out = codec.decode(codec.encode(np.zeros(16)))
        assert np.array_equal(out, np.zeros(16))

    def test_topk_keeps_largest_magnitudes(self):
        codec = get_codec("topk", k=3, error_feedback=False)
        x = np.array([0.1, -5.0, 0.2, 3.0, -0.3, 4.0])
        out = codec.decode(codec.encode(x))
        expected = np.array([0.0, -5.0, 0.0, 3.0, 0.0, 4.0])
        assert np.array_equal(out, expected)

    def test_topk_ratio_keeps_ceil_fraction(self):
        codec = get_codec("topk", ratio=0.01, error_feedback=False)
        encoded = codec.encode(_gradient(1000))
        idx, values = codec.split_payload(encoded.payload, encoded.num_elements)
        assert len(idx) == 10
        assert idx.dtype == np.int32 and values.dtype == np.float32
        assert encoded.nbytes == 10 * (4 + 4)

    def test_topk_full_ratio_is_exact_in_float32(self):
        codec = get_codec("topk", ratio=1.0, error_feedback=False)
        x = np.arange(1.0, 9.0)
        assert np.array_equal(codec.decode(codec.encode(x)), x)

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_wire_bytes_matches_encoded_size(self, name):
        codec = get_codec(name)
        x = _gradient(2048)
        assert codec.encode(x).nbytes == codec.wire_bytes(x.size)

    @pytest.mark.parametrize("name", LOSSY_CODECS)
    def test_lossy_codecs_shrink_the_wire(self, name):
        codec = get_codec(name)
        assert codec.wire_bytes_per_element < 8.0

    def test_empty_bucket_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            get_codec("fp16").encode(np.array([]))

    def test_cross_codec_payload_rejected(self):
        fp16 = get_codec("fp16")
        encoded = fp16.encode(_gradient(8))
        with pytest.raises(ValueError, match="encoded by"):
            get_codec("bf16").decode(encoded)


# ---------------------------------------------------------------------------
# error feedback
# ---------------------------------------------------------------------------
class TestErrorFeedback:
    @pytest.mark.parametrize("spec", ["topk:ratio=0.1", "int8:error_feedback=on"])
    def test_residual_accounting_is_exact(self, spec):
        """decode(encode(c)) + residual == compensated gradient, exactly."""
        codec = get_codec(spec)
        assert codec.error_feedback
        compressor = BucketCompressor(codec)
        x = _gradient(512, seed=1)
        encoded = compressor.encode_bucket(0, x)
        decoded = compressor.decode_bucket(encoded)
        np.testing.assert_allclose(
            decoded + compressor._residuals[0], x, rtol=0, atol=1e-12
        )

    def test_residual_reinjected_next_step(self):
        codec = get_codec("topk", ratio=0.25)
        compressor = BucketCompressor(codec)
        x = _gradient(64, seed=2)
        first = compressor.decode_bucket(compressor.encode_bucket(0, x))
        carried = x - first
        second_encoded = compressor.encode_bucket(0, x)
        second = compressor.decode_bucket(second_encoded)
        np.testing.assert_allclose(
            second + compressor._residuals[0], x + carried, rtol=0, atol=1e-12
        )

    def test_no_mass_lost_over_many_steps(self):
        """Sum of decoded contributions + final residual == sum of inputs."""
        codec = get_codec("topk", ratio=0.05)
        compressor = BucketCompressor(codec)
        total_in = np.zeros(256)
        total_out = np.zeros(256)
        for step in range(20):
            x = _gradient(256, seed=step)
            total_in += x
            total_out += compressor.decode_bucket(compressor.encode_bucket(0, x))
        np.testing.assert_allclose(
            total_out + compressor._residuals[0], total_in, rtol=0, atol=1e-9
        )

    def test_residuals_are_per_bucket(self):
        codec = get_codec("topk", ratio=0.1)
        compressor = BucketCompressor(codec)
        compressor.encode_bucket(0, _gradient(64, seed=3))
        compressor.encode_bucket(1, _gradient(64, seed=4))
        assert set(compressor._residuals) == {0, 1}
        assert compressor.residual_norm() > 0

    def test_disabled_error_feedback_keeps_no_state(self):
        compressor = BucketCompressor(get_codec("fp16"))
        compressor.encode_bucket(0, _gradient(64))
        assert compressor._residuals == {}
        assert compressor.residual_norm() == 0.0

    def test_bytes_encoded_accumulates(self):
        compressor = BucketCompressor(get_codec("fp16"))
        compressor.encode_bucket(0, _gradient(64))
        compressor.encode_bucket(1, _gradient(64))
        assert compressor.bytes_encoded == 2 * 64 * 2


# ---------------------------------------------------------------------------
# exchange integration (thread backend)
# ---------------------------------------------------------------------------
class TestExchangeIntegration:
    @pytest.mark.parametrize("codec", ALL_CODECS)
    def test_sync_exchange_averages_correctly(self, codec):
        from repro.comm import launch
        from repro.training.exchange import SynchronousExchange

        spec = "topk:ratio=1.0" if codec == "topk" else codec

        def worker(comm):
            exchange = SynchronousExchange(
                comm,
                algorithm="ring",
                fusion_threshold_bytes=4 * 1024,
                compression=spec,
            )
            # Constant buckets: every codec here is exact on constants.
            result = exchange.exchange(np.full(4096, comm.rank + 1.0))
            return float(np.max(np.abs(result.gradient - 2.5))), result.wire_bytes

        for err, wire in launch(worker, 4):
            assert err < 1e-9
            assert wire > 0

    def test_sync_exchange_wire_bytes_accounting(self):
        from repro.comm import launch
        from repro.training.exchange import SynchronousExchange

        def worker(comm, spec):
            exchange = SynchronousExchange(comm, compression=spec)
            result = exchange.exchange(np.ones(1024))
            return result.wire_bytes

        assert launch(worker, 2, None) == [1024 * 8] * 2
        assert launch(worker, 2, "fp16") == [1024 * 2] * 2
        assert launch(worker, 2, "int8") == [1024 + 8] * 2

    def test_compressed_threshold_budgets_encoded_bytes(self):
        from repro.comm import launch
        from repro.training.exchange import SynchronousExchange

        def worker(comm, spec):
            exchange = SynchronousExchange(
                comm, fusion_threshold_bytes=8 * 1024, compression=spec
            )
            result = exchange.exchange(np.ones(4096))
            return len(result.bucket_waits)

        # Dense: 4096 * 8 B / 8 KiB = 4 buckets; fp16 packs 4x more
        # elements per wire buffer.
        assert launch(worker, 2, None) == [4, 4]
        assert launch(worker, 2, "fp16") == [1, 1]

    def test_sync_exchange_error_feedback_catches_up(self):
        """With EF, repeated top-k exchanges recover the full mean."""
        from repro.comm import launch
        from repro.training.exchange import SynchronousExchange

        def worker(comm):
            exchange = SynchronousExchange(
                comm, compression="topk:ratio=0.25"
            )
            rng = np.random.default_rng(7)  # same gradient on every rank
            x = rng.standard_normal(64)
            total = np.zeros(64)
            for _ in range(40):
                total += exchange.exchange(x).gradient
            # Sum of decoded averages approaches 40 * x (all ranks equal).
            return float(np.max(np.abs(total - 40 * x)))

        for drift in launch(worker, 2):
            # Without error feedback the dropped 75% of coordinates would
            # leave a drift of ~40 * |x| ~ 40; with EF only the last few
            # steps' residuals are outstanding.
            assert drift < 5.0

    @pytest.mark.parametrize("codec", ["fp16", "topk:ratio=1.0"])
    def test_partial_exchange_with_compression(self, codec):
        from repro.comm import launch
        from repro.training.exchange import PartialExchange

        def worker(comm):
            exchange = PartialExchange(comm, 512, mode="solo", compression=codec)
            values = []
            for _ in range(3):
                result = exchange.exchange(np.ones(512))
                values.append(float(result.gradient[0]))
            exchange.close()
            # Stale accumulation semantics: each round's average is a
            # multiple of 1/P of some number of accumulated rounds.
            return all(0.0 <= v <= 3.0 + 1e-6 for v in values)

        assert all(launch(worker, 4, timeout=120))

    def test_compressed_ring_survives_tiny_buckets(self):
        """Buckets smaller than the world leave some ranks empty chunks."""
        from repro.comm import launch
        from repro.training.exchange import SynchronousExchange

        def worker(comm):
            exchange = SynchronousExchange(comm, compression="fp16")
            result = exchange.exchange(np.full(2, comm.rank + 1.0))
            return float(np.max(np.abs(result.gradient - 2.5)))

        assert max(launch(worker, 4, timeout=60)) < 1e-9

    def test_reduce_closed_model_pins_the_ring_schedule(self):
        """The cost model scores what the exchange runs: the compressed
        ring, whatever allreduce algorithm the caller configured."""
        model = CompressionModel(name="fp16", wire_scale=0.25)
        nbytes = 4 << 20
        times = {
            algo: allreduce_time(nbytes, 8, algo, compression=model)
            for algo in ("ring", "recursive_doubling", "rabenseifner")
        }
        assert times["ring"] == times["recursive_doubling"] == times["rabenseifner"]

    def test_build_exchange_threads_compression(self):
        from repro.comm import launch
        from repro.training.exchange import build_exchange

        def worker(comm):
            exchange = build_exchange(
                comm, 256, "sync", compression="fp16"
            )
            return exchange.codec.name

        assert launch(worker, 2) == ["fp16", "fp16"]

    def test_horovod_negotiated_order_with_compression(self):
        from repro.comm import launch
        from repro.training.exchange import SynchronousExchange

        def worker(comm):
            exchange = SynchronousExchange(
                comm,
                style="horovod",
                fusion_threshold_bytes=2 * 1024,
                compression="int8",
            )
            result = exchange.exchange(np.full(2048, comm.rank + 1.0))
            return float(np.max(np.abs(result.gradient - 1.5)))

        assert max(launch(worker, 2)) < 1e-9


# ---------------------------------------------------------------------------
# simtime cost model
# ---------------------------------------------------------------------------
class TestCompressionModel:
    def test_codec_cost_model_conversion(self):
        model = get_codec("fp16").cost_model()
        assert model.name == "fp16"
        assert model.wire_scale == pytest.approx(0.25)
        assert model.reduce_closed
        sparse = get_codec("topk:ratio=0.01").cost_model()
        assert sparse.wire_scale == pytest.approx(0.01, rel=0.05)
        assert not sparse.reduce_closed

    def test_validation(self):
        with pytest.raises(ValueError, match="wire_scale"):
            CompressionModel(wire_scale=0.0)
        with pytest.raises(ValueError, match="wire_scale"):
            CompressionModel(wire_scale=float("inf"))
        with pytest.raises(ValueError, match="encode_seconds_per_byte"):
            CompressionModel(encode_seconds_per_byte=-1.0)

    def test_identity_model_matches_no_compression(self):
        nbytes = 1 << 20
        base = allreduce_time(nbytes, 8, "ring")
        assert allreduce_time(nbytes, 8, "ring", compression=NO_COMPRESSION) == base
        assert NO_COMPRESSION.is_identity

    def test_reduce_closed_scales_wire_bytes(self):
        nbytes = 4 << 20
        model = CompressionModel(name="fp16", wire_scale=0.25)
        compressed = allreduce_time(nbytes, 8, "ring", compression=model)
        quarter = allreduce_time(nbytes // 4, 8, "ring")
        assert compressed == pytest.approx(quarter)

    def test_transform_overhead_is_charged(self):
        nbytes = 4 << 20
        free = CompressionModel(name="fp16", wire_scale=0.25)
        costly = CompressionModel(
            name="fp16", wire_scale=0.25,
            encode_seconds_per_byte=1e-9, decode_seconds_per_byte=1e-9,
        )
        delta = allreduce_time(nbytes, 8, "ring", compression=costly) - allreduce_time(
            nbytes, 8, "ring", compression=free
        )
        assert delta == pytest.approx(2e-9 * nbytes)

    def test_non_reduce_closed_uses_gather_model(self):
        nbytes = 1 << 20
        model = CompressionModel(name="topk", wire_scale=0.01, reduce_closed=False)
        params = DEFAULT_NETWORK
        expected = (
            params.collective_overhead
            + 7 * (params.alpha + nbytes * 0.01 * params.beta)
            + 7 * nbytes * params.gamma
        )
        assert allreduce_time(nbytes, 8, "ring", compression=model) == pytest.approx(
            expected
        )

    def test_fused_exchange_time_with_compression(self):
        buckets = [1 << 20] * 4
        model = CompressionModel(name="fp16", wire_scale=0.25)
        compressed = fused_exchange_time(buckets, 8, "ring", compression=model)
        scaled = fused_exchange_time([b * 0.25 for b in buckets], 8, "ring")
        assert compressed == pytest.approx(scaled)
        sparse = CompressionModel(name="topk", wire_scale=0.01, reduce_closed=False)
        assert fused_exchange_time(buckets, 8, "ring", compression=sparse) > 0

    def test_latency_functions_accept_compression(self):
        arrivals = [0.0, 0.001, 0.002, 0.003]
        model = CompressionModel(name="fp16", wire_scale=0.25)
        nbytes = 4 << 20
        sync_dense = synchronous_allreduce_latencies(arrivals, nbytes)
        sync_fp16 = synchronous_allreduce_latencies(arrivals, nbytes, compression=model)
        assert sync_fp16.completion_time < sync_dense.completion_time
        solo = solo_allreduce_latencies(arrivals, nbytes, compression=model)
        assert solo.completion_time < sync_fp16.completion_time


# ---------------------------------------------------------------------------
# autotuner
# ---------------------------------------------------------------------------
class TestAutotuneWithCompression:
    def test_plan_records_codec(self):
        from repro.tuning.autotune import autotune

        plan = autotune(DEFAULT_NETWORK, 8, 4 << 20, compression="fp16")
        assert plan.compression == "fp16"
        assert plan.speedup >= 1.0  # baseline under the same codec

    def test_plan_defaults_to_uncompressed(self):
        from repro.tuning.autotune import autotune

        plan = autotune(DEFAULT_NETWORK, 8, 4 << 20)
        assert plan.compression == "none"

    def test_plan_roundtrips_through_dict(self):
        from repro.tuning.autotune import TunedPlan, autotune

        plan = autotune(DEFAULT_NETWORK, 4, 1 << 20, compression="topk:ratio=0.1")
        clone = TunedPlan.from_dict(plan.to_dict())
        assert clone.compression == "topk"
        assert clone.fusion_threshold_bytes == plan.fusion_threshold_bytes
        # The codec's wire scale survives serialisation, so the encoded
        # bucket count does not silently fall back to the dense one.
        assert clone.num_buckets == plan.num_buckets

    def test_sparse_codec_collapses_buckets(self):
        from repro.tuning.autotune import plan_bucket_bytes

        model = CompressionModel(name="topk", wire_scale=0.01, reduce_closed=False)
        dense = plan_bucket_bytes(4 << 20, 64 * 1024)
        sparse = plan_bucket_bytes(4 << 20, 64 * 1024, model)
        assert len(sparse) < len(dense)


# ---------------------------------------------------------------------------
# TrainingConfig plumbing
# ---------------------------------------------------------------------------
class TestConfigPlumbing:
    def test_validate_accepts_codecs(self):
        for spec in (None, "none", "fp16", "topk:ratio=0.05"):
            TrainingConfig(compression=spec).validate()

    def test_validate_rejects_unknown_codec(self):
        with pytest.raises(ValueError, match="unknown compression codec"):
            TrainingConfig(compression="gzip").validate()

    def test_validate_rejects_bad_options(self):
        with pytest.raises(ValueError, match="ratio"):
            TrainingConfig(
                compression="topk", compression_options={"ratio": 2.0}
            ).validate()

    def test_describe_mentions_codec(self):
        config = TrainingConfig(compression="fp16")
        assert "compression=fp16" in config.describe()
        assert "compression" not in TrainingConfig().describe()

    def test_train_distributed_with_compression(self):
        from repro.data.hyperplane import HyperplaneDataset
        from repro.nn.losses import MSELoss
        from repro.nn.models import HyperplaneMLP
        from repro.training.runner import train_distributed

        dataset = HyperplaneDataset(num_examples=64, input_dim=8, seed=0)

        def model_factory():
            return HyperplaneMLP(input_dim=8, seed=1)

        config = TrainingConfig(
            world_size=2,
            epochs=1,
            global_batch_size=16,
            mode="sync",
            compression="fp16",
            model_sync_period_epochs=None,
        )
        result = train_distributed(
            model_factory, dataset, MSELoss(), config, classification=False
        )
        assert len(result.epochs) == 1
        assert np.isfinite(result.epochs[-1].train_loss)

    def test_runner_projection_scales_wire_bytes(self):
        """Reduce-closed codecs shrink the projected exchange time.

        A fixed cost model makes the per-step workload trace
        deterministic, so the only difference between the two runs'
        projections is the modelled wire size of the exchange.
        """
        from repro.data.hyperplane import HyperplaneDataset
        from repro.imbalance.cost_model import FixedCostModel
        from repro.nn.losses import MSELoss
        from repro.nn.models import HyperplaneMLP
        from repro.training.runner import train_distributed

        dataset = HyperplaneDataset(num_examples=64, input_dim=4096, seed=0)

        def model_factory():
            return HyperplaneMLP(input_dim=4096, seed=1)

        totals = {}
        for spec in (None, "fp16"):
            config = TrainingConfig(
                world_size=2,
                epochs=1,
                global_batch_size=16,
                mode="sync",
                compression=spec,
                cost_model=FixedCostModel(0.01),
                model_sync_period_epochs=None,
                seed=3,
            )
            result = train_distributed(
                model_factory, dataset, MSELoss(), config, classification=False
            )
            totals[spec] = result.projection.total_time
        assert totals["fp16"] < totals[None]


class TestCliCompression:
    def test_rejects_unknown_codec(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fusion", "--compression", "gzip"])
        assert "unknown compression codec" in capsys.readouterr().err

    def test_fig9_with_compression_runs(self, capsys):
        from repro.cli import main

        assert main(["fig9", "--world-size", "4", "--iterations", "2",
                     "--compression", "fp16"]) == 0
        assert "Solo" in capsys.readouterr().out
