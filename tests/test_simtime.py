"""Tests for the discrete-event engine and the analytic latency models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simtime import (
    DEFAULT_NETWORK,
    EventQueue,
    LogGPParams,
    Simulator,
    StepTimeline,
    activation_time,
    allreduce_time,
    broadcast_time,
    constant_arrivals,
    linear_skew,
    lognormal_noise,
    majority_allreduce_latencies,
    message_time,
    project_training_time,
    random_linear_skew,
    simulate_partial_allreduce,
    solo_allreduce_latencies,
    synchronous_allreduce_latencies,
)
from repro.simtime.collective_model import (
    fused_exchange_time,
    hierarchical_allreduce_time,
    hierarchical_fused_exchange_time,
    quorum_allreduce_latencies,
)
from repro.simtime.skew import delayed_subset


class TestNetworkModel:
    def test_message_time_monotone_in_size(self):
        assert message_time(1024) > message_time(64) > 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            message_time(-1)

    def test_allreduce_time_grows_with_size_and_ranks(self):
        small = allreduce_time(64, 8)
        large = allreduce_time(4 * 1024 * 1024, 8)
        more_ranks = allreduce_time(64, 64)
        assert large > small
        assert more_ranks > small

    def test_algorithms_differ_for_large_messages(self):
        nbytes = 16 * 1024 * 1024
        rd = allreduce_time(nbytes, 32, "recursive_doubling")
        ring = allreduce_time(nbytes, 32, "ring")
        # Ring is bandwidth-optimal: cheaper than recursive doubling for
        # large payloads.
        assert ring < rd

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            allreduce_time(64, 8, "bogus")

    def test_broadcast_and_activation(self):
        assert broadcast_time(16, 1) == 0.0
        assert activation_time(32) > activation_time(2) > 0


class TestTwoTierModel:
    """The hierarchical (intra-host tree + leader-ring) latency model."""

    SLOW_INTER = LogGPParams(
        alpha=100e-6, beta=20e-9, gamma=2e-9, collective_overhead=10e-6
    )

    def test_single_host_degenerates_to_flat_ring(self):
        nbytes = 1024 * 1024
        assert hierarchical_allreduce_time(
            nbytes, [8], DEFAULT_NETWORK, self.SLOW_INTER, n_chunks=2
        ) == allreduce_time(nbytes, 8, "ring", DEFAULT_NETWORK, n_chunks=2)
        buckets = [256 * 1024] * 4
        assert hierarchical_fused_exchange_time(
            buckets, [8], DEFAULT_NETWORK, self.SLOW_INTER, n_chunks=2
        ) == fused_exchange_time(buckets, 8, "ring", DEFAULT_NETWORK, n_chunks=2)

    def test_grows_with_bytes_and_slower_inter_link(self):
        fast = hierarchical_allreduce_time(
            64 * 1024, [4, 4], DEFAULT_NETWORK, DEFAULT_NETWORK
        )
        slow = hierarchical_allreduce_time(
            64 * 1024, [4, 4], DEFAULT_NETWORK, self.SLOW_INTER
        )
        big = hierarchical_allreduce_time(
            4 * 1024 * 1024, [4, 4], DEFAULT_NETWORK, self.SLOW_INTER
        )
        assert 0 < fast < slow < big

    def test_hierarchy_beats_flat_ring_over_slow_links(self):
        # Over a fabric where every hop pays the slow inter-host link, a
        # flat 8-rank ring sends 2(P-1)/P of the data across it; the
        # hierarchical schedule only crosses it on the 2-leader ring.
        nbytes = 4 * 1024 * 1024
        flat_over_slow = allreduce_time(nbytes, 8, "ring", self.SLOW_INTER)
        hier = hierarchical_allreduce_time(
            nbytes, [4, 4], DEFAULT_NETWORK, self.SLOW_INTER
        )
        assert hier < flat_over_slow

    def test_inter_scale_shrinks_leader_ring_only(self):
        buckets = [512 * 1024] * 4
        full = hierarchical_fused_exchange_time(
            buckets, [4, 4], DEFAULT_NETWORK, self.SLOW_INTER
        )
        compressed = hierarchical_fused_exchange_time(
            buckets, [4, 4], DEFAULT_NETWORK, self.SLOW_INTER, inter_scale=0.25
        )
        assert 0 < compressed < full

    def test_non_uniform_hosts_accepted(self):
        t = hierarchical_allreduce_time(
            1024 * 1024, (4, 2, 2), DEFAULT_NETWORK, self.SLOW_INTER
        )
        assert t > 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_allreduce_time(1024, [], DEFAULT_NETWORK, self.SLOW_INTER)
        with pytest.raises(ValueError):
            hierarchical_allreduce_time(1024, [2, 0], DEFAULT_NETWORK, self.SLOW_INTER)
        with pytest.raises(ValueError):
            hierarchical_fused_exchange_time(
                [1024], [2, 2], DEFAULT_NETWORK, self.SLOW_INTER, inter_scale=0.0
            )


class TestEngine:
    def test_event_queue_ordering(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("late"))
        q.push(1.0, lambda: order.append("early"))
        q.push(1.0, lambda: order.append("early2"))
        while q:
            q.pop().callback()
        assert order == ["early", "early2", "late"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_wait_and_send_recv(self):
        sim = Simulator()
        log = {}

        def sender(simulator, pid):
            yield ("wait", 0.5)
            yield ("send", 1, "hello", 100)
            log["sender_done"] = simulator.now

        def receiver(simulator, pid):
            msg = yield ("recv",)
            log["received"] = (msg, simulator.now)

        sim.add_process(0, sender)
        sim.add_process(1, receiver)
        sim.run()
        msg, t = log["received"]
        assert msg == "hello"
        assert t >= 0.5
        assert sim.messages_sent == 1

    def test_unknown_command(self):
        sim = Simulator()

        def bad(simulator, pid):
            yield ("fly",)

        sim.add_process(0, bad)
        with pytest.raises(ValueError):
            sim.run()

    def test_finish_times(self):
        sim = Simulator()

        def proc(simulator, pid):
            yield ("wait", 0.1 * (pid + 1))

        for pid in range(3):
            sim.add_process(pid, proc)
        sim.run()
        times = sim.finish_times()
        assert times[0] < times[1] < times[2]


class TestSkew:
    def test_linear_skew(self):
        arr = linear_skew(4, 2.0)
        assert np.allclose(arr, [0.0, 0.002, 0.004, 0.006])

    def test_random_linear_skew_is_permutation(self):
        arr = random_linear_skew(8, 1.0, seed=3)
        assert np.allclose(sorted(arr), linear_skew(8, 1.0))

    def test_constant_and_lognormal(self):
        assert np.allclose(constant_arrivals(3, 5.0), 0.005)
        noise = lognormal_noise(1000, median_ms=100.0, sigma=0.2, seed=1)
        assert 0.08 < np.median(noise) < 0.12

    def test_delayed_subset(self):
        arr = delayed_subset(10, 3, 200.0, seed=0)
        assert np.sum(arr > 0.1) == 3

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            linear_skew(0)
        with pytest.raises(ValueError):
            delayed_subset(4, 5, 10.0)


class TestCollectiveLatencyModel:
    def test_ordering_solo_majority_sync(self):
        arrivals = linear_skew(32, 1.0)
        sync = synchronous_allreduce_latencies(arrivals, 4096)
        solo = solo_allreduce_latencies(arrivals, 4096)
        maj = majority_allreduce_latencies(arrivals, 4096, initiator=16)
        assert solo.average_latency < maj.average_latency < sync.average_latency

    def test_nap_expectations(self):
        arrivals = linear_skew(32, 1.0)
        solo = solo_allreduce_latencies(arrivals, 64)
        assert solo.num_active <= 2
        majs = [
            majority_allreduce_latencies(arrivals, 64, initiator=i).num_active
            for i in range(32)
        ]
        assert 14 <= np.mean(majs) <= 18

    def test_quorum_interpolates(self):
        arrivals = linear_skew(16, 1.0)
        q1 = quorum_allreduce_latencies(arrivals, 64, quorum=1)
        q8 = quorum_allreduce_latencies(arrivals, 64, quorum=8)
        q16 = quorum_allreduce_latencies(arrivals, 64, quorum=16)
        assert q1.average_latency <= q8.average_latency <= q16.average_latency
        assert q1.num_active <= q8.num_active <= q16.num_active

    def test_sync_latency_is_completion_minus_arrival(self):
        arrivals = np.array([0.0, 0.01])
        res = synchronous_allreduce_latencies(arrivals, 64)
        assert res.latencies[0] > res.latencies[1]

    def test_invalid_arrivals(self):
        with pytest.raises(ValueError):
            synchronous_allreduce_latencies([], 64)
        with pytest.raises(ValueError):
            solo_allreduce_latencies([-1.0, 0.0], 64)

    @given(
        size=st.sampled_from([2, 4, 8, 16, 32]),
        step_ms=st.floats(min_value=0.1, max_value=10.0),
        nbytes=st.sampled_from([64, 4096, 262144]),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_solo_never_much_slower_than_sync(self, size, step_ms, nbytes):
        # Solo allreduce can only lose by its fixed overheads (activation
        # broadcast + result check); under any skew it never loses more.
        from repro.simtime.collective_model import RESULT_CHECK_OVERHEAD

        arrivals = linear_skew(size, step_ms)
        sync = synchronous_allreduce_latencies(arrivals, nbytes)
        solo = solo_allreduce_latencies(arrivals, nbytes)
        overhead = activation_time(size) + RESULT_CHECK_OVERHEAD
        assert solo.average_latency <= sync.average_latency + overhead + 1e-12


class TestCollectiveSimulation:
    def test_simulation_matches_analytic_model_sync(self):
        arrivals = linear_skew(16, 1.0)
        sim = simulate_partial_allreduce(arrivals, 4096, "sync")
        ana = synchronous_allreduce_latencies(arrivals, 4096)
        assert sim.latencies.mean() == pytest.approx(ana.average_latency, rel=0.15)

    def test_simulation_matches_analytic_model_solo(self):
        arrivals = linear_skew(16, 1.0)
        sim = simulate_partial_allreduce(arrivals, 4096, "solo")
        ana = solo_allreduce_latencies(arrivals, 4096)
        assert sim.num_active == ana.num_active == 1
        # Late ranks pay only the check overhead in both models.
        assert sim.latencies.mean() == pytest.approx(ana.average_latency, rel=0.5)

    def test_majority_designated_initiator(self):
        arrivals = linear_skew(8, 1.0)
        sim = simulate_partial_allreduce(arrivals, 1024, "majority", initiator=4)
        assert sim.initiator == 4
        assert sim.num_active >= 5  # ranks 0..4 arrived before the initiator

    def test_quorum_mode_string(self):
        arrivals = linear_skew(8, 1.0)
        sim = simulate_partial_allreduce(arrivals, 1024, "quorum:4")
        assert sim.num_active >= 4

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            simulate_partial_allreduce(linear_skew(6, 1.0), 64, "solo")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            simulate_partial_allreduce(linear_skew(4, 1.0), 64, "bogus")


class TestTrainingProjection:
    def _timeline(self, seed=0, steps=50, ranks=8, straggler=None):
        rng = np.random.default_rng(seed)
        durations = np.abs(rng.normal(0.4, 0.05, size=(steps, ranks)))
        if straggler is not None:
            durations[:, straggler] += 0.4
        return StepTimeline(durations)

    def test_sync_slower_than_solo_under_imbalance(self):
        tl = self._timeline(straggler=3)
        sync = project_training_time(tl, "sync", gradient_bytes=1 << 20)
        solo = project_training_time(tl, "solo", gradient_bytes=1 << 20)
        majority = project_training_time(tl, "majority", gradient_bytes=1 << 20, seed=1)
        assert solo.total_time < majority.total_time < sync.total_time
        assert solo.throughput > sync.throughput

    def test_nap_per_mode(self):
        tl = self._timeline()
        sync = project_training_time(tl, "sync")
        solo = project_training_time(tl, "solo")
        assert np.all(sync.num_active_per_step == 8)
        assert np.all(solo.num_active_per_step >= 1)

    def test_quorum_requires_valid_value(self):
        tl = self._timeline()
        with pytest.raises(ValueError):
            project_training_time(tl, "quorum", quorum=99)
        proj = project_training_time(tl, "quorum", quorum=4)
        assert np.all(proj.num_active_per_step >= 1)

    def test_model_sync_period_adds_time(self):
        tl = self._timeline()
        without = project_training_time(tl, "solo", gradient_bytes=1 << 22)
        with_sync = project_training_time(
            tl, "solo", gradient_bytes=1 << 22, model_sync_period=5
        )
        assert with_sync.total_time > without.total_time

    def test_step_completion_monotone(self):
        tl = self._timeline()
        proj = project_training_time(tl, "majority", seed=2)
        diffs = np.diff(proj.step_completion_times)
        assert np.all(diffs >= -1e-12)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            StepTimeline(np.zeros((3,)))
        with pytest.raises(ValueError):
            StepTimeline(-np.ones((2, 2)))
        with pytest.raises(ValueError):
            project_training_time(self._timeline(), "bogus")
