"""Shared-memory transport internals (repro.comm.shm_backend).

The cross-backend semantics are covered by the conformance suite
(``tests/test_backend_conformance.py`` parametrizes over ``shm``); this
module tests what is specific to the shm transport: the SPSC ring
(wrap-around, streaming frames larger than the ring), the capability
probe / unavailability bookkeeping, segment hygiene (session sweep,
stale-segment sweep keyed on dead PIDs), and the backend options.
"""

import os

import numpy as np
import pytest

from repro.comm import available_backends, launch
from repro.comm.backend import backend_unavailable_reason

shm_backend = pytest.importorskip("repro.comm.shm_backend")

SHM_AVAILABLE = "shm" in available_backends()

needs_shm = pytest.mark.skipif(
    not SHM_AVAILABLE,
    reason=f"shm backend unavailable: {backend_unavailable_reason('shm')}",
)


def _make_ring(tmp_name, capacity):
    return shm_backend._Ring.create(tmp_name, capacity)


def _destroy_ring(ring):
    """Detach and unlink a test ring (its owner PID is alive, so the
    stale sweep deliberately will not touch it)."""
    segment = ring._shm
    ring.detach()
    shm_backend._unlink_segment(segment)


@needs_shm
class TestRing:
    def test_write_read_roundtrip_with_wraparound(self):
        ring = _make_ring(shm_backend._session_name() + "-t1", 4096)
        try:
            payload = np.arange(1024, dtype=np.uint8).tobytes() * 3  # 3072 B
            # Two passes leave the cursors mid-ring, forcing a wrap on
            # the second write.
            for _ in range(3):
                view = memoryview(payload)
                wrote = ring.write_some(view)
                assert wrote == len(payload)
                out = bytearray(len(payload))
                got = ring.read_some(memoryview(out))
                assert got == len(payload)
                assert bytes(out) == payload
            assert ring.readable() == 0
        finally:
            _destroy_ring(ring)

    def test_write_respects_capacity(self):
        ring = _make_ring(shm_backend._session_name() + "-t2", 4096)
        try:
            big = bytes(10_000)
            wrote = ring.write_some(memoryview(big))
            assert wrote == 4096  # only the capacity fits
            out = bytearray(4096)
            assert ring.read_some(memoryview(out)) == 4096
            # Freed space admits the next capacity's worth.
            assert ring.write_some(memoryview(big)[wrote:]) == 4096
        finally:
            _destroy_ring(ring)

    def test_flags_roundtrip(self):
        ring = _make_ring(shm_backend._session_name() + "-t3", 4096)
        try:
            assert not ring.consumer_waiting and not ring.producer_waiting
            ring.set_consumer_waiting(True)
            ring.set_producer_waiting(True)
            assert ring.consumer_waiting and ring.producer_waiting
            assert not ring.producer_closed and not ring.consumer_closed
            ring.close_producer()
            ring.close_consumer()
            assert ring.producer_closed and ring.consumer_closed
        finally:
            _destroy_ring(ring)


@needs_shm
class TestTransport:
    def test_payload_larger_than_ring_streams_through(self):
        n = 1 << 18  # 2 MiB of float64 through 64 KiB rings

        def worker(comm):
            if comm.rank == 0:
                comm.send(np.arange(n, dtype=np.float64), 1, tag=1)
                return True
            got = comm.recv(source=0, tag=1, timeout=60)
            return bool(np.array_equal(got, np.arange(n, dtype=np.float64)))

        assert all(
            launch(
                worker, 2, backend="shm", timeout=120,
                backend_opts={"ring_bytes": 64 * 1024},
            )
        )

    def test_mutual_flood_does_not_deadlock(self):
        """Both ranks flood; senders pump their inbound while starved."""

        def worker(comm):
            peer = 1 - comm.rank
            chunk = np.full(1 << 16, float(comm.rank))  # 512 KiB
            for i in range(32):  # 16 MiB >> ring capacity
                comm.send(chunk, peer, tag=i)
            return sum(
                float(comm.recv(source=peer, tag=i, timeout=60)[0])
                for i in range(32)
            )

        assert launch(
            worker, 2, backend="shm", timeout=180,
            backend_opts={"ring_bytes": 256 * 1024},
        ) == [32.0, 0.0]

    def test_ring_bytes_validated(self):
        with pytest.raises(ValueError, match="ring_bytes"):
            launch(lambda comm: None, 2, backend="shm",
                   backend_opts={"ring_bytes": 16})

    def test_unknown_backend_opt_rejected(self):
        with pytest.raises(TypeError, match="unexpected options"):
            launch(lambda comm: None, 2, backend="shm",
                   backend_opts={"bogus": 1})

    def test_world_size_one_needs_no_segments(self):
        assert launch(lambda comm: comm.size, 1, backend="shm") == [1]


@needs_shm
class TestSegmentHygiene:
    def test_run_leaves_no_segments_behind(self):
        before = {
            f for f in os.listdir("/dev/shm")
            if f.startswith(shm_backend._NAME_PREFIX)
        }
        launch(lambda comm: comm.rank, 3, backend="shm", timeout=60)
        after = {
            f for f in os.listdir("/dev/shm")
            if f.startswith(shm_backend._NAME_PREFIX)
        }
        assert after <= before

    def test_stale_sweep_removes_dead_owner_segments(self, tmp_path):
        # Forge a segment whose embedded launcher PID is certainly dead.
        pid = 2**22 - 1
        while shm_backend._pid_alive(pid):  # pragma: no cover - unlucky host
            pid -= 1
        name = f"{shm_backend._NAME_PREFIX}-{pid}-deadbeef-0to1"
        segment = shm_backend._open_segment(name, create=True, size=4096)
        segment.close()
        removed = shm_backend.sweep_stale_segments()
        assert name in removed
        assert name not in os.listdir("/dev/shm")

    def test_stale_sweep_keeps_live_owner_segments(self):
        name = f"{shm_backend._NAME_PREFIX}-{os.getpid()}-cafef00d-0to1"
        segment = shm_backend._open_segment(name, create=True, size=4096)
        try:
            assert name not in shm_backend.sweep_stale_segments()
            assert name in os.listdir("/dev/shm")
        finally:
            segment.close()
            shm_backend._unlink_segment(segment)

    def test_malformed_names_ignored(self):
        path = f"/dev/shm/{shm_backend._NAME_PREFIX}-notapid-xyz"
        with open(path, "wb") as fh:
            fh.write(b"\0" * 16)
        try:
            assert os.path.basename(path) not in shm_backend.sweep_stale_segments()
        finally:
            os.unlink(path)


class TestAvailabilityBookkeeping:
    def test_probe_agrees_with_registry(self):
        reason = shm_backend._UNAVAILABLE_REASON
        if SHM_AVAILABLE:
            assert reason is None
            assert backend_unavailable_reason("shm") is None
        else:  # pragma: no cover - only on platforms without shm
            assert reason
            assert backend_unavailable_reason("shm") == reason

    def test_mark_backend_unavailable_reports_typed_error(self):
        from repro.comm.backend import (
            BackendUnavailableError,
            _UNAVAILABLE,
            get_backend,
            mark_backend_unavailable,
        )

        mark_backend_unavailable("imaginary-fabric", "no such hardware")
        try:
            assert backend_unavailable_reason("imaginary-fabric") == "no such hardware"
            with pytest.raises(BackendUnavailableError, match="no such hardware"):
                get_backend("imaginary-fabric")
            # Unmarked unknown names keep the plain unknown-name error.
            with pytest.raises(ValueError, match="unknown comm backend"):
                get_backend("definitely-not-registered")
        finally:
            _UNAVAILABLE.pop("imaginary-fabric", None)


@needs_shm
class TestDoorbell:
    def test_ring_then_wait_returns_immediately(self):
        import time

        bell = shm_backend._Doorbell()
        bell.ring()
        start = time.perf_counter()
        bell.wait(1.0)
        assert time.perf_counter() - start < 0.5

    def test_wait_times_out_without_signal(self):
        import time

        bell = shm_backend._Doorbell()
        start = time.perf_counter()
        bell.wait(0.05)
        assert 0.03 <= time.perf_counter() - start < 1.0

    def test_many_rings_drain_in_one_wait(self):
        import time

        bell = shm_backend._Doorbell()
        for _ in range(100):
            bell.ring()
        bell.wait(0.5)
        start = time.perf_counter()
        bell.wait(0.05)  # drained: must time out, not return instantly
        assert time.perf_counter() - start >= 0.03
