"""Vectorised narrow-dtype reduction kernels (repro.comm.reduce_kernels).

Two contracts are under test:

* the single binary ``combine_into`` is **bit-identical** to NumPy's
  native narrow-dtype loop (both round the exact result to nearest even
  once), so swapping the kernel in can never change collective results;
* the widened accumulator matches the **float64 reference** within the
  narrow dtype's ulp bounds — it accumulates at float32 and narrows
  once, so it is *more* accurate than stepwise fp16, never less.
"""

import numpy as np
import pytest

from repro.comm import reduce_kernels
from repro.comm.reduce_ops import AVG, MAX, MIN, PROD, SUM, get_op
from repro.compression import get_codec


def _random(dtype, n=4096, seed=0, scale=1.0):
    values = np.random.default_rng(seed).standard_normal(n) * scale
    return values.astype(dtype)


def _ulp_bound(dtype, reference):
    """Absolute tolerance of one target-dtype ulp around ``reference``."""
    return np.maximum(
        np.spacing(np.abs(reference).astype(dtype)).astype(np.float64),
        float(np.finfo(dtype).tiny),
    )


class TestWidenedDtype:
    def test_fp16_widens_to_fp32(self):
        assert reduce_kernels.widened_dtype(np.float16) == np.dtype(np.float32)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32, np.uint16])
    def test_wide_dtypes_have_no_kernel(self, dtype):
        assert reduce_kernels.widened_dtype(dtype) is None


class TestCombineInto:
    @pytest.mark.parametrize("op", [SUM, PROD, MAX, MIN, AVG])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_native_fp16_loop(self, op, seed):
        a = _random(np.float16, seed=seed)
        b = _random(np.float16, seed=seed + 100)
        kernel = a.copy()
        handled = reduce_kernels.combine_into(op.ufunc, kernel, b)
        assert handled
        native = op.ufunc(a.copy(), b)
        assert np.array_equal(
            kernel.view(np.uint16), native.view(np.uint16)
        ), "widen-combine-narrow must round exactly like the native loop"

    def test_special_values(self):
        a = np.array([np.inf, -np.inf, np.nan, 0.0, 65504.0, 6e-8], dtype=np.float16)
        b = np.array([1.0, 1.0, 1.0, -0.0, 65504.0, 6e-8], dtype=np.float16)
        kernel = a.copy()
        assert reduce_kernels.combine_into(np.add, kernel, b)
        native = np.add(a.copy(), b)
        assert np.array_equal(
            np.nan_to_num(kernel.astype(np.float64), nan=123.0),
            np.nan_to_num(native.astype(np.float64), nan=123.0),
        )

    def test_wide_dtype_falls_back(self):
        a = np.ones(8, dtype=np.float64)
        assert not reduce_kernels.combine_into(np.add, a, np.ones(8))

    def test_mixed_dtype_falls_back(self):
        a = np.ones(8, dtype=np.float16)
        assert not reduce_kernels.combine_into(np.add, a, np.ones(8, dtype=np.float64))

    def test_reduce_op_dispatches_by_dtype_at_call_time(self):
        op = get_op("sum")
        narrow = _random(np.float16)
        wide = narrow.astype(np.float64)
        other16 = _random(np.float16, seed=5)
        expected16 = np.add(narrow.copy(), other16)
        got16 = op.combine_into(narrow.copy(), other16)
        assert got16.dtype == np.float16
        assert np.array_equal(got16.view(np.uint16), expected16.view(np.uint16))
        # The same call on float64 keeps the plain in-place ufunc path.
        got64 = op.combine_into(wide.copy(), other16.astype(np.float64))
        assert got64.dtype == np.float64
        np.testing.assert_array_equal(got64, wide + other16.astype(np.float64))


class TestWidenedAccumulator:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_accumulate_within_ulp_of_float64_reference(self, k):
        out = _random(np.float16, seed=0)
        segments = [_random(np.float16, seed=i + 1) for i in range(k)]
        reference = out.astype(np.float64)
        for segment in segments:
            reference = reference + segment.astype(np.float64)

        result = reduce_kernels.reduce_segments(np.add, out.copy(), segments)
        assert result.dtype == np.float16
        finite = np.isfinite(reference)
        error = np.abs(result.astype(np.float64) - reference)[finite]
        # float32 accumulation then one fp16 rounding: within one fp16
        # ulp of the float64 reference plus float32's own drift.
        bound = 1.001 * _ulp_bound(np.float16, reference)[finite] + np.abs(
            reference[finite]
        ) * k * np.finfo(np.float32).eps
        assert np.all(error <= bound)

    @pytest.mark.parametrize("k", [3, 7])
    def test_more_accurate_than_stepwise_fp16(self, k):
        out = _random(np.float16, seed=0, scale=10.0)
        segments = [_random(np.float16, seed=i + 1, scale=10.0) for i in range(k)]
        reference = out.astype(np.float64)
        stepwise = out.copy()
        for segment in segments:
            reference = reference + segment.astype(np.float64)
            np.add(stepwise, segment, out=stepwise)
        widened = reduce_kernels.reduce_segments(np.add, out.copy(), segments)
        err_widened = float(
            np.mean(np.abs(widened.astype(np.float64) - reference))
        )
        err_stepwise = float(
            np.mean(np.abs(stepwise.astype(np.float64) - reference))
        )
        assert err_widened <= err_stepwise * 1.0001

    def test_reduce_op_accumulator_narrow_only(self):
        assert SUM.accumulator(np.ones(4, dtype=np.float16)) is not None
        assert SUM.accumulator(np.ones(4, dtype=np.float64)) is None

    def test_wide_out_reduces_in_place(self):
        out = np.ones(16, dtype=np.float64)
        segments = [np.full(16, 2.0), np.full(16, 3.0)]
        result = reduce_kernels.reduce_segments(np.add, out, segments)
        assert result is out
        np.testing.assert_array_equal(out, np.full(16, 6.0))


class TestDtypeSweepAgainstFloat64:
    """Equivalence across the dtype sweep the collectives actually see."""

    @pytest.mark.parametrize("dtype", [np.float16, np.float32, np.float64])
    @pytest.mark.parametrize("opname", ["sum", "max", "min"])
    def test_combine_matches_reference_within_ulp(self, dtype, opname):
        op = get_op(opname)
        a = _random(dtype, seed=3)
        b = _random(dtype, seed=4)
        reference = op.fn(a.astype(np.float64), b.astype(np.float64))
        got = op.combine_into(a.copy(), b).astype(np.float64)
        bound = 1.001 * _ulp_bound(dtype, reference)
        assert np.all(np.abs(got - reference) <= bound)


class TestBf16Kernels:
    def test_widen_narrow_roundtrip_is_codec_wire_format(self):
        dense = np.random.default_rng(0).standard_normal(2048)
        codec = get_codec("bf16")
        encoded = codec.encode(dense)
        bits = reduce_kernels.bf16_narrow(dense.astype(np.float32))
        assert np.array_equal(np.asarray(encoded.payload), bits)
        np.testing.assert_array_equal(
            codec.decode(encoded),
            reduce_kernels.bf16_widen(bits, dtype=np.float64),
        )

    def test_narrow_rounds_to_nearest_even(self):
        # bf16 keeps 7 mantissa bits: 1 + 2^-7 is exactly representable,
        # 1 + 2^-8 is halfway and must round to even (down to 1.0).
        values = np.array([1.0 + 2.0**-7, 1.0 + 2.0**-8], dtype=np.float32)
        decoded = reduce_kernels.bf16_widen(reduce_kernels.bf16_narrow(values))
        assert decoded[0] == np.float32(1.0 + 2.0**-7)
        assert decoded[1] == np.float32(1.0)

    def test_widen_within_ulp_of_float64(self):
        dense = np.random.default_rng(1).standard_normal(2048)
        wire = reduce_kernels.bf16_narrow(dense)
        decoded = reduce_kernels.bf16_widen(wire, dtype=np.float64)
        # bf16 has an 8-bit significand: relative error <= 2^-9 + RNE.
        assert np.max(np.abs(decoded - dense) / np.abs(dense)) <= 2.0**-8


class TestAccumulateWire:
    def test_fp16_wire_matches_decode_then_add(self):
        acc = np.random.default_rng(0).standard_normal(1024)
        wire = _random(np.float16, n=1024, seed=9)
        expected = acc + wire.astype(np.float64)
        got = acc.copy()
        assert reduce_kernels.accumulate_wire(got, wire)
        np.testing.assert_array_equal(got, expected)

    def test_bit_pattern_wire_is_rejected(self):
        acc = np.zeros(8)
        assert not reduce_kernels.accumulate_wire(acc, np.zeros(8, dtype=np.uint16))
        np.testing.assert_array_equal(acc, np.zeros(8))


class TestCollectiveIntegration:
    """The kernels observed through the public collective API."""

    @pytest.mark.parametrize("algorithm", ["ring", "recursive_doubling"])
    def test_fp16_allreduce_replicas_agree_and_track_reference(self, algorithm):
        from repro.collectives.sync import allreduce
        from repro.comm import launch

        n, size = 1024, 4
        inputs = [_random(np.float16, n=n, seed=r) for r in range(size)]
        reference = np.sum([x.astype(np.float64) for x in inputs], axis=0)

        def worker(comm):
            return allreduce(comm, inputs[comm.rank], algorithm=algorithm)

        results = launch(worker, size, backend="thread")
        for result in results:
            assert result.dtype == np.float16
            assert np.array_equal(
                result.view(np.uint16), results[0].view(np.uint16)
            ), "replicas must agree bit-for-bit"
        finite = np.isfinite(reference)
        error = np.abs(results[0].astype(np.float64) - reference)[finite]
        # Each intermediate combine rounds at the magnitude of the
        # *partial* sum (which cancellation can make far larger than the
        # final value), so the bound uses the cancellation-free scale.
        scale = np.sum([np.abs(x.astype(np.float64)) for x in inputs], axis=0)
        bound = (size + 1) * _ulp_bound(np.float16, scale)[finite]
        assert np.all(error <= bound)

    def test_fp16_tree_reduce_tracks_float64_reference(self):
        from repro.collectives.sync import reduce
        from repro.comm import launch

        n, size = 512, 8
        inputs = [_random(np.float16, n=n, seed=10 + r) for r in range(size)]
        reference = np.sum([x.astype(np.float64) for x in inputs], axis=0)

        def worker(comm):
            return reduce(comm, inputs[comm.rank], op="sum", root=0)

        results = launch(worker, size, backend="thread")
        got = results[0].astype(np.float64)
        finite = np.isfinite(reference)
        scale = np.sum([np.abs(x.astype(np.float64)) for x in inputs], axis=0)
        bound = (size + 1) * _ulp_bound(np.float16, scale)[finite]
        assert np.all(np.abs(got - reference)[finite] <= bound)
        assert all(r is None for r in results[1:])

    def test_compressed_ring_unchanged_by_fast_path(self):
        """allreduce_compressed_ring's fused fp16 hop == decode-then-add."""
        from repro.collectives.sync import allreduce_compressed_ring
        from repro.comm import launch

        n, size = 2048, 4
        inputs = [
            np.random.default_rng(20 + r).standard_normal(n) for r in range(size)
        ]
        codec = get_codec("fp16")
        # Reference: the documented schedule by hand — encoded hops,
        # dense accumulation, averaged chunks encoded once.
        def worker(comm):
            return allreduce_compressed_ring(comm, inputs[comm.rank], codec)

        results = launch(worker, size, backend="thread")
        for result in results[1:]:
            np.testing.assert_array_equal(result, results[0])
        dense_avg = np.mean(inputs, axis=0)
        # fp16 wire: within a few fp16 ulp of the dense average.
        bound = (size + 2) * _ulp_bound(np.float16, dense_avg)
        assert np.all(np.abs(results[0] - dense_avg) <= bound)
