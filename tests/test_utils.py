"""Tests for repro.utils (rng, timers, statistics)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import (
    DEFAULT_SEED,
    choice_without_replacement,
    rank_seed,
    seeded_rng,
    spawn_rngs,
)
from repro.utils.stats import DistributionSummary, Histogram, RunningStat, summarize
from repro.utils.timer import Timer, VirtualClock


class TestRng:
    def test_seeded_rng_deterministic(self):
        a = seeded_rng(7).random(5)
        b = seeded_rng(7).random(5)
        assert np.allclose(a, b)

    def test_seeded_rng_none_uses_default(self):
        a = seeded_rng(None).random(3)
        b = seeded_rng(DEFAULT_SEED).random(3)
        assert np.allclose(a, b)

    def test_seeded_rng_passthrough_generator(self):
        gen = np.random.default_rng(3)
        assert seeded_rng(gen) is gen

    def test_rank_seed_distinct_per_rank(self):
        seeds = {rank_seed(1, r) for r in range(64)}
        assert len(seeds) == 64

    def test_rank_seed_deterministic(self):
        assert rank_seed(5, 3, stream=2) == rank_seed(5, 3, stream=2)

    def test_rank_seed_stream_changes_seed(self):
        assert rank_seed(5, 3, stream=0) != rank_seed(5, 3, stream=1)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(9, 4)
        draws = [g.random() for g in rngs]
        assert len(set(draws)) == 4

    def test_spawn_rngs_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(0), 3)
        assert len(rngs) == 3

    def test_choice_without_replacement_bounds(self):
        rng = seeded_rng(0)
        picks = choice_without_replacement(rng, 10, 5)
        assert len(set(picks.tolist())) == 5
        with pytest.raises(ValueError):
            choice_without_replacement(rng, 3, 5)


class TestRunningStat:
    def test_matches_numpy(self, rng):
        data = rng.normal(3.0, 2.0, size=500)
        stat = RunningStat()
        stat.extend(data)
        assert stat.count == 500
        assert stat.mean == pytest.approx(float(np.mean(data)))
        assert stat.std == pytest.approx(float(np.std(data)))
        assert stat.min == pytest.approx(float(np.min(data)))
        assert stat.max == pytest.approx(float(np.max(data)))

    def test_empty(self):
        stat = RunningStat()
        assert stat.mean == 0.0
        assert stat.std == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_mean_within_bounds(self, values):
        stat = RunningStat()
        stat.extend(values)
        assert min(values) - 1e-9 <= stat.mean <= max(values) + 1e-9


class TestHistogram:
    def test_bins_and_total(self):
        h = Histogram(bin_width=10.0)
        h.extend([1, 5, 15, 25, 25])
        assert h.total == 5
        bins = h.bins()
        assert bins[0] == (0.0, 10.0, 2)
        assert h.mode_bin()[2] == 2

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Histogram(bin_width=0)

    def test_series_shapes(self):
        h = Histogram(5.0)
        h.extend(range(20))
        centers, counts = h.as_series()
        assert len(centers) == len(counts) == 4
        assert counts.sum() == 20

    def test_empty_series(self):
        centers, counts = Histogram(1.0).as_series()
        assert centers.size == 0 and counts.size == 0

    def test_mode_bin_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram(1.0).mode_bin()


class TestSummarize:
    def test_summary_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.min == 1.0 and s.max == 4.0

    def test_empty_summary(self):
        s = summarize([])
        assert s.count == 0
        assert isinstance(s, DistributionSummary)

    def test_str_contains_stats(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestTimers:
    def test_timer_accumulates(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first >= 0.0

    def test_timer_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timer_double_start_raises(self):
        # Regression: start() used to silently discard the in-flight
        # interval, corrupting accumulated timings.
        t = Timer().start()
        with pytest.raises(RuntimeError, match="already running"):
            t.start()
        t.stop()  # the original interval is still intact
        assert t.elapsed >= 0.0
        t.start()  # restartable after a clean stop
        t.stop()

    def test_virtual_clock_advance(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance_to(1.0)  # no-op: in the past
        assert clock.now == pytest.approx(1.5)
        clock.advance_to(2.0)
        assert clock.now == pytest.approx(2.0)

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_virtual_clock_checkpoints(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.checkpoint()
        clock.advance(2.0)
        clock.checkpoint()
        assert clock.checkpoints == [1.0, 3.0]
        clock.reset()
        assert clock.now == 0.0 and clock.checkpoints == []
