"""Tests for the communication topologies used by the collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.topology import (
    bcast_order,
    binomial_tree_children,
    binomial_tree_level,
    binomial_tree_parent,
    hypercube_neighbors,
    is_power_of_two,
    largest_power_of_two_leq,
    recursive_doubling_rounds,
    ring_neighbors,
    tree_depth,
)


class TestBinomialTree:
    def test_root_children_power_of_two(self):
        assert binomial_tree_children(0, 8, root=0) == [1, 2, 4]

    def test_parent_child_consistency(self):
        for size in (1, 2, 3, 5, 8, 13, 16, 32):
            for root in (0, size // 2, size - 1):
                for rank in range(size):
                    for child in binomial_tree_children(rank, size, root):
                        assert binomial_tree_parent(child, size, root) == rank

    def test_every_rank_reached_exactly_once(self):
        for size in (1, 2, 3, 7, 8, 12, 16, 33):
            for root in (0, size - 1):
                edges = bcast_order(size, root)
                receivers = [dst for _, dst in edges]
                assert len(receivers) == size - 1
                assert len(set(receivers)) == size - 1
                assert root not in receivers

    def test_level_counts_hops(self):
        assert binomial_tree_level(0, 8) == 0
        assert binomial_tree_level(7, 8) == 3  # 7 = 0b111
        assert binomial_tree_level(4, 8) == 1

    def test_depth(self):
        assert tree_depth(1) == 0
        assert tree_depth(2) == 1
        assert tree_depth(8) == 3
        assert tree_depth(9) == 4

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            binomial_tree_children(5, 4)
        with pytest.raises(ValueError):
            binomial_tree_parent(0, 0)

    @given(
        size=st.integers(min_value=1, max_value=64),
        root=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_broadcast_covers_world(self, size, root):
        root = root % size
        edges = bcast_order(size, root)
        reached = {root} | {dst for _, dst in edges}
        assert reached == set(range(size))
        # Senders must already be reached before they forward.
        seen = {root}
        for src, dst in edges:
            assert src in seen
            seen.add(dst)


class TestRecursiveDoubling:
    def test_partners_power_of_two(self):
        assert recursive_doubling_rounds(0, 8) == [1, 2, 4]
        assert recursive_doubling_rounds(5, 8) == [4, 7, 1]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            recursive_doubling_rounds(0, 6)

    def test_partnership_is_symmetric(self):
        size = 16
        for k in range(4):
            for rank in range(size):
                partner = recursive_doubling_rounds(rank, size)[k]
                assert recursive_doubling_rounds(partner, size)[k] == rank

    def test_hypercube_alias(self):
        assert hypercube_neighbors(3, 8) == recursive_doubling_rounds(3, 8)


class TestMisc:
    def test_ring_neighbors(self):
        assert ring_neighbors(0, 4) == (3, 1)
        assert ring_neighbors(3, 4) == (2, 0)

    def test_power_of_two_helpers(self):
        assert is_power_of_two(1) and is_power_of_two(64)
        assert not is_power_of_two(0) and not is_power_of_two(12)
        assert largest_power_of_two_leq(1) == 1
        assert largest_power_of_two_leq(9) == 8
        with pytest.raises(ValueError):
            largest_power_of_two_leq(0)
