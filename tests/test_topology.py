"""Tests for the communication topologies used by the collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.topology import (
    HostTopology,
    bcast_order,
    binomial_tree_children,
    binomial_tree_level,
    binomial_tree_parent,
    hypercube_neighbors,
    intra_bcast_edges,
    intra_reduce_edges,
    is_power_of_two,
    largest_power_of_two_leq,
    leader_ring_neighbors,
    recursive_doubling_rounds,
    ring_neighbors,
    tree_depth,
)


class TestBinomialTree:
    def test_root_children_power_of_two(self):
        assert binomial_tree_children(0, 8, root=0) == [1, 2, 4]

    def test_parent_child_consistency(self):
        for size in (1, 2, 3, 5, 8, 13, 16, 32):
            for root in (0, size // 2, size - 1):
                for rank in range(size):
                    for child in binomial_tree_children(rank, size, root):
                        assert binomial_tree_parent(child, size, root) == rank

    def test_every_rank_reached_exactly_once(self):
        for size in (1, 2, 3, 7, 8, 12, 16, 33):
            for root in (0, size - 1):
                edges = bcast_order(size, root)
                receivers = [dst for _, dst in edges]
                assert len(receivers) == size - 1
                assert len(set(receivers)) == size - 1
                assert root not in receivers

    def test_level_counts_hops(self):
        assert binomial_tree_level(0, 8) == 0
        assert binomial_tree_level(7, 8) == 3  # 7 = 0b111
        assert binomial_tree_level(4, 8) == 1

    def test_depth(self):
        assert tree_depth(1) == 0
        assert tree_depth(2) == 1
        assert tree_depth(8) == 3
        assert tree_depth(9) == 4

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            binomial_tree_children(5, 4)
        with pytest.raises(ValueError):
            binomial_tree_parent(0, 0)

    @given(
        size=st.integers(min_value=1, max_value=64),
        root=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_broadcast_covers_world(self, size, root):
        root = root % size
        edges = bcast_order(size, root)
        reached = {root} | {dst for _, dst in edges}
        assert reached == set(range(size))
        # Senders must already be reached before they forward.
        seen = {root}
        for src, dst in edges:
            assert src in seen
            seen.add(dst)


class TestRecursiveDoubling:
    def test_partners_power_of_two(self):
        assert recursive_doubling_rounds(0, 8) == [1, 2, 4]
        assert recursive_doubling_rounds(5, 8) == [4, 7, 1]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            recursive_doubling_rounds(0, 6)

    def test_partnership_is_symmetric(self):
        size = 16
        for k in range(4):
            for rank in range(size):
                partner = recursive_doubling_rounds(rank, size)[k]
                assert recursive_doubling_rounds(partner, size)[k] == rank

    def test_hypercube_alias(self):
        assert hypercube_neighbors(3, 8) == recursive_doubling_rounds(3, 8)


class TestMisc:
    def test_ring_neighbors(self):
        assert ring_neighbors(0, 4) == (3, 1)
        assert ring_neighbors(3, 4) == (2, 0)

    def test_power_of_two_helpers(self):
        assert is_power_of_two(1) and is_power_of_two(64)
        assert not is_power_of_two(0) and not is_power_of_two(12)
        assert largest_power_of_two_leq(1) == 1
        assert largest_power_of_two_leq(9) == 8
        with pytest.raises(ValueError):
            largest_power_of_two_leq(0)


# The non-uniform layouts the hierarchical schedules must get right:
# a 3+1 world (one host degenerates to a lone leader) and a 4+2+2 world
# (three hosts of different sizes, leader ring of length 3).
THREE_PLUS_ONE = HostTopology([0, 0, 0, 1])
FOUR_TWO_TWO = HostTopology([0, 0, 0, 0, 1, 1, 2, 2])


class TestHostTopology:
    def test_labels_canonicalised_in_first_appearance_order(self):
        assert HostTopology(["a", "a", "b"]).host_of == (0, 0, 1)
        assert HostTopology(["b", "a", "b"]).host_of == (0, 1, 0)
        assert HostTopology(["x", "y"]) == HostTopology([7, 3])

    def test_string_roundtrip(self):
        topo = HostTopology.from_string("node1, node1, node2, node1")
        assert topo.host_of == (0, 0, 1, 0)
        assert HostTopology.from_string(topo.to_string()) == topo
        with pytest.raises(ValueError):
            HostTopology.from_string(" , ,")

    def test_from_hosts_matches_explicit_labels(self):
        assert HostTopology.from_hosts([3, 1]) == THREE_PLUS_ONE
        assert HostTopology.from_hosts([4, 2, 2]) == FOUR_TWO_TWO
        with pytest.raises(ValueError):
            HostTopology.from_hosts([2, 0, 1])

    def test_single_host_is_degenerate(self):
        topo = HostTopology.single_host(4)
        assert topo.is_single_host
        assert topo.leaders == (0,)
        assert intra_reduce_edges(HostTopology([0]), 0) == []
        assert intra_bcast_edges(HostTopology([0]), 0) == []

    def test_three_plus_one_rank_queries(self):
        topo = THREE_PLUS_ONE
        assert topo.world_size == 4 and topo.num_hosts == 2
        assert not topo.is_single_host
        assert topo.ranks_on_host(0) == (0, 1, 2)
        assert topo.ranks_on_host(1) == (3,)
        assert topo.leaders == (0, 3)
        assert [topo.is_leader(r) for r in range(4)] == [True, False, False, True]
        assert topo.local_index(2) == 2 and topo.local_index(3) == 0
        assert topo.leader_index(3) == 1
        with pytest.raises(ValueError):
            topo.leader_index(1)  # not a leader

    def test_four_two_two_rank_queries(self):
        topo = FOUR_TWO_TWO
        assert topo.world_size == 8 and topo.num_hosts == 3
        assert topo.ranks_on_host(1) == (4, 5)
        assert topo.leaders == (0, 4, 6)
        assert topo.local_ranks(7) == (6, 7)
        assert topo.host(5) == 1

    @pytest.mark.parametrize("topo", [THREE_PLUS_ONE, FOUR_TWO_TWO])
    def test_intra_reduce_schedule_is_valid(self, topo):
        for host in range(topo.num_hosts):
            local = set(topo.ranks_on_host(host))
            leader = topo.leader_of(host)
            edges = intra_reduce_edges(topo, host)
            # Every non-leader sends exactly once; nothing leaves the host.
            senders = [src for src, _ in edges]
            assert sorted(senders) == sorted(local - {leader})
            assert all(src in local and dst in local for src, dst in edges)
            # Sequential validity: once a rank has sent, its partial sum
            # has left — it must not receive afterwards.
            done = set()
            for src, dst in edges:
                assert dst not in done
                done.add(src)
            assert leader not in done

    @pytest.mark.parametrize("topo", [THREE_PLUS_ONE, FOUR_TWO_TWO])
    def test_intra_bcast_reaches_host_from_leader(self, topo):
        for host in range(topo.num_hosts):
            local = set(topo.ranks_on_host(host))
            leader = topo.leader_of(host)
            reached = {leader}
            for src, dst in intra_bcast_edges(topo, host):
                assert src in reached  # senders already hold the result
                assert dst not in reached
                reached.add(dst)
            assert reached == local

    @pytest.mark.parametrize("topo", [THREE_PLUS_ONE, FOUR_TWO_TWO])
    def test_reduce_is_reversed_bcast(self, topo):
        for host in range(topo.num_hosts):
            down = intra_bcast_edges(topo, host)
            up = intra_reduce_edges(topo, host)
            assert up == [(dst, src) for src, dst in reversed(down)]

    def test_leader_ring(self):
        assert leader_ring_neighbors(THREE_PLUS_ONE, 0) == (3, 3)
        assert leader_ring_neighbors(THREE_PLUS_ONE, 3) == (0, 0)
        assert leader_ring_neighbors(FOUR_TWO_TWO, 0) == (6, 4)
        assert leader_ring_neighbors(FOUR_TWO_TWO, 4) == (0, 6)
        assert leader_ring_neighbors(FOUR_TWO_TWO, 6) == (4, 0)
        with pytest.raises(ValueError):
            leader_ring_neighbors(FOUR_TWO_TWO, 5)  # not a leader

    @given(
        counts=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5)
    )
    @settings(max_examples=60, deadline=None)
    def test_property_schedules_cover_any_layout(self, counts):
        topo = HostTopology.from_hosts(counts)
        assert topo.world_size == sum(counts)
        covered = set()
        for host in range(topo.num_hosts):
            local = set(topo.ranks_on_host(host))
            assert covered.isdisjoint(local)
            covered |= local
            reached = {topo.leader_of(host)}
            for src, dst in intra_bcast_edges(topo, host):
                assert src in reached
                reached.add(dst)
            assert reached == local
        assert covered == set(range(topo.world_size))
        assert topo.leaders == tuple(
            min(topo.ranks_on_host(h)) for h in range(topo.num_hosts)
        )
