"""Analytic latency models of synchronous and partial allreduce.

These closed-form models reproduce the microbenchmark of Fig. 8/9 in the
paper: every rank is skewed before calling the collective, and the average
latency *measured at each rank from its own call until it holds the
result* is reported, together with the Number of Active Processes (NAP).

The key structural facts the models capture:

* a synchronous allreduce cannot complete before the **slowest** process
  arrives, so every early process pays the full skew;
* a solo allreduce completes as soon as the **fastest** process arrives
  (plus the activation broadcast and the reduction itself), so late
  processes find the result already in their receive buffer and pay
  almost nothing;
* a majority allreduce completes once the **randomly designated**
  initiator arrives — on average the median process — so the average
  latency sits between the two, and on average half of the processes
  contribute fresh data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.simtime.network import DEFAULT_NETWORK, LogGPParams, message_time
from repro.utils.rng import SeedLike, seeded_rng

#: Size, in bytes, of an activation message (a tag plus a round number).
ACTIVATION_MESSAGE_BYTES = 16


@dataclass(frozen=True)
class CompressionModel:
    """Cost-model view of a gradient codec (:mod:`repro.compression`).

    ``wire_scale`` shrinks the bytes every hop carries; the encode /
    decode terms charge the transform itself (linear in the *dense*
    byte count, like the ``gamma`` reduction term).  ``reduce_closed``
    selects the wire path the exchange actually runs: reduce-closed
    codecs keep the configured allreduce at the encoded width, the rest
    take the allgather-based decode-reduce-encode path (see
    :mod:`repro.training.exchange`).  Build one from a codec with
    :meth:`repro.compression.GradientCodec.cost_model`.
    """

    name: str = "none"
    #: Encoded bytes per dense byte (e.g. 0.25 for fp16 over float64).
    wire_scale: float = 1.0
    #: Seconds per dense byte to encode / decode one buffer.
    encode_seconds_per_byte: float = 0.0
    decode_seconds_per_byte: float = 0.0
    #: Whether encoded payloads combine elementwise inside a reduction.
    reduce_closed: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.wire_scale or not math.isfinite(self.wire_scale):
            raise ValueError(f"wire_scale must be positive and finite, got {self.wire_scale}")
        for label in ("encode_seconds_per_byte", "decode_seconds_per_byte"):
            value = getattr(self, label)
            if value < 0 or not math.isfinite(value):
                raise ValueError(f"{label} must be non-negative and finite, got {value}")

    @property
    def is_identity(self) -> bool:
        """Whether the model changes nothing (the uncompressed baseline)."""
        return (
            self.wire_scale == 1.0
            and self.encode_seconds_per_byte == 0.0
            and self.decode_seconds_per_byte == 0.0
            and self.reduce_closed
        )


#: The uncompressed baseline model.
NO_COMPRESSION = CompressionModel()
#: Overhead paid by a late process that finds the collective already
#: completed (seconds): checking the flag, copying the receive buffer and
#: re-arming the persistent schedule.  Calibrated so the solo-allreduce
#: latency reduction lands in the paper's ~50x regime rather than at the
#: unrealistic "free" limit.
RESULT_CHECK_OVERHEAD = 2.0e-4


@dataclass(frozen=True)
class CollectiveLatencyResult:
    """Latency statistics of one collective invocation under skew."""

    #: Per-rank latency (seconds), measured from each rank's arrival.
    latencies: np.ndarray
    #: Completion time of the collective (seconds, absolute).
    completion_time: float
    #: Number of processes contributing fresh data (NAP).
    num_active: int
    #: Rank that initiated (or -1 for synchronous collectives).
    initiator: int

    @property
    def average_latency(self) -> float:
        return float(np.mean(self.latencies))

    @property
    def max_latency(self) -> float:
        return float(np.max(self.latencies))


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------
def _pipelined_round(
    msg_bytes: float, reduce_bytes: float, n_chunks: int, params: LogGPParams
) -> float:
    """Duration of one communication round pipelined in ``n_chunks`` segments.

    The round moves ``msg_bytes`` and combines ``reduce_bytes`` of data.
    Segment *k*'s reduction overlaps segment *k + 1*'s transmission, so
    the round costs one segment transfer to fill the pipe, ``n_chunks - 1``
    steady-state stages bounded by the slower of transfer and reduction,
    and one segment reduction to drain.  With ``n_chunks == 1`` this is
    exactly the unpipelined ``alpha + msg*beta + red*gamma``.
    """
    seg_net = params.alpha + (msg_bytes / n_chunks) * params.beta
    seg_red = (reduce_bytes / n_chunks) * params.gamma
    return seg_net + (n_chunks - 1) * max(seg_net, seg_red) + seg_red


def _ring_phase_times(
    nbytes: float, size: int, n_chunks: int, params: LogGPParams
) -> tuple:
    """``(reduce_scatter, allgather)`` durations of a chunked ring allreduce."""
    chunk = nbytes / size
    reduce_scatter = (size - 1) * _pipelined_round(chunk, chunk, n_chunks, params)
    allgather = (size - 1) * _pipelined_round(chunk, 0.0, n_chunks, params)
    return reduce_scatter, allgather


def _transform_time(nbytes: float, size: int, compression: CompressionModel) -> float:
    """Encode/decode cost of one compressed collective on the critical path.

    One encode of the dense buffer before the wire; for reduce-closed
    codecs one decode of the reduced result, for the allgather-based
    decode-reduce-encode path one decode per gathered payload (``size``
    of them) plus the dense combination charged via ``gamma`` by the
    caller.
    """
    decodes = 1 if compression.reduce_closed else size
    return nbytes * (
        compression.encode_seconds_per_byte
        + decodes * compression.decode_seconds_per_byte
    )


def _gather_exchange_time(
    nbytes: float, size: int, params: LogGPParams, compression: CompressionModel
) -> float:
    """Decode-reduce-encode exchange of one bucket (without fixed overhead).

    Non-reduce-closed codecs cannot be combined inside an allreduce, so
    the exchange allgathers the encoded payloads (``size - 1`` ring
    rounds, each carrying the compressed bucket) and reduces the decoded
    contributions densely at every rank.
    """
    wire = nbytes * compression.wire_scale
    rounds = (size - 1) * (params.alpha + wire * params.beta)
    combine = (size - 1) * nbytes * params.gamma
    return rounds + combine + _transform_time(nbytes, size, compression)


def allreduce_time(
    nbytes: int,
    size: int,
    algorithm: str = "recursive_doubling",
    params: LogGPParams = DEFAULT_NETWORK,
    n_chunks: int = 1,
    compression: Optional[CompressionModel] = None,
) -> float:
    """Duration of a synchronous allreduce once all participants are present.

    ``n_chunks`` mirrors the chunk-pipelined thread implementation
    (:mod:`repro.collectives.sync`): each round is segmented so reduction
    overlaps transmission; ``1`` reproduces the classic unpipelined cost.

    ``compression`` adds the codec terms: reduce-closed codecs run the
    compressed decode-reduce-encode *ring*
    (:func:`repro.collectives.sync.allreduce_compressed_ring`) with
    every hop's bytes shrunk by ``wire_scale`` plus the encode/decode
    transform — the ring schedule is modelled regardless of
    ``algorithm``, because that is what the exchange executes; other
    codecs run the allgather-based decode-reduce-encode exchange
    (see :func:`_gather_exchange_time`).
    """
    if nbytes < 0:
        raise ValueError(f"message size must be non-negative, got {nbytes}")
    if size < 1:
        raise ValueError("size must be >= 1")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    if compression is not None and not compression.is_identity:
        if size == 1:
            return params.collective_overhead
        if compression.reduce_closed:
            return allreduce_time(
                nbytes * compression.wire_scale, size, "ring", params, n_chunks
            ) + _transform_time(nbytes, size, compression)
        return params.collective_overhead + _gather_exchange_time(
            nbytes, size, params, compression
        )
    if size == 1:
        return params.collective_overhead
    rounds = math.ceil(math.log2(size))
    if algorithm == "recursive_doubling":
        per_round = _pipelined_round(nbytes, nbytes, n_chunks, params)
        return params.collective_overhead + rounds * per_round
    if algorithm == "ring":
        reduce_scatter, allgather = _ring_phase_times(nbytes, size, n_chunks, params)
        return params.collective_overhead + reduce_scatter + allgather
    if algorithm == "rabenseifner":
        if n_chunks == 1:
            halving = rounds * params.alpha + nbytes * (size - 1) / size * (
                params.beta + params.gamma
            )
            doubling = rounds * params.alpha + nbytes * (size - 1) / size * params.beta
            return params.collective_overhead + halving + doubling
        # Chunked: halving rounds move (and reduce) a geometric n/2, n/4,
        # ... sequence in pipelined segments; the doubling retrace keeps
        # whole messages.  The per-round sizes are normalised so the total
        # volume matches the unchunked closed form's n*(P-1)/P at every
        # world size (the raw geometric sum reaches 1 - 2^-rounds, which
        # differs at non-power-of-two P and would otherwise make the
        # chunked prediction jump discontinuously versus n_chunks=1).
        scale = ((size - 1) / size) / (1.0 - 0.5 ** rounds)
        round_bytes = [scale * nbytes / (1 << (r + 1)) for r in range(rounds)]
        halving = sum(
            _pipelined_round(b, b, n_chunks, params) for b in round_bytes
        )
        doubling = sum(
            _pipelined_round(b, 0.0, 1, params) for b in round_bytes
        )
        return params.collective_overhead + halving + doubling
    raise ValueError(f"unknown allreduce algorithm {algorithm!r}")


def fused_exchange_time(
    bucket_bytes: Sequence[float],
    size: int,
    algorithm: str = "ring",
    params: LogGPParams = DEFAULT_NETWORK,
    n_chunks: int = 1,
    compression: Optional[CompressionModel] = None,
) -> float:
    """Duration of a bucketed (fused) gradient exchange with pipelining.

    One collective is issued per fusion bucket, back to back.  For the
    ring algorithm the two phases of consecutive buckets overlap — bucket
    *b*'s allgather streams on the full-duplex links while bucket
    *b + 1*'s reduce-scatter starts — modelled by the classic two-stage
    pipeline recurrence::

        rs_end[b] = rs_end[b - 1] + RS_b
        ag_end[b] = max(rs_end[b], ag_end[b - 1]) + AG_b

    Non-ring algorithms have no phase split to overlap, so their buckets
    simply serialise.  The fixed ``collective_overhead`` is paid once:
    the fusion pipeline keeps one persistent collective armed.

    ``compression`` mirrors the compressed exchange: reduce-closed codecs
    run the *ring* bucket pipeline (the schedule
    :class:`~repro.training.exchange.SynchronousExchange` actually
    executes for them, whatever ``algorithm`` says) on the *encoded*
    bucket sizes and pay the encode/decode transform per bucket; other
    codecs replace each bucket's collective with the allgather-based
    decode-reduce-encode exchange (:func:`_gather_exchange_time`),
    serialised per bucket.
    """
    if not bucket_bytes:
        raise ValueError("bucket_bytes must not be empty")
    if any(b < 0 for b in bucket_bytes):
        raise ValueError(f"message size must be non-negative, got {list(bucket_bytes)}")
    if size < 1:
        raise ValueError("size must be >= 1")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    if size == 1:
        return params.collective_overhead
    if compression is not None and not compression.is_identity:
        if compression.reduce_closed:
            wire = [b * compression.wire_scale for b in bucket_bytes]
            transform = sum(
                _transform_time(b, size, compression) for b in bucket_bytes
            )
            return (
                fused_exchange_time(wire, size, "ring", params, n_chunks)
                + transform
            )
        total = sum(
            _gather_exchange_time(b, size, params, compression) for b in bucket_bytes
        )
        return params.collective_overhead + total
    if algorithm != "ring":
        total = sum(
            allreduce_time(b, size, algorithm, params, n_chunks) - params.collective_overhead
            for b in bucket_bytes
        )
        return params.collective_overhead + total
    rs_end = 0.0
    ag_end = 0.0
    for nbytes in bucket_bytes:
        reduce_scatter, allgather = _ring_phase_times(nbytes, size, n_chunks, params)
        rs_end = rs_end + reduce_scatter
        ag_end = max(rs_end, ag_end) + allgather
    return params.collective_overhead + ag_end


def sharded_exchange_time(
    bucket_bytes: Sequence[float],
    size: int,
    algorithm: str = "ring",
    params: LogGPParams = DEFAULT_NETWORK,
    n_chunks: int = 1,
    compression: Optional[CompressionModel] = None,
    update_seconds_per_byte: float = 0.0,
) -> float:
    """Duration of a ZeRO-1 sharded exchange (reduce-scatter / allgather).

    Mirrors :class:`repro.training.exchange.ShardedExchange`: every bucket
    is reduce-scattered, then the optimizer update runs on the owned
    ``1/P`` window, then every bucket's *parameters* are allgathered.  The
    phases are globally ordered (all scatters complete before the update),
    so buckets serialise within each phase and nothing overlaps across
    phases — unlike :func:`fused_exchange_time`'s ring recurrence.

    ``algorithm`` is a sharded-collective name: ``"ring"`` charges
    ``P - 1`` chunk rounds per phase, ``"halving"`` the recursive
    halving/doubling rounds of the Rabenseifner split.
    ``update_seconds_per_byte`` charges the shard-local optimizer update
    (zero keeps the model purely communication-bound; the dense baseline
    it is compared against pays ``P`` times this term *off* the wire).
    Reduce-closed ``compression`` shrinks every hop by ``wire_scale`` and
    pays the encode/decode transform per bucket, as the implementation's
    compressed ring does for both the gradient and parameter hops.
    """
    if not bucket_bytes:
        raise ValueError("bucket_bytes must not be empty")
    if any(b < 0 for b in bucket_bytes):
        raise ValueError(f"message size must be non-negative, got {list(bucket_bytes)}")
    if size < 1:
        raise ValueError("size must be >= 1")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    if update_seconds_per_byte < 0 or not math.isfinite(update_seconds_per_byte):
        raise ValueError(
            f"update_seconds_per_byte must be non-negative and finite, "
            f"got {update_seconds_per_byte}"
        )
    if algorithm not in ("ring", "halving"):
        raise ValueError(
            f"unknown sharded exchange algorithm {algorithm!r}; "
            f"the flat model covers 'ring' and 'halving'"
        )
    update = sum(bucket_bytes) / size * update_seconds_per_byte
    if size == 1:
        return params.collective_overhead + update
    transform = 0.0
    wire_scale = 1.0
    if compression is not None and not compression.is_identity:
        if not compression.reduce_closed:
            raise ValueError(
                f"sharded exchange supports reduce-closed codecs only, "
                f"got {compression.name!r}"
            )
        wire_scale = compression.wire_scale
        # Both the gradient scatter and the parameter gather are encoded.
        transform = 2.0 * sum(
            _transform_time(b, size, compression) for b in bucket_bytes
        )
    scatter = 0.0
    gather = 0.0
    rounds = math.ceil(math.log2(size))
    for nbytes in bucket_bytes:
        wire = nbytes * wire_scale
        if algorithm == "halving":
            scale = ((size - 1) / size) / (1.0 - 0.5 ** rounds)
            round_bytes = [scale * wire / (1 << (r + 1)) for r in range(rounds)]
            scatter += sum(
                _pipelined_round(b, b / wire_scale, n_chunks, params)
                for b in round_bytes
            )
            gather += sum(_pipelined_round(b, 0.0, 1, params) for b in round_bytes)
        else:
            rs, ag = _ring_phase_times(wire, size, n_chunks, params)
            # _ring_phase_times charges reduction on the wire bytes; the
            # compressed ring decodes and combines dense values, so the
            # gamma share stays dense regardless of wire_scale.
            scatter += rs + (size - 1) * (wire / size) * (1.0 / wire_scale - 1.0) * params.gamma
            gather += ag
    return params.collective_overhead + scatter + update + gather + transform


# ---------------------------------------------------------------------------
# two-tier (hierarchical) cost model
# ---------------------------------------------------------------------------
def _validate_hosts(ranks_per_host: Sequence[int]) -> List[int]:
    hosts = [int(n) for n in ranks_per_host]
    if not hosts or any(n < 1 for n in hosts):
        raise ValueError(
            f"ranks_per_host entries must be >= 1, got {list(ranks_per_host)}"
        )
    return hosts


def _intra_tree_rounds(ranks_per_host: Sequence[int]) -> int:
    """Depth of the deepest intra-host binomial tree (the critical host)."""
    return max(math.ceil(math.log2(n)) if n > 1 else 0 for n in ranks_per_host)


def hierarchical_allreduce_time(
    nbytes: float,
    ranks_per_host: Sequence[int],
    intra: LogGPParams,
    inter: LogGPParams,
    n_chunks: int = 1,
) -> float:
    """Duration of the two-tier allreduce on a calibrated two-tier fabric.

    Mirrors :func:`repro.collectives.sync.allreduce_hierarchical` with one
    :class:`LogGPParams` per link class: the intra-host reduce and
    broadcast trees are charged at the (fast) ``intra`` parameters, the
    leader ring — one rank per host, carrying the whole payload over the
    (slow) links — at the ``inter`` parameters.  The critical path runs
    through the *deepest* host's tree; single-host fabrics degenerate to
    the flat ring model under ``intra``, exactly like the implementation.
    """
    hosts = _validate_hosts(ranks_per_host)
    if len(hosts) == 1:
        return allreduce_time(int(nbytes), hosts[0], "ring", intra, n_chunks)
    rounds = _intra_tree_rounds(hosts)
    reduce_tree = rounds * _pipelined_round(nbytes, nbytes, n_chunks, intra)
    bcast_tree = rounds * _pipelined_round(nbytes, 0.0, 1, intra)
    rs, ag = _ring_phase_times(nbytes, len(hosts), n_chunks, inter)
    return intra.collective_overhead + reduce_tree + rs + ag + bcast_tree


def hierarchical_fused_exchange_time(
    bucket_bytes: Sequence[float],
    ranks_per_host: Sequence[int],
    intra: LogGPParams,
    inter: LogGPParams,
    n_chunks: int = 1,
    inter_scale: float = 1.0,
) -> float:
    """Bucketed two-tier exchange with cross-bucket pipelining.

    The intra-host trees and the inter-host leader ring occupy *different*
    links, so consecutive buckets overlap across all three stages — the
    three-stage generalisation of :func:`fused_exchange_time`'s
    recurrence::

        red_end[b] = red_end[b - 1] + RED_b                 (intra links)
        rs_end[b]  = max(red_end[b], rs_end[b - 1]) + RS_b  (inter links)
        ag_end[b]  = max(rs_end[b], ag_end[b - 1]) + AG_b + BC_b

    The broadcast of a bucket is charged serially after its allgather
    (it reuses the intra links the *next* bucket's reduce tree wants, so
    it does not pipeline for free).  The fixed overhead is paid once.

    ``inter_scale`` shrinks the bytes carried by the leader ring only —
    the compressed hierarchical exchange keeps the intra tiers dense and
    puts the codec's wire payload on the inter links alone (see
    :func:`repro.collectives.sync.allreduce_compressed_hierarchical`);
    the caller charges the encode/decode transform separately.
    """
    if not bucket_bytes:
        raise ValueError("bucket_bytes must not be empty")
    if not 0.0 < inter_scale or not math.isfinite(inter_scale):
        raise ValueError(f"inter_scale must be positive and finite, got {inter_scale}")
    hosts = _validate_hosts(ranks_per_host)
    if len(hosts) == 1:
        return fused_exchange_time(bucket_bytes, hosts[0], "ring", intra, n_chunks)
    rounds = _intra_tree_rounds(hosts)
    red_end = 0.0
    rs_end = 0.0
    ag_end = 0.0
    for nbytes in bucket_bytes:
        reduce_tree = rounds * _pipelined_round(nbytes, nbytes, n_chunks, intra)
        bcast_tree = rounds * _pipelined_round(nbytes, 0.0, 1, intra)
        rs, ag = _ring_phase_times(
            nbytes * inter_scale, len(hosts), n_chunks, inter
        )
        red_end = red_end + reduce_tree
        rs_end = max(red_end, rs_end) + rs
        ag_end = max(rs_end, ag_end) + ag + bcast_tree
    return intra.collective_overhead + ag_end


def broadcast_time(
    nbytes: int, size: int, params: LogGPParams = DEFAULT_NETWORK
) -> float:
    """Duration of a binomial-tree broadcast."""
    if size <= 1:
        return 0.0
    rounds = math.ceil(math.log2(size))
    return rounds * message_time(nbytes, params)


def activation_time(size: int, params: LogGPParams = DEFAULT_NETWORK) -> float:
    """Time for the activation broadcast to reach the farthest rank."""
    return broadcast_time(ACTIVATION_MESSAGE_BYTES, size, params)


# ---------------------------------------------------------------------------
# collective latency under skewed arrivals
# ---------------------------------------------------------------------------
def _as_arrivals(arrivals: Sequence[float]) -> np.ndarray:
    arr = np.asarray(arrivals, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 1:
        raise ValueError("arrivals must be a non-empty 1-D sequence")
    if np.any(arr < 0):
        raise ValueError("arrival times must be non-negative")
    return arr


def synchronous_allreduce_latencies(
    arrivals: Sequence[float],
    nbytes: int,
    algorithm: str = "recursive_doubling",
    params: LogGPParams = DEFAULT_NETWORK,
    compression: Optional[CompressionModel] = None,
) -> CollectiveLatencyResult:
    """Latencies of a fully synchronous allreduce (``MPI_Allreduce``)."""
    arr = _as_arrivals(arrivals)
    size = arr.size
    completion = float(arr.max()) + allreduce_time(
        nbytes, size, algorithm, params, compression=compression
    )
    latencies = completion - arr
    return CollectiveLatencyResult(
        latencies=latencies,
        completion_time=completion,
        num_active=size,
        initiator=-1,
    )


def _partial_latencies(
    arr: np.ndarray,
    initiator: int,
    nbytes: int,
    algorithm: str,
    params: LogGPParams,
    compression: Optional[CompressionModel] = None,
) -> CollectiveLatencyResult:
    size = arr.size
    start = float(arr[initiator])
    completion = (
        start
        + activation_time(size, params)
        + allreduce_time(nbytes, size, algorithm, params, compression=compression)
    )
    # A rank arriving before the completion waits for it; a rank arriving
    # later finds the result already in its receive buffer.
    latencies = np.where(
        arr <= completion, completion - arr, RESULT_CHECK_OVERHEAD
    )
    # Active processes contribute fresh data: they arrived no later than
    # the initiator (their gradient was in the send buffer when their
    # progress thread swapped it out upon activation).  The small
    # activation propagation window also admits ranks arriving just after
    # the initiator.
    window = float(arr[initiator]) + activation_time(size, params)
    num_active = int(np.sum(arr <= window))
    return CollectiveLatencyResult(
        latencies=latencies,
        completion_time=completion,
        num_active=num_active,
        initiator=int(initiator),
    )


def solo_allreduce_latencies(
    arrivals: Sequence[float],
    nbytes: int,
    algorithm: str = "recursive_doubling",
    params: LogGPParams = DEFAULT_NETWORK,
    compression: Optional[CompressionModel] = None,
) -> CollectiveLatencyResult:
    """Latencies of a solo allreduce: the earliest arrival initiates."""
    arr = _as_arrivals(arrivals)
    initiator = int(np.argmin(arr))
    return _partial_latencies(arr, initiator, nbytes, algorithm, params, compression)


def majority_allreduce_latencies(
    arrivals: Sequence[float],
    nbytes: int,
    algorithm: str = "recursive_doubling",
    params: LogGPParams = DEFAULT_NETWORK,
    seed: SeedLike = None,
    initiator: Optional[int] = None,
    compression: Optional[CompressionModel] = None,
) -> CollectiveLatencyResult:
    """Latencies of a majority allreduce: a random rank is designated.

    Pass ``initiator`` to fix the designated rank (used when iterating the
    microbenchmark with a shared PRNG), or ``seed`` to draw one.
    """
    arr = _as_arrivals(arrivals)
    if initiator is None:
        rng = seeded_rng(seed)
        initiator = int(rng.integers(0, arr.size))
    if not 0 <= initiator < arr.size:
        raise ValueError(f"initiator {initiator} out of range")
    return _partial_latencies(arr, initiator, nbytes, algorithm, params, compression)


def quorum_allreduce_latencies(
    arrivals: Sequence[float],
    nbytes: int,
    quorum: int,
    algorithm: str = "recursive_doubling",
    params: LogGPParams = DEFAULT_NETWORK,
    compression: Optional[CompressionModel] = None,
) -> CollectiveLatencyResult:
    """Latencies of a quorum allreduce: the Q-th arrival initiates."""
    arr = _as_arrivals(arrivals)
    if not 1 <= quorum <= arr.size:
        raise ValueError(f"quorum must be in [1, {arr.size}], got {quorum}")
    order = np.argsort(arr, kind="stable")
    initiator = int(order[quorum - 1])
    return _partial_latencies(arr, initiator, nbytes, algorithm, params, compression)
