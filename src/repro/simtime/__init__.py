"""Discrete-event simulation and analytic cost models.

The paper's latency microbenchmark (Fig. 9) and its large-scale runs (64
GPU nodes on Piz Daint) need a network substrate that we do not have in a
single-process reproduction.  This package provides two complementary
substitutes:

* an **analytic LogGP-style cost model** (:mod:`repro.simtime.network`,
  :mod:`repro.simtime.collective_model`) for point-to-point messages and
  for the collective algorithms (recursive doubling, ring, binomial
  broadcast, plus the activation + reduction structure of solo/majority
  allreduce);
* a small **discrete-event engine** (:mod:`repro.simtime.engine`) on which
  the collectives are simulated message by message
  (:mod:`repro.simtime.collective_sim`), validating the analytic model;
* a **training-time projector** (:mod:`repro.simtime.training_model`) that
  converts per-rank per-step compute times into end-to-end training time
  under synchronous SGD, solo, majority and quorum eager-SGD — this is
  what produces the paper-scale time axes of Figures 10-13.
"""

from repro.simtime.network import LogGPParams, DEFAULT_NETWORK, message_time
from repro.simtime.engine import Event, EventQueue, Simulator, SimProcess
from repro.simtime.collective_model import (
    allreduce_time,
    broadcast_time,
    activation_time,
    solo_allreduce_latencies,
    majority_allreduce_latencies,
    synchronous_allreduce_latencies,
    CollectiveLatencyResult,
)
from repro.simtime.collective_sim import simulate_partial_allreduce
from repro.simtime.skew import (
    linear_skew,
    random_linear_skew,
    constant_arrivals,
    lognormal_noise,
)
from repro.simtime.training_model import (
    StepTimeline,
    project_training_time,
    TrainingProjection,
)

__all__ = [
    "LogGPParams",
    "DEFAULT_NETWORK",
    "message_time",
    "Event",
    "EventQueue",
    "Simulator",
    "SimProcess",
    "allreduce_time",
    "broadcast_time",
    "activation_time",
    "solo_allreduce_latencies",
    "majority_allreduce_latencies",
    "synchronous_allreduce_latencies",
    "CollectiveLatencyResult",
    "simulate_partial_allreduce",
    "linear_skew",
    "random_linear_skew",
    "constant_arrivals",
    "lognormal_noise",
    "StepTimeline",
    "project_training_time",
    "TrainingProjection",
]
