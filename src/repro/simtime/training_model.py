"""Projection of end-to-end training time under different SGD variants.

The paper's throughput figures (Fig. 10 top, Fig. 11a) and time-to-accuracy
figures (Figs. 10-13) measure wall-clock time on a 8-64 GPU cluster with
hundreds of milliseconds of injected or inherent imbalance per step.  The
reproduction runs the *semantics* (which gradients are combined, how stale
they are) with scaled-down delays on threads, and uses this module to
project the *time axis* back to paper scale: given the per-rank per-step
compute (+ injected delay) durations, it replays the synchronisation
structure of each SGD variant and returns when every training step
completes.

The structural difference the projection captures is exactly the paper's
argument (Fig. 1):

* synchronous SGD pays ``sum over steps of the slowest rank`` (a sum of
  maxima);
* eager-SGD with solo allreduce pays roughly ``the slowest rank's own
  total compute`` (a maximum of sums), because nobody waits;
* majority allreduce sits in between: each step waits for the randomly
  designated initiator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.simtime.collective_model import activation_time, allreduce_time
from repro.simtime.network import DEFAULT_NETWORK, LogGPParams
from repro.utils.rng import SeedLike, seeded_rng


@dataclass
class StepTimeline:
    """Per-rank, per-step workload durations.

    Attributes
    ----------
    durations:
        Array of shape ``(num_steps, num_ranks)``: seconds of local work
        (forward + backward + injected delay) of each rank at each step.
    """

    durations: np.ndarray

    def __post_init__(self) -> None:
        self.durations = np.asarray(self.durations, dtype=np.float64)
        if self.durations.ndim != 2:
            raise ValueError("durations must have shape (num_steps, num_ranks)")
        if np.any(self.durations < 0):
            raise ValueError("durations must be non-negative")

    @property
    def num_steps(self) -> int:
        return int(self.durations.shape[0])

    @property
    def num_ranks(self) -> int:
        return int(self.durations.shape[1])


@dataclass(frozen=True)
class TrainingProjection:
    """Result of replaying a training run through the timing model."""

    #: SGD variant that was replayed.
    mode: str
    #: Completion time (seconds) of every training step.
    step_completion_times: np.ndarray
    #: Number of ranks contributing fresh gradients at every step.
    num_active_per_step: np.ndarray
    #: Total training time (seconds): when the last rank finished its last step.
    total_time: float
    #: Average throughput in steps/second.
    throughput: float

    def time_at_step(self, step: int) -> float:
        """Completion time of a given step (paper plots use epoch ends)."""
        return float(self.step_completion_times[step])


_VALID_MODES = ("sync", "solo", "majority", "quorum")


def project_training_time(
    timeline: StepTimeline,
    mode: str = "sync",
    gradient_bytes: int = 4 * 1024 * 1024,
    params: LogGPParams = DEFAULT_NETWORK,
    algorithm: str = "recursive_doubling",
    seed: SeedLike = None,
    quorum: Optional[int] = None,
    model_sync_period: Optional[int] = None,
) -> TrainingProjection:
    """Replay a training run and return its projected timing.

    Parameters
    ----------
    timeline:
        Per-rank, per-step local work durations.
    mode:
        ``"sync"`` (synchronous allreduce every step), ``"solo"``,
        ``"majority"`` or ``"quorum"``.
    gradient_bytes:
        Size of the gradient allreduce payload (4 bytes per parameter for
        the fp32 gradients used in the paper).
    quorum:
        Number of arrivals required in quorum mode.
    model_sync_period:
        If given, every ``model_sync_period`` steps an additional global
        synchronisation (weight averaging) is inserted, mirroring the
        periodic model synchronisation of eager-SGD (Section 5).
    """
    if mode not in _VALID_MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {_VALID_MODES}")
    durations = timeline.durations
    num_steps, num_ranks = durations.shape
    if num_ranks < 1 or num_steps < 1:
        raise ValueError("timeline must contain at least one step and one rank")
    if mode == "quorum":
        if quorum is None:
            quorum = max(1, num_ranks // 2)
        if not 1 <= quorum <= num_ranks:
            raise ValueError(f"quorum must be in [1, {num_ranks}], got {quorum}")

    rng = seeded_rng(seed)
    reduce_cost = allreduce_time(gradient_bytes, num_ranks, algorithm, params)
    act_cost = activation_time(num_ranks, params)

    ready = np.zeros(num_ranks)
    step_completion = np.zeros(num_steps)
    nap = np.zeros(num_steps, dtype=np.int64)

    for t in range(num_steps):
        arrivals = ready + durations[t]
        if mode == "sync":
            completion = float(arrivals.max()) + reduce_cost
            ready = np.full(num_ranks, completion)
            nap[t] = num_ranks
        else:
            if mode == "solo":
                initiator_arrival = float(arrivals.min())
            elif mode == "majority":
                initiator = int(rng.integers(0, num_ranks))
                initiator_arrival = float(arrivals[initiator])
            else:  # quorum
                initiator_arrival = float(np.sort(arrivals)[quorum - 1])
            completion = initiator_arrival + act_cost + reduce_cost
            nap[t] = int(np.sum(arrivals <= initiator_arrival + act_cost))
            # Fast ranks block until the round completes; slow ranks find
            # the result ready and continue immediately.
            ready = np.maximum(arrivals, completion)
        step_completion[t] = float(ready.max())

        if model_sync_period and (t + 1) % model_sync_period == 0:
            # Periodic model synchronisation: a synchronous allreduce of
            # the weights involving every rank.
            sync_done = float(ready.max()) + reduce_cost
            ready = np.full(num_ranks, sync_done)
            step_completion[t] = sync_done

    total = float(ready.max())
    return TrainingProjection(
        mode=mode,
        step_completion_times=step_completion,
        num_active_per_step=nap,
        total_time=total,
        throughput=num_steps / total if total > 0 else math.inf,
    )
