"""A small discrete-event simulation engine.

Processes are generator coroutines that ``yield`` simulation commands:

* ``("wait", dt)`` — advance the process's local time by ``dt`` seconds;
* ``("send", dest, payload, nbytes)`` — deliver a message to process
  ``dest`` after the network delay given by the engine's cost model;
* ``("recv",)`` — block until a message is available, which is then sent
  back into the generator as the value of the ``yield`` expression.

The engine is deterministic: events at equal times are ordered by their
insertion sequence number.  It is intentionally minimal — just enough to
simulate collective algorithms message-by-message for the latency
microbenchmark — but fully generic, and reused by the collective
simulator and by tests that validate the analytic cost model.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.simtime.network import DEFAULT_NETWORK, LogGPParams, message_time

SimCommand = Tuple
SimGenerator = Generator[SimCommand, Any, None]


@dataclass(order=True)
class Event:
    """A scheduled callback in the event queue."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class EventQueue:
    """Priority queue of events ordered by (time, insertion sequence)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        if time < 0:
            raise ValueError(f"cannot schedule an event at negative time {time}")
        event = Event(time, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class SimProcess:
    """Bookkeeping for one simulated process (rank)."""

    def __init__(self, pid: int, generator: SimGenerator) -> None:
        self.pid = pid
        self.generator = generator
        self.inbox: Deque[Any] = deque()
        self.waiting_for_message = False
        self.finished = False
        self.finish_time: Optional[float] = None
        self.local_time = 0.0


class Simulator:
    """Runs a set of simulated processes to completion.

    Parameters
    ----------
    network:
        Cost model used for ``send`` commands.
    """

    def __init__(self, network: LogGPParams = DEFAULT_NETWORK) -> None:
        self.network = network
        self.queue = EventQueue()
        self.processes: Dict[int, SimProcess] = {}
        self.now = 0.0
        self.messages_sent = 0

    # ------------------------------------------------------------- build
    def add_process(
        self,
        pid: int,
        factory: Callable[["Simulator", int], SimGenerator],
        start_time: float = 0.0,
    ) -> SimProcess:
        """Register a process; its generator starts at ``start_time``."""
        if pid in self.processes:
            raise ValueError(f"duplicate process id {pid}")
        proc = SimProcess(pid, factory(self, pid))
        self.processes[pid] = proc
        self.queue.push(start_time, lambda: self._resume(proc, None))
        return proc

    # --------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue empties (or ``until`` is reached)."""
        while self.queue:
            event = self.queue.pop()
            if until is not None and event.time > until:
                self.now = until
                return self.now
            self.now = event.time
            event.callback()
        return self.now

    # ---------------------------------------------------------- plumbing
    def _resume(self, proc: SimProcess, value: Any) -> None:
        if proc.finished:
            return
        proc.local_time = self.now
        try:
            command = proc.generator.send(value)
        except StopIteration:
            proc.finished = True
            proc.finish_time = self.now
            return
        self._dispatch(proc, command)

    def _dispatch(self, proc: SimProcess, command: SimCommand) -> None:
        kind = command[0]
        if kind == "wait":
            _, dt = command
            if dt < 0:
                raise ValueError(f"process {proc.pid}: negative wait {dt}")
            self.queue.push(self.now + dt, lambda: self._resume(proc, None))
        elif kind == "send":
            _, dest, payload, nbytes = command
            self._send(proc, dest, payload, nbytes)
            # Sending is asynchronous: the sender resumes immediately
            # after the injection overhead alpha.
            self.queue.push(
                self.now + self.network.alpha, lambda: self._resume(proc, None)
            )
        elif kind == "recv":
            self._recv(proc)
        else:
            raise ValueError(f"process {proc.pid}: unknown command {command!r}")

    def _send(self, proc: SimProcess, dest: int, payload: Any, nbytes: int) -> None:
        if dest not in self.processes:
            raise ValueError(f"process {proc.pid}: unknown destination {dest}")
        self.messages_sent += 1
        target = self.processes[dest]
        arrival = self.now + message_time(nbytes, self.network)

        def deliver() -> None:
            target.inbox.append(payload)
            if target.waiting_for_message:
                target.waiting_for_message = False
                msg = target.inbox.popleft()
                self._resume(target, msg)

        self.queue.push(arrival, deliver)

    def _recv(self, proc: SimProcess) -> None:
        if proc.inbox:
            msg = proc.inbox.popleft()
            # Consume the message immediately (zero-time local dequeue).
            self.queue.push(self.now, lambda: self._resume(proc, msg))
        else:
            proc.waiting_for_message = True

    # ------------------------------------------------------------- query
    def finish_times(self) -> Dict[int, float]:
        """Completion time of every finished process."""
        return {
            pid: proc.finish_time
            for pid, proc in self.processes.items()
            if proc.finish_time is not None
        }
