"""Message-level simulation of partial and synchronous allreduce.

This module re-implements the collective protocols on top of the
discrete-event engine (:mod:`repro.simtime.engine`), message by message,
and serves two purposes:

* it validates the closed-form latency model of
  :mod:`repro.simtime.collective_model` (tests assert that the two agree
  within a tolerance);
* it lets the microbenchmark be driven at message granularity when the
  analytic model's assumptions (e.g. no congestion between rounds) are to
  be checked.

The protocols mirror the thread-backed implementation of
:mod:`repro.collectives.partial`: an activation dissemination broadcast
(solo: earliest arrival initiates; majority: the designated rank
initiates) followed by a recursive-doubling reduction performed by the
always-available progress threads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.simtime.collective_model import ACTIVATION_MESSAGE_BYTES, RESULT_CHECK_OVERHEAD
from repro.simtime.engine import Simulator
from repro.simtime.network import DEFAULT_NETWORK, LogGPParams
from repro.utils.rng import SeedLike, seeded_rng


@dataclass(frozen=True)
class SimulatedCollectiveResult:
    """Outcome of one simulated collective invocation."""

    #: Time at which each rank's progress thread finished the reduction.
    completion_times: np.ndarray
    #: Time at which each rank's progress thread was activated.
    activation_times: np.ndarray
    #: Per-rank latency as measured by the microbenchmark (from the rank's
    #: own arrival until it holds the result).
    latencies: np.ndarray
    #: Number of ranks whose application thread had arrived by the time
    #: their progress thread swapped out the send buffer.
    num_active: int
    #: Rank that initiated the collective (-1 for synchronous).
    initiator: int
    #: Total number of messages exchanged.
    messages: int


def _check_power_of_two(size: int) -> int:
    if size < 1 or size & (size - 1):
        raise ValueError(
            f"the message-level simulation supports power-of-two sizes only, got {size}"
        )
    return int(math.log2(size)) if size > 1 else 0


def simulate_partial_allreduce(
    arrivals: Sequence[float],
    nbytes: int,
    mode: str = "solo",
    params: LogGPParams = DEFAULT_NETWORK,
    seed: SeedLike = None,
    initiator: Optional[int] = None,
    n_chunks: int = 1,
) -> SimulatedCollectiveResult:
    """Simulate one allreduce invocation at message granularity.

    Parameters
    ----------
    arrivals:
        Per-rank arrival times (seconds) of the *application* thread at
        the collective call.
    nbytes:
        Size of each rank's contribution in bytes.
    mode:
        ``"solo"``, ``"majority"``, ``"quorum:<Q>"`` or ``"sync"``.
    initiator:
        Designated initiator for majority mode (drawn from ``seed`` when
        omitted).
    n_chunks:
        Pipeline each reduction round in this many message segments so
        the per-segment reduction arithmetic overlaps the transmission of
        later segments, mirroring the chunked thread implementation.
    """
    arr = np.asarray(arrivals, dtype=np.float64)
    size = arr.size
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    num_rounds = _check_power_of_two(size)
    depth = max(1, num_rounds) if size > 1 else 0
    seg_bytes = nbytes / n_chunks

    if mode == "solo":
        init_rank = int(np.argmin(arr))
    elif mode == "majority":
        if initiator is None:
            rng = seeded_rng(seed)
            initiator = int(rng.integers(0, size))
        init_rank = int(initiator)
    elif mode.startswith("quorum"):
        quorum = int(mode.split(":", 1)[1]) if ":" in mode else max(1, size // 2)
        order = np.argsort(arr, kind="stable")
        init_rank = int(order[quorum - 1])
    elif mode == "sync":
        init_rank = -1
    else:
        raise ValueError(f"unknown mode {mode!r}")

    sim = Simulator(params)
    activation_times = np.zeros(size)
    completion_times = np.zeros(size)

    def make_process(pid: int):
        def proc(simulator: Simulator, _pid: int):
            pending: List = []

            # ---------------- activation phase ----------------
            if mode == "sync":
                yield ("wait", float(arr[pid]))
            elif pid == init_rank:
                yield ("wait", float(arr[pid]))
                for j in range(depth):
                    dest = (pid + (1 << j)) % size
                    if dest != pid:
                        yield ("send", dest, ("act", j), ACTIVATION_MESSAGE_BYTES)
            else:
                # Wait for the first activation message and forward it.
                while True:
                    msg = yield ("recv",)
                    if msg[0] == "act":
                        j_in = msg[1]
                        break
                    pending.append(msg)
                for j in range(j_in + 1, depth):
                    dest = (pid + (1 << j)) % size
                    if dest != pid:
                        yield ("send", dest, ("act", j), ACTIVATION_MESSAGE_BYTES)
            activation_times[pid] = simulator.now

            # ---------------- reduction phase ----------------
            for k in range(num_rounds):
                partner = pid ^ (1 << k)
                # All segments of the round go out eagerly; combining a
                # received segment (the gamma wait) then overlaps the
                # flight of the later segments — the chunked pipeline.
                for seg in range(n_chunks):
                    yield ("send", partner, ("red", k, seg), seg_bytes)
                # Consume the round's matching segments; buffer reduction
                # messages from faster partners that are already in a
                # later round, drop duplicate activations.
                matched = 0
                for i in reversed(range(len(pending))):
                    if matched < n_chunks and pending[i][0] == "red" and pending[i][1] == k:
                        pending.pop(i)
                        matched += 1
                        yield ("wait", seg_bytes * params.gamma)
                while matched < n_chunks:
                    msg = yield ("recv",)
                    if msg[0] == "red" and msg[1] == k:
                        matched += 1
                        yield ("wait", seg_bytes * params.gamma)
                    elif msg[0] != "act":
                        pending.append(msg)
            completion_times[pid] = simulator.now

        return proc

    for pid in range(size):
        sim.add_process(pid, make_process(pid))
    sim.run()

    if mode == "sync":
        latencies = completion_times - arr
        num_active = size
    else:
        # A rank arriving after its progress thread completed the round
        # only pays the cost of checking the receive buffer.
        latencies = np.where(
            arr <= completion_times,
            completion_times - arr,
            RESULT_CHECK_OVERHEAD,
        )
        num_active = int(np.sum(arr <= activation_times))
    return SimulatedCollectiveResult(
        completion_times=completion_times,
        activation_times=activation_times,
        latencies=latencies,
        num_active=num_active,
        initiator=init_rank,
        messages=sim.messages_sent,
    )
