"""Arrival-time (skew) patterns for the latency microbenchmark.

The microbenchmark of Fig. 8/9 in the paper skews the processes linearly
("``usleep(pid * 1000)``", i.e. rank ``i`` is delayed by ``i``
milliseconds) before calling the collective.  These helpers generate that
pattern and a few variants used by tests and ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, seeded_rng


def linear_skew(size: int, step_ms: float = 1.0) -> np.ndarray:
    """Arrival times ``[0, step, 2*step, ...]`` in seconds (paper's Fig. 8)."""
    if size < 1:
        raise ValueError("size must be >= 1")
    return np.arange(size, dtype=np.float64) * (step_ms / 1000.0)


def random_linear_skew(
    size: int, step_ms: float = 1.0, seed: SeedLike = None
) -> np.ndarray:
    """Linear skew assigned to a random permutation of the ranks.

    The set of delays is identical to :func:`linear_skew`; only the
    mapping of delay to rank is shuffled, which is how the paper's
    simulated cloud-noise experiments pick the delayed ranks at random.
    """
    rng = seeded_rng(seed)
    return linear_skew(size, step_ms)[rng.permutation(size)]


def constant_arrivals(size: int, offset_ms: float = 0.0) -> np.ndarray:
    """All ranks arrive at the same time (perfectly balanced workload)."""
    if size < 1:
        raise ValueError("size must be >= 1")
    return np.full(size, offset_ms / 1000.0, dtype=np.float64)


def lognormal_noise(
    size: int,
    median_ms: float = 450.0,
    sigma: float = 0.2,
    floor_ms: float = 0.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Cloud-like arrival noise: lognormal with a long right tail (Fig. 4)."""
    rng = seeded_rng(seed)
    samples = rng.lognormal(mean=np.log(max(median_ms, 1e-9)), sigma=sigma, size=size)
    return (np.maximum(samples, floor_ms)) / 1000.0


def delayed_subset(
    size: int,
    num_delayed: int,
    delay_ms: float,
    base_ms: float = 0.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Delay a random subset of ``num_delayed`` ranks by ``delay_ms``.

    This matches the injection scheme of Sections 6.2.1/6.2.2: at every
    training step a few randomly chosen ranks are delayed by a fixed
    amount while the rest proceed immediately.
    """
    if not 0 <= num_delayed <= size:
        raise ValueError(f"num_delayed must be in [0, {size}], got {num_delayed}")
    rng = seeded_rng(seed)
    arrivals = np.full(size, base_ms / 1000.0, dtype=np.float64)
    chosen = rng.choice(size, size=num_delayed, replace=False)
    arrivals[chosen] += delay_ms / 1000.0
    return arrivals
