"""LogGP-style network cost model.

The model follows the classic LogGP parametrisation: a message of ``n``
bytes between two ranks costs ``alpha + n * beta`` seconds, where
``alpha`` captures latency plus per-message overhead and ``beta`` is the
inverse bandwidth.  Reduction arithmetic contributes ``gamma`` seconds per
reduced byte.  The defaults approximate the Cray Aries interconnect of Piz
Daint used in the paper (a few microseconds of latency, ~10 GB/s per-node
effective bandwidth), which is sufficient to reproduce the *shape* of the
latency figures; absolute values are not the target.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass, fields


@dataclass(frozen=True)
class LogGPParams:
    """Network and reduction cost parameters (seconds and seconds/byte).

    Parameters are validated on construction: every field must be a
    finite, non-negative number (NaN would silently poison every cost
    the model produces downstream).
    """

    #: Per-message latency + overhead (seconds).
    alpha: float = 2.0e-6
    #: Inverse bandwidth (seconds per byte).
    beta: float = 1.0e-10
    #: Reduction compute cost (seconds per byte of reduced data).
    gamma: float = 2.5e-11
    #: Fixed software overhead of entering a collective (seconds).
    collective_overhead: float = 5.0e-6

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject non-finite or negative parameters."""
        for f in fields(self):
            value = getattr(self, f.name)
            # numbers.Real admits numpy scalars (np.float32, np.int64, ...)
            # alongside the builtin int/float.
            if (
                not isinstance(value, numbers.Real)
                or not math.isfinite(value)
                or value < 0
            ):
                raise ValueError(
                    f"network parameter {f.name} must be a finite non-negative "
                    f"number, got {value!r}"
                )


#: Default parameters used by the microbenchmark and the projections.
DEFAULT_NETWORK = LogGPParams()


def message_time(nbytes: int, params: LogGPParams = DEFAULT_NETWORK) -> float:
    """Time to move one ``nbytes`` message between two ranks."""
    if nbytes < 0:
        raise ValueError(f"message size must be non-negative, got {nbytes}")
    return params.alpha + nbytes * params.beta


def reduction_time(nbytes: int, params: LogGPParams = DEFAULT_NETWORK) -> float:
    """Time to combine ``nbytes`` of data with a reduction operator."""
    if nbytes < 0:
        raise ValueError(f"reduction size must be non-negative, got {nbytes}")
    return nbytes * params.gamma
