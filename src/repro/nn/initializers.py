"""Weight initialisers."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, seeded_rng


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initialiser (biases, batch-norm shifts)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-ones initialiser (batch-norm scales)."""
    return np.ones(shape, dtype=np.float64)


def normal(shape: Tuple[int, ...], std: float = 0.01, seed: SeedLike = None) -> np.ndarray:
    """Gaussian initialiser with the given standard deviation."""
    rng = seeded_rng(seed)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int, seed: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialiser."""
    rng = seeded_rng(seed)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], fan_in: int, seed: SeedLike = None) -> np.ndarray:
    """He initialiser, appropriate for ReLU networks (used by ResNets)."""
    rng = seeded_rng(seed)
    std = math.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: Tuple[int, int], gain: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """Orthogonal initialiser (recurrent weight matrices of the LSTM)."""
    rng = seeded_rng(seed)
    rows, cols = shape
    a = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(a)  # q has orthonormal columns, shape (max, min)
    if rows >= cols:
        out = q[:rows, :cols]
    else:
        out = q[:cols, :rows].T
    return gain * out
