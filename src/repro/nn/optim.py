"""Optimizers and learning-rate schedules.

The optimizer is the update rule ``U`` of Algorithm 1/2 in the paper: given
the (globally averaged) gradients it produces the weight update.  The
distributed layer (:mod:`repro.training`) always passes *already reduced*
gradients, so these optimizers are purely local.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.parameters import _ordered_named_parameters


class LearningRateSchedule:
    """Base class: maps a step index to a learning rate."""

    def lr(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        return self.lr(step)


class ConstantLR(LearningRateSchedule):
    """A constant learning rate."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError("learning rate must be positive")
        self.value = float(value)

    def lr(self, step: int) -> float:
        return self.value


class StepDecayLR(LearningRateSchedule):
    """Piecewise-constant decay: multiply by ``factor`` at each milestone."""

    def __init__(self, base: float, milestones: Iterable[int], factor: float = 0.1) -> None:
        if base <= 0:
            raise ValueError("base learning rate must be positive")
        self.base = float(base)
        self.milestones = sorted(int(m) for m in milestones)
        self.factor = float(factor)

    def lr(self, step: int) -> float:
        drops = sum(1 for m in self.milestones if step >= m)
        return self.base * (self.factor**drops)


class WarmupLR(LearningRateSchedule):
    """Linear warmup followed by another schedule (large-batch recipes)."""

    def __init__(self, target: LearningRateSchedule, warmup_steps: int) -> None:
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        self.target = target
        self.warmup_steps = int(warmup_steps)

    def lr(self, step: int) -> float:
        base = self.target.lr(step)
        if self.warmup_steps == 0 or step >= self.warmup_steps:
            return base
        return base * (step + 1) / self.warmup_steps


def _as_schedule(lr) -> LearningRateSchedule:
    if isinstance(lr, LearningRateSchedule):
        return lr
    return ConstantLR(float(lr))


class Optimizer:
    """Base optimizer operating on a module's parameters."""

    def __init__(self, module: Module, lr) -> None:
        self.module = module
        self.schedule = _as_schedule(lr)
        self.step_count = 0

    @property
    def parameters(self) -> List[Parameter]:
        return self.module.parameters()

    def zero_grad(self) -> None:
        self.module.zero_grad()

    def current_lr(self) -> float:
        return self.schedule.lr(self.step_count)

    def step(self) -> None:
        """Apply one update using the gradients stored in the parameters."""
        lr = self.current_lr()
        self._apply(lr)
        self.step_count += 1

    def _apply(self, lr: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------ sharding
    def step_windows(
        self,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        keys: Sequence[str],
    ) -> None:
        """One update step applied to *owned* parameter windows only (ZeRO-1).

        ``params[i]`` is a writable view of a flat-parameter window,
        ``grads[i]`` the matching (already reduced and averaged)
        gradient window, and ``keys[i]`` a stable identifier — the
        exchange uses ``"lo:hi"`` in global flat coordinates — that the
        lazily allocated per-window state (momentum, moments) is keyed
        by.  Because every update rule here is elementwise, applying it
        to windows of the flat vector is bit-identical to the per-parameter
        :meth:`step`; a rank therefore only ever materialises state for
        the ~1/P of the model it owns.  Counts as one step.
        """
        if not (len(params) == len(grads) == len(keys)):
            raise ValueError(
                f"step_windows needs parallel params/grads/keys, got lengths "
                f"{len(params)}/{len(grads)}/{len(keys)}"
            )
        lr = self.current_lr()
        for param, grad, key in zip(params, grads, keys):
            if param.shape != grad.shape:
                raise ValueError(
                    f"window {key!r}: parameter window has shape {param.shape} "
                    f"but gradient window has {grad.shape}"
                )
            if param.size:
                self._apply_window(param, grad, str(key), lr)
        self.step_count += 1

    def _apply_window(self, param: np.ndarray, grad: np.ndarray, key: str, lr: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------ state
    #: Names of this optimizer's per-entry state arrays (e.g.
    #: ``("velocity",)`` for momentum SGD); empty for stateless rules.
    state_slots: tuple = ()

    def _slot_store(self, slot: str, windowed: bool) -> Dict:
        """Subclass storage dict for ``slot`` (``id(param)``- or window-keyed)."""
        raise KeyError(slot)

    def state_dict(self) -> Dict:
        """Serializable optimizer state (checkpoint / sharded round-trip).

        Layout::

            {"step_count": int,
             "param_state":  {param_name: {slot: ndarray}},
             "window_state": {"lo:hi":    {slot: ndarray}}}

        Per-parameter state is keyed by the module's canonical parameter
        names, window state by the owned-window keys of
        :meth:`step_windows`; arrays are copies, so mutating the live
        optimizer does not corrupt a saved checkpoint.
        """
        param_state: Dict[str, Dict[str, np.ndarray]] = {}
        window_state: Dict[str, Dict[str, np.ndarray]] = {}
        for slot in self.state_slots:
            by_param = self._slot_store(slot, windowed=False)
            for name, param in _ordered_named_parameters(self.module):
                arr = by_param.get(id(param))
                if arr is not None:
                    param_state.setdefault(name, {})[slot] = np.array(arr, copy=True)
            for key, arr in self._slot_store(slot, windowed=True).items():
                window_state.setdefault(key, {})[slot] = np.array(arr, copy=True)
        return {
            "step_count": int(self.step_count),
            "param_state": param_state,
            "window_state": window_state,
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore :meth:`state_dict` output; replaces all current state."""
        self.step_count = int(state.get("step_count", 0))
        param_state = state.get("param_state", {})
        window_state = state.get("window_state", {})
        named = dict(_ordered_named_parameters(self.module))
        unknown = sorted(set(param_state) - set(named))
        if unknown:
            raise ValueError(
                f"state_dict references parameter(s) {unknown} not present "
                f"in the module"
            )
        for slot in self.state_slots:
            by_param = self._slot_store(slot, windowed=False)
            by_window = self._slot_store(slot, windowed=True)
            by_param.clear()
            by_window.clear()
            for name, slots in param_state.items():
                if slot in slots:
                    arr = np.array(slots[slot], dtype=np.float64, copy=True)
                    if arr.shape != named[name].data.shape:
                        raise ValueError(
                            f"state for parameter {name!r} slot {slot!r} has "
                            f"shape {arr.shape}, parameter has "
                            f"{named[name].data.shape}"
                        )
                    by_param[id(named[name])] = arr
            for key, slots in window_state.items():
                if slot in slots:
                    by_window[str(key)] = np.array(
                        slots[slot], dtype=np.float64, copy=True
                    )

    def state_bytes(self) -> int:
        """Bytes held in optimizer state arrays (0 for stateless rules).

        Under ZeRO-1 sharding only the owned windows are ever allocated,
        so this gauge drops to ~1/P of the unsharded footprint — the
        metric exported as ``repro_optimizer_state_bytes``.
        """
        total = 0
        for slot in self.state_slots:
            for arr in self._slot_store(slot, windowed=False).values():
                total += arr.nbytes
            for arr in self._slot_store(slot, windowed=True).values():
                total += arr.nbytes
        return total


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional weight decay."""

    def __init__(self, module: Module, lr, weight_decay: float = 0.0) -> None:
        super().__init__(module, lr)
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.weight_decay = weight_decay

    def _apply(self, lr: float) -> None:
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            param.data -= lr * grad

    def _apply_window(self, param: np.ndarray, grad: np.ndarray, key: str, lr: float) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        param -= lr * grad


class MomentumSGD(Optimizer):
    """SGD with (optionally Nesterov) momentum — the paper's update rule."""

    def __init__(
        self,
        module: Module,
        lr,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(module, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}
        self._window_velocity: Dict[str, np.ndarray] = {}

    state_slots = ("velocity",)

    def _slot_store(self, slot: str, windowed: bool) -> Dict:
        if slot != "velocity":
            raise KeyError(slot)
        return self._window_velocity if windowed else self._velocity

    def _apply(self, lr: float) -> None:
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            vel = self._velocity.get(id(param))
            if vel is None:
                vel = np.zeros_like(param.data)
            vel = self.momentum * vel + grad
            self._velocity[id(param)] = vel
            update = grad + self.momentum * vel if self.nesterov else vel
            param.data -= lr * update

    def _apply_window(self, param: np.ndarray, grad: np.ndarray, key: str, lr: float) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        vel = self._window_velocity.get(key)
        if vel is None:
            vel = np.zeros_like(param)
        vel = self.momentum * vel + grad
        self._window_velocity[key] = vel
        update = grad + self.momentum * vel if self.nesterov else vel
        param -= lr * update


class Adam(Optimizer):
    """Adam optimizer."""

    def __init__(
        self,
        module: Module,
        lr,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(module, lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._window_m: Dict[str, np.ndarray] = {}
        self._window_v: Dict[str, np.ndarray] = {}

    state_slots = ("m", "v")

    def _slot_store(self, slot: str, windowed: bool) -> Dict:
        if slot == "m":
            return self._window_m if windowed else self._m
        if slot == "v":
            return self._window_v if windowed else self._v
        raise KeyError(slot)

    def _apply(self, lr: float) -> None:
        t = self.step_count + 1
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            param.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _apply_window(self, param: np.ndarray, grad: np.ndarray, key: str, lr: float) -> None:
        t = self.step_count + 1
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        m = self._window_m.get(key)
        v = self._window_v.get(key)
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad**2
        self._window_m[key] = m
        self._window_v[key] = v
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
