"""Optimizers and learning-rate schedules.

The optimizer is the update rule ``U`` of Algorithm 1/2 in the paper: given
the (globally averaged) gradients it produces the weight update.  The
distributed layer (:mod:`repro.training`) always passes *already reduced*
gradients, so these optimizers are purely local.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Module, Parameter


class LearningRateSchedule:
    """Base class: maps a step index to a learning rate."""

    def lr(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        return self.lr(step)


class ConstantLR(LearningRateSchedule):
    """A constant learning rate."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError("learning rate must be positive")
        self.value = float(value)

    def lr(self, step: int) -> float:
        return self.value


class StepDecayLR(LearningRateSchedule):
    """Piecewise-constant decay: multiply by ``factor`` at each milestone."""

    def __init__(self, base: float, milestones: Iterable[int], factor: float = 0.1) -> None:
        if base <= 0:
            raise ValueError("base learning rate must be positive")
        self.base = float(base)
        self.milestones = sorted(int(m) for m in milestones)
        self.factor = float(factor)

    def lr(self, step: int) -> float:
        drops = sum(1 for m in self.milestones if step >= m)
        return self.base * (self.factor**drops)


class WarmupLR(LearningRateSchedule):
    """Linear warmup followed by another schedule (large-batch recipes)."""

    def __init__(self, target: LearningRateSchedule, warmup_steps: int) -> None:
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        self.target = target
        self.warmup_steps = int(warmup_steps)

    def lr(self, step: int) -> float:
        base = self.target.lr(step)
        if self.warmup_steps == 0 or step >= self.warmup_steps:
            return base
        return base * (step + 1) / self.warmup_steps


def _as_schedule(lr) -> LearningRateSchedule:
    if isinstance(lr, LearningRateSchedule):
        return lr
    return ConstantLR(float(lr))


class Optimizer:
    """Base optimizer operating on a module's parameters."""

    def __init__(self, module: Module, lr) -> None:
        self.module = module
        self.schedule = _as_schedule(lr)
        self.step_count = 0

    @property
    def parameters(self) -> List[Parameter]:
        return self.module.parameters()

    def zero_grad(self) -> None:
        self.module.zero_grad()

    def current_lr(self) -> float:
        return self.schedule.lr(self.step_count)

    def step(self) -> None:
        """Apply one update using the gradients stored in the parameters."""
        lr = self.current_lr()
        self._apply(lr)
        self.step_count += 1

    def _apply(self, lr: float) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional weight decay."""

    def __init__(self, module: Module, lr, weight_decay: float = 0.0) -> None:
        super().__init__(module, lr)
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.weight_decay = weight_decay

    def _apply(self, lr: float) -> None:
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            param.data -= lr * grad


class MomentumSGD(Optimizer):
    """SGD with (optionally Nesterov) momentum — the paper's update rule."""

    def __init__(
        self,
        module: Module,
        lr,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(module, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def _apply(self, lr: float) -> None:
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            vel = self._velocity.get(id(param))
            if vel is None:
                vel = np.zeros_like(param.data)
            vel = self.momentum * vel + grad
            self._velocity[id(param)] = vel
            update = grad + self.momentum * vel if self.nesterov else vel
            param.data -= lr * update


class Adam(Optimizer):
    """Adam optimizer."""

    def __init__(
        self,
        module: Module,
        lr,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(module, lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _apply(self, lr: float) -> None:
        t = self.step_count + 1
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            param.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
