"""Classification metrics: top-1 and top-k accuracy."""

from __future__ import annotations

import numpy as np


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of samples whose true label is among the top-k predictions.

    The paper reports top-1 and top-5 train/test accuracy for ResNet-50 on
    ImageNet and for the LSTM on UCF101.
    """
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got {logits.shape}")
    batch, num_classes = logits.shape
    if labels.shape != (batch,):
        raise ValueError(f"labels must have shape ({batch},), got {labels.shape}")
    if not 1 <= k <= num_classes:
        raise ValueError(f"k must be in [1, {num_classes}], got {k}")
    if batch == 0:
        return 0.0
    # argpartition gives the top-k columns in O(n) per row.
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (topk == labels[:, None]).any(axis=1)
    return float(hits.mean())


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy."""
    return topk_accuracy(logits, labels, k=1)
