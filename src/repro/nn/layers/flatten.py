"""Flatten layer."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Flattens all dimensions after the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._input_shape = x.shape if self.training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("Flatten.backward called before forward")
        return np.asarray(grad_output, dtype=np.float64).reshape(self._input_shape)
