"""Batch normalisation."""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module


class BatchNorm(Module):
    """Batch normalisation over the channel dimension.

    Works for both dense activations ``(batch, features)`` and
    convolutional activations ``(batch, channels, height, width)``; the
    statistics are computed per feature/channel over all remaining axes.
    Running statistics are tracked for evaluation mode.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features < 1:
            raise ValueError("num_features must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = self.add_parameter("gamma", initializers.ones((num_features,)))
        self.beta = self.add_parameter("beta", initializers.zeros((num_features,)))
        # Running statistics are state, not parameters: they are averaged
        # by the periodic model synchronisation but never receive gradients.
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache = None

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _reduce_axes(x: np.ndarray) -> tuple:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm expects 2-D or 4-D inputs, got shape {x.shape}")

    def _broadcast(self, v: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return v[None, :]
        return v[None, :, None, None]

    # ------------------------------------------------------------ forward
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        axes = self._reduce_axes(x)
        channel_axis = 1 if x.ndim == 4 else 1
        if x.shape[channel_axis] != self.num_features:
            raise ValueError(
                f"BatchNorm expected {self.num_features} features, got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._broadcast(mean, x.ndim)) * self._broadcast(inv_std, x.ndim)
        out = self._broadcast(self.gamma.data, x.ndim) * x_hat + self._broadcast(
            self.beta.data, x.ndim
        )
        if self.training:
            count = x.size // self.num_features
            self._cache = (x_hat, inv_std, axes, count, x.ndim)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("BatchNorm.backward called before a training-mode forward")
        x_hat, inv_std, axes, count, ndim = self._cache
        g = np.asarray(grad_output, dtype=np.float64)
        self.gamma.grad += (g * x_hat).sum(axis=axes)
        self.beta.grad += g.sum(axis=axes)
        gamma_b = self._broadcast(self.gamma.data, ndim)
        inv_std_b = self._broadcast(inv_std, ndim)
        # Standard batch-norm backward: account for the dependence of the
        # batch statistics on every element.
        g_xhat = g * gamma_b
        mean_g = self._broadcast(g_xhat.mean(axis=axes), ndim)
        mean_gx = self._broadcast((g_xhat * x_hat).mean(axis=axes), ndim)
        return inv_std_b * (g_xhat - mean_g - x_hat * mean_gx)

    # ------------------------------------------------------------- state
    def state_arrays(self) -> dict:
        """Non-trainable state that periodic model sync should average."""
        return {"running_mean": self.running_mean, "running_var": self.running_var}


class LayerNorm(Module):
    """Layer normalisation over the last dimension (used by the Transformer)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.eps = eps
        self.gamma = self.add_parameter("gamma", initializers.ones((dim,)))
        self.beta = self.add_parameter("beta", initializers.zeros((dim,)))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.dim:
            raise ValueError(f"LayerNorm expected last dim {self.dim}, got {x.shape}")
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std) if self.training else None
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("LayerNorm.backward called before forward")
        x_hat, inv_std = self._cache
        g = np.asarray(grad_output, dtype=np.float64)
        reduce_axes = tuple(range(g.ndim - 1))
        self.gamma.grad += (g * x_hat).sum(axis=reduce_axes)
        self.beta.grad += g.sum(axis=reduce_axes)
        g_xhat = g * self.gamma.data
        mean_g = g_xhat.mean(axis=-1, keepdims=True)
        mean_gx = (g_xhat * x_hat).mean(axis=-1, keepdims=True)
        return inv_std * (g_xhat - mean_g - x_hat * mean_gx)
