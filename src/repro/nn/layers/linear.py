"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module
from repro.utils.rng import SeedLike


class Dense(Module):
    """Affine layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to include the additive bias.
    init:
        ``"xavier"`` (default), ``"he"`` or ``"normal"``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init: str = "xavier",
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = bias
        if init == "xavier":
            weight = initializers.xavier_uniform(
                (in_features, out_features), in_features, out_features, seed=seed
            )
        elif init == "he":
            weight = initializers.he_normal((in_features, out_features), in_features, seed=seed)
        elif init == "normal":
            weight = initializers.normal((in_features, out_features), std=0.01, seed=seed)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.W = self.add_parameter("W", weight)
        if bias:
            self.b = self.add_parameter("b", initializers.zeros((out_features,)))
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Dense expected last dimension {self.in_features}, got {x.shape}"
            )
        self._input = x if self.training else None
        out = x @ self.W.data
        if self.use_bias:
            out = out + self.b.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("Dense.backward called before forward")
        x = self._input
        grad_output = np.asarray(grad_output, dtype=np.float64)
        # Collapse any leading batch/time dimensions for the weight update.
        x2d = x.reshape(-1, self.in_features)
        g2d = grad_output.reshape(-1, self.out_features)
        self.W.grad += x2d.T @ g2d
        if self.use_bias:
            self.b.grad += g2d.sum(axis=0)
        grad_input = grad_output @ self.W.data.T
        return grad_input.reshape(x.shape)
