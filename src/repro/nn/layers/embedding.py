"""Token embedding layer."""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module
from repro.utils.rng import SeedLike


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors.

    Input: integer array of shape ``(batch, seq_len)``; output
    ``(batch, seq_len, dim)``.  Used by the tiny Transformer that models
    the WMT-style variable-length language workload.
    """

    def __init__(self, vocab_size: int, dim: int, seed: SeedLike = None) -> None:
        super().__init__()
        if vocab_size < 1 or dim < 1:
            raise ValueError("vocab_size and dim must be positive")
        self.vocab_size = vocab_size
        self.dim = dim
        self.W = self.add_parameter(
            "W", initializers.normal((vocab_size, dim), std=0.02, seed=seed)
        )
        self._tokens: np.ndarray | None = None

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens)
        if not np.issubdtype(tokens.dtype, np.integer):
            raise TypeError(f"Embedding expects integer token ids, got {tokens.dtype}")
        if tokens.min(initial=0) < 0 or tokens.max(initial=0) >= self.vocab_size:
            raise ValueError("token id out of range")
        self._tokens = tokens if self.training else None
        return self.W.data[tokens]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._tokens is None:
            raise RuntimeError("Embedding.backward called before forward")
        g = np.asarray(grad_output, dtype=np.float64)
        np.add.at(self.W.grad, self._tokens, g)
        # Token ids are not differentiable; return a zero gradient with the
        # input's shape so containers can keep chaining.
        return np.zeros(self._tokens.shape, dtype=np.float64)
