"""Neural-network layers with explicit forward/backward passes."""

from repro.nn.layers.container import Sequential, Residual
from repro.nn.layers.linear import Dense
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.norm import BatchNorm
from repro.nn.layers.pooling import MaxPool2D, AvgPool2D, GlobalAvgPool2D
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.lstm import LSTM, LSTMCell
from repro.nn.layers.attention import MultiHeadSelfAttention, TransformerEncoderBlock

__all__ = [
    "Sequential",
    "Residual",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Conv2D",
    "BatchNorm",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Dropout",
    "Flatten",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "MultiHeadSelfAttention",
    "TransformerEncoderBlock",
]
