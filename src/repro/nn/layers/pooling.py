"""Spatial pooling layers for ``(batch, channels, height, width)`` inputs."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class MaxPool2D(Module):
    """Non-overlapping max pooling (kernel == stride).

    Restricting to non-overlapping windows keeps the backward pass a pure
    scatter of the incoming gradient to the arg-max positions, which is
    all the paper's ResNet blocks need (their pooling layers use 2x2/s2
    and 3x3/s... reduced here to the stride==kernel case).
    """

    def __init__(self, kernel_size: int = 2) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        b, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(
                f"MaxPool2D requires H and W divisible by {k}, got {x.shape}"
            )
        out_h, out_w = h // k, w // k
        windows = x.reshape(b, c, out_h, k, out_w, k)
        out = windows.max(axis=(3, 5))
        if not self.training:
            # Inference needs no gradient routing: skip the (expensive)
            # tie-broken argmax mask entirely.
            self._cache = None
            return out
        mask = windows == out[:, :, :, None, :, None]
        # Break ties: keep only the first maximal element per window so the
        # gradient is not double counted.  The window axes (3 and 5) are
        # moved together before flattening so each row of `flat` is one
        # pooling window.
        flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(b, c, out_h, out_w, k * k)
        first = np.zeros_like(flat)
        idx = flat.argmax(axis=-1)
        np.put_along_axis(first, idx[..., None], 1, axis=-1)
        mask = first.reshape(b, c, out_h, out_w, k, k).transpose(0, 1, 2, 4, 3, 5)
        self._cache = (mask, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("MaxPool2D.backward called before forward")
        mask, input_shape = self._cache
        b, c, h, w = input_shape
        k = self.kernel_size
        g = np.asarray(grad_output, dtype=np.float64)
        expanded = mask * g[:, :, :, None, :, None]
        return expanded.reshape(b, c, h, w)


class AvgPool2D(Module):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int = 2) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self._input_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        b, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(
                f"AvgPool2D requires H and W divisible by {k}, got {x.shape}"
            )
        self._input_shape = x.shape if self.training else None
        return x.reshape(b, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("AvgPool2D.backward called before forward")
        b, c, h, w = self._input_shape
        k = self.kernel_size
        g = np.asarray(grad_output, dtype=np.float64) / (k * k)
        g = np.repeat(np.repeat(g, k, axis=2), k, axis=3)
        return g


class GlobalAvgPool2D(Module):
    """Average over the spatial dimensions, returning ``(batch, channels)``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ValueError(f"GlobalAvgPool2D expects 4-D input, got {x.shape}")
        self._input_shape = x.shape if self.training else None
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("GlobalAvgPool2D.backward called before forward")
        b, c, h, w = self._input_shape
        g = np.asarray(grad_output, dtype=np.float64) / (h * w)
        return np.broadcast_to(g[:, :, None, None], (b, c, h, w)).copy()
