"""Long short-term memory layers.

The UCF101 case study in the paper trains a 2,048-wide single-layer LSTM
over per-frame features extracted by Inception v3; the computational cost
of a batch is proportional to the number of frames, which is the source of
its inherent load imbalance (Section 2.1).  These layers provide the same
structure: an :class:`LSTMCell` for a single time step and an
:class:`LSTM` that unrolls over variable-length sequences with masking and
supports full backpropagation through time.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module
from repro.utils.rng import SeedLike, seeded_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class LSTMCell(Module):
    """A single LSTM step.

    Gate layout follows the usual convention: the concatenated projection
    produces ``[input, forget, cell(candidate), output]`` pre-activations.

    Parameters
    ----------
    input_dim:
        Size of the per-step input feature vector.
    hidden_dim:
        Size of the hidden and cell states.
    forget_bias:
        Constant added to the forget-gate pre-activation at initialisation
        (the usual +1 trick stabilising early training).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        forget_bias: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if input_dim < 1 or hidden_dim < 1:
            raise ValueError("input_dim and hidden_dim must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        rng = seeded_rng(seed)
        self.Wx = self.add_parameter(
            "Wx",
            initializers.xavier_uniform(
                (input_dim, 4 * hidden_dim), input_dim, hidden_dim, seed=rng
            ),
        )
        self.Wh = self.add_parameter(
            "Wh", initializers.orthogonal((hidden_dim, 4 * hidden_dim), seed=rng)
        )
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = forget_bias
        self.b = self.add_parameter("b", bias)
        self._cache = None

    def forward(
        self,
        x: np.ndarray,
        state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One step: returns ``(h_next, c_next)``."""
        x = np.asarray(x, dtype=np.float64)
        batch = x.shape[0]
        if state is None:
            h_prev = np.zeros((batch, self.hidden_dim))
            c_prev = np.zeros((batch, self.hidden_dim))
        else:
            h_prev, c_prev = state
        z = x @ self.Wx.data + h_prev @ self.Wh.data + self.b.data
        H = self.hidden_dim
        i = _sigmoid(z[:, :H])
        f = _sigmoid(z[:, H : 2 * H])
        g = np.tanh(z[:, 2 * H : 3 * H])
        o = _sigmoid(z[:, 3 * H :])
        c_next = f * c_prev + i * g
        h_next = o * np.tanh(c_next)
        self._cache = (x, h_prev, c_prev, i, f, g, o, c_next) if self.training else None
        return h_next, c_next

    def backward(
        self, grad_h: np.ndarray, grad_c: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one step.

        Parameters
        ----------
        grad_h:
            Gradient with respect to ``h_next``.
        grad_c:
            Gradient with respect to ``c_next`` flowing in from the next
            time step (``None`` for the last step).

        Returns
        -------
        (grad_x, grad_h_prev, grad_c_prev)
        """
        if self._cache is None:
            raise RuntimeError("LSTMCell.backward called before forward")
        x, h_prev, c_prev, i, f, g, o, c_next = self._cache
        H = self.hidden_dim
        grad_h = np.asarray(grad_h, dtype=np.float64)
        if grad_c is None:
            grad_c = np.zeros_like(c_next)
        tanh_c = np.tanh(c_next)
        do = grad_h * tanh_c
        dc = grad_c + grad_h * o * (1.0 - tanh_c**2)
        di = dc * g
        df = dc * c_prev
        dg = dc * i
        dc_prev = dc * f
        dz = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        self.Wx.grad += x.T @ dz
        self.Wh.grad += h_prev.T @ dz
        self.b.grad += dz.sum(axis=0)
        grad_x = dz @ self.Wx.data.T
        grad_h_prev = dz @ self.Wh.data.T
        return grad_x, grad_h_prev, dc_prev


class LSTM(Module):
    """Unrolled LSTM over (possibly variable-length) sequences.

    Input shape: ``(batch, time, input_dim)`` plus an optional ``lengths``
    vector.  Time steps at or beyond a sequence's length are masked: the
    hidden and cell states carry over unchanged, so the final state of
    every sequence equals its state at its own last valid step — exactly
    the "take the output at the last frame" semantics of the paper's video
    classifier, while still allowing rectangular batches.

    ``return_sequences=False`` (default) returns the final hidden state
    ``(batch, hidden_dim)``; ``True`` returns all hidden states
    ``(batch, time, hidden_dim)``.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        return_sequences: bool = False,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.return_sequences = return_sequences
        self.cell = LSTMCell(input_dim, hidden_dim, seed=seed)
        self._cache = None

    def forward(
        self, x: np.ndarray, lengths: Optional[np.ndarray] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                f"LSTM expected input (B, T, {self.input_dim}), got {x.shape}"
            )
        batch, time, _ = x.shape
        if lengths is None:
            lengths = np.full(batch, time, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.shape != (batch,):
            raise ValueError(f"lengths must have shape ({batch},), got {lengths.shape}")
        if np.any(lengths < 1) or np.any(lengths > time):
            raise ValueError("sequence lengths must be in [1, time]")

        h = np.zeros((batch, self.hidden_dim))
        c = np.zeros((batch, self.hidden_dim))
        step_caches: List = []
        hs = np.zeros((batch, time, self.hidden_dim))
        for t in range(time):
            mask = (t < lengths).astype(np.float64)[:, None]
            h_new, c_new = self.cell.forward(x[:, t, :], (h, c))
            cell_cache = self.cell._cache
            h = mask * h_new + (1.0 - mask) * h
            c = mask * c_new + (1.0 - mask) * c
            hs[:, t, :] = h
            if self.training:
                step_caches.append((cell_cache, mask))
        self._cache = (step_caches, x.shape, lengths) if self.training else None
        if self.return_sequences:
            return hs
        return h

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("LSTM.backward called before forward")
        step_caches, input_shape, lengths = self._cache
        batch, time, _ = input_shape
        grad_output = np.asarray(grad_output, dtype=np.float64)

        if self.return_sequences:
            if grad_output.shape != (batch, time, self.hidden_dim):
                raise ValueError("gradient shape mismatch for return_sequences=True")
            grad_hs = grad_output
        else:
            if grad_output.shape != (batch, self.hidden_dim):
                raise ValueError("gradient shape mismatch for return_sequences=False")
            grad_hs = None

        grad_x = np.zeros(input_shape)
        grad_h = np.zeros((batch, self.hidden_dim))
        grad_c = np.zeros((batch, self.hidden_dim))
        if grad_hs is None:
            # The final state is the state at each sequence's last valid
            # step; the carried-over masking below routes the gradient to
            # the right time step automatically, so we can seed it at the
            # last unrolled step.
            grad_h = grad_output.copy()

        for t in reversed(range(time)):
            if grad_hs is not None:
                grad_h = grad_h + grad_hs[:, t, :]
            cell_cache, mask = step_caches[t]
            # Masked sequences carried their state through unchanged, so
            # only the masked-in part of the gradient flows into the cell.
            gh_cell = grad_h * mask
            gc_cell = grad_c * mask
            self.cell._cache = cell_cache
            gx, gh_prev, gc_prev = self.cell.backward(gh_cell, gc_cell)
            grad_x[:, t, :] = gx
            # Carry the masked-out portion straight through to t-1.
            grad_h = gh_prev + grad_h * (1.0 - mask)
            grad_c = gc_prev + grad_c * (1.0 - mask)
        return grad_x
