"""Self-attention and a Transformer encoder block.

The paper's language-processing workload (Section 2.2) is a Transformer
trained on WMT16; its per-batch cost grows with the sentence length, which
is the second source of inherent load imbalance.  The tiny encoder block
here exercises that code path: multi-head scaled-dot-product self-attention
with optional padding masks, a position-wise feed-forward network and
pre-norm residual connections.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn import initializers
from repro.nn.layers.linear import Dense
from repro.nn.layers.norm import LayerNorm
from repro.nn.module import Module
from repro.utils.rng import SeedLike, seeded_rng


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class MultiHeadSelfAttention(Module):
    """Multi-head scaled dot-product self-attention.

    Input/output shape ``(batch, seq, dim)``.  An optional boolean padding
    mask of shape ``(batch, seq)`` marks valid positions; attention scores
    toward padded positions are set to ``-inf`` before the softmax.
    """

    def __init__(self, dim: int, num_heads: int = 4, seed: SeedLike = None) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} must be divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        rng = seeded_rng(seed)
        self.wq = Dense(dim, dim, seed=rng)
        self.wk = Dense(dim, dim, seed=rng)
        self.wv = Dense(dim, dim, seed=rng)
        self.wo = Dense(dim, dim, seed=rng)
        self._cache = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, s, _ = x.shape
        return x.reshape(b, s, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, s, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, h * d)

    def forward(
        self, x: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.dim:
            raise ValueError(f"expected input (B, S, {self.dim}), got {x.shape}")
        q = self._split_heads(self.wq(x))
        k = self._split_heads(self.wk(x))
        v = self._split_heads(self.wv(x))
        scale = 1.0 / math.sqrt(self.head_dim)
        scores = np.einsum("bhqd,bhkd->bhqk", q, k) * scale
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            scores = np.where(mask[:, None, None, :], scores, -1e30)
        attn = _softmax(scores, axis=-1)
        context = np.einsum("bhqk,bhkd->bhqd", attn, v)
        merged = self._merge_heads(context)
        out = self.wo(merged)
        self._cache = (q, k, v, attn, scale, x.shape) if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("attention backward called before forward")
        q, k, v, attn, scale, input_shape = self._cache
        g_merged = self.wo.backward(np.asarray(grad_output, dtype=np.float64))
        b, s, _ = input_shape
        g_context = g_merged.reshape(b, s, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)
        g_attn = np.einsum("bhqd,bhkd->bhqk", g_context, v)
        g_v = np.einsum("bhqk,bhqd->bhkd", attn, g_context)
        # Softmax backward per row.
        dot = (g_attn * attn).sum(axis=-1, keepdims=True)
        g_scores = attn * (g_attn - dot)
        g_scores = g_scores * scale
        g_q = np.einsum("bhqk,bhkd->bhqd", g_scores, k)
        g_k = np.einsum("bhqk,bhqd->bhkd", g_scores, q)
        grad = self.wq.backward(self._merge_heads(g_q))
        grad = grad + self.wk.backward(self._merge_heads(g_k))
        grad = grad + self.wv.backward(self._merge_heads(g_v))
        return grad


class FeedForward(Module):
    """Position-wise feed-forward network (Dense -> ReLU -> Dense)."""

    def __init__(self, dim: int, hidden_dim: int, seed: SeedLike = None) -> None:
        super().__init__()
        rng = seeded_rng(seed)
        self.fc1 = Dense(dim, hidden_dim, seed=rng)
        self.fc2 = Dense(hidden_dim, dim, seed=rng)
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        hidden = self.fc1(x)
        mask = hidden > 0
        self._mask = mask if self.training else None
        return self.fc2(hidden * mask)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("FeedForward.backward called before forward")
        g = self.fc2.backward(grad_output)
        g = g * self._mask
        return self.fc1.backward(g)


class TransformerEncoderBlock(Module):
    """Pre-norm Transformer encoder block.

    ``y = x + MHSA(LN(x));  out = y + FFN(LN(y))``
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 4,
        ffn_dim: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(seed)
        ffn_dim = ffn_dim or 4 * dim
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, seed=rng)
        self.norm2 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_dim, seed=rng)

    def forward(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        y = x + self.attn.forward(self.norm1(x), mask=mask)
        out = y + self.ffn(self.norm2(y))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g = np.asarray(grad_output, dtype=np.float64)
        g_y = g + self.norm2.backward(self.ffn.backward(g))
        g_x = g_y + self.norm1.backward(self.attn.backward(g_y))
        return g_x
