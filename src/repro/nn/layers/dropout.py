"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import SeedLike, seeded_rng


class Dropout(Module):
    """Randomly zeroes activations during training (inverted scaling).

    The paper cites dropout as one of the random perturbations deep
    learning already tolerates — the same robustness eager-SGD exploits —
    so the substrate includes it both for fidelity of the models and as a
    knob in robustness tests.
    """

    def __init__(self, rate: float = 0.5, seed: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = seeded_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
