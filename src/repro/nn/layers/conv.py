"""2-D convolution implemented with im2col.

Inputs use the ``(batch, channels, height, width)`` layout.  The layer is
deliberately straightforward — im2col + a single matrix multiplication —
which is fast enough for the small ResNet variants used by the
reproduction while keeping the backward pass easy to verify numerically.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module
from repro.utils.rng import SeedLike


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold sliding windows of ``x`` into columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(batch * out_h * out_w, channels * kernel * kernel)``.
    """
    batch, channels, height, width = x.shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"convolution output would be empty for input {x.shape}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    padded = np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    cols = np.empty((batch, channels, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for i in range(kernel):
        i_end = i + stride * out_h
        for j in range(kernel):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:stride, j:j_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Fold columns back into an image, accumulating overlapping windows."""
    batch, channels, height, width = input_shape
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    cols6 = cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    for i in range(kernel):
        i_end = i + stride * out_h
        for j in range(kernel):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols6[:, :, i, j, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2D(Module):
    """2-D convolution layer.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel edge length.
    stride, padding:
        Stride and zero padding applied symmetrically.
    bias:
        Whether to add a per-output-channel bias.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid kernel/stride/padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = bias
        fan_in = in_channels * kernel_size * kernel_size
        self.W = self.add_parameter(
            "W",
            initializers.he_normal(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, seed=seed
            ),
        )
        if bias:
            self.b = self.add_parameter("b", initializers.zeros((out_channels,)))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected input (B, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        w2d = self.W.data.reshape(self.out_channels, -1)
        out = cols @ w2d.T
        if self.use_bias:
            out = out + self.b.data
        batch = x.shape[0]
        out = out.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (x.shape, cols, out_h, out_w) if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("Conv2D.backward called before forward")
        input_shape, cols, out_h, out_w = self._cache
        batch = input_shape[0]
        g = np.asarray(grad_output, dtype=np.float64)
        g2d = g.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, self.out_channels)
        w2d = self.W.data.reshape(self.out_channels, -1)
        self.W.grad += (g2d.T @ cols).reshape(self.W.data.shape)
        if self.use_bias:
            self.b.grad += g2d.sum(axis=0)
        grad_cols = g2d @ w2d
        return col2im(
            grad_cols,
            input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            out_h,
            out_w,
        )
