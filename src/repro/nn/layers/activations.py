"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        mask = x > 0
        self._mask = mask if self.training else None
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("ReLU.backward called before forward")
        return grad_output * self._mask


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        self._output = out if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("Sigmoid.backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(np.asarray(x, dtype=np.float64))
        self._output = out if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("Tanh.backward called before forward")
        return grad_output * (1.0 - self._output**2)
