"""Composite modules: sequential chains and residual blocks."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Chains sub-modules; backward runs them in reverse order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layer_names: List[str] = []
        for i, layer in enumerate(layers):
            name = f"layer{i}"
            self.add_module(name, layer)
            self._layer_names.append(name)

    @property
    def layers(self) -> List[Module]:
        return [getattr(self, name) for name in self._layer_names]

    def append(self, layer: Module) -> "Sequential":
        name = f"layer{len(self._layer_names)}"
        self.add_module(name, layer)
        self._layer_names.append(name)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def __len__(self) -> int:
        return len(self._layer_names)


class Residual(Module):
    """A residual block ``y = f(x) + shortcut(x)`` (Fig. 5 of the paper).

    Parameters
    ----------
    body:
        The residual function ``f``.
    shortcut:
        Optional projection applied to ``x`` on the skip path (used when
        the body changes the number of channels or the spatial size);
        identity when omitted.
    """

    def __init__(self, body: Module, shortcut: Module | None = None) -> None:
        super().__init__()
        self.body = body
        self.has_shortcut = shortcut is not None
        if shortcut is not None:
            self.shortcut = shortcut

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.body(x)
        skip = self.shortcut(x) if self.has_shortcut else x
        if main.shape != skip.shape:
            raise ValueError(
                f"residual branch shapes differ: body {main.shape} vs skip {skip.shape}"
            )
        return main + skip

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_main = self.body.backward(grad_output)
        grad_skip = (
            self.shortcut.backward(grad_output) if self.has_shortcut else grad_output
        )
        return grad_main + grad_skip
