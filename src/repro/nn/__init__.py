"""Pure-NumPy neural-network substrate.

The paper evaluates eager-SGD on TensorFlow models (an MLP, ResNet-32,
ResNet-50 and an Inception+LSTM video classifier).  This package provides
a small but complete deep-learning substrate with the same structure —
layers with explicit forward/backward passes, losses, optimizers, models —
so the distributed-training algorithms exercise a real gradient pipeline
without requiring a GPU framework.

Conventions
-----------
* Layers subclass :class:`repro.nn.module.Module` and implement
  ``forward`` / ``backward``; the backward pass stores parameter gradients
  in the module and returns the gradient with respect to its input.
* Parameters and gradients are NumPy arrays addressed by hierarchical
  names (``"block1/conv/W"``); :mod:`repro.nn.parameters` flattens them to
  a single vector for allreduce and back.
* Batches are the leading dimension everywhere.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Dense,
    ReLU,
    Sigmoid,
    Tanh,
    Conv2D,
    BatchNorm,
    MaxPool2D,
    AvgPool2D,
    GlobalAvgPool2D,
    Dropout,
    Flatten,
    Embedding,
    LSTM,
    LSTMCell,
    MultiHeadSelfAttention,
    TransformerEncoderBlock,
    Sequential,
    Residual,
)
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.optim import SGD, MomentumSGD, Adam, LearningRateSchedule, ConstantLR, StepDecayLR, WarmupLR
from repro.nn.parameters import (
    flatten_parameters,
    unflatten_parameters,
    flatten_gradients,
    assign_flat_parameters,
    assign_flat_gradients,
    parameter_count,
)
from repro.nn.metrics import topk_accuracy, accuracy

__all__ = [
    "Module",
    "Parameter",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Conv2D",
    "BatchNorm",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Dropout",
    "Flatten",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "MultiHeadSelfAttention",
    "TransformerEncoderBlock",
    "Sequential",
    "Residual",
    "MSELoss",
    "SoftmaxCrossEntropyLoss",
    "SGD",
    "MomentumSGD",
    "Adam",
    "LearningRateSchedule",
    "ConstantLR",
    "StepDecayLR",
    "WarmupLR",
    "flatten_parameters",
    "unflatten_parameters",
    "flatten_gradients",
    "assign_flat_parameters",
    "assign_flat_gradients",
    "parameter_count",
    "topk_accuracy",
    "accuracy",
]
