"""Flattening parameters and gradients to a single vector and back.

Distributed data-parallel SGD reduces the gradient of *every* parameter in
one (or a few fused) allreduce operations; the partial collectives of this
reproduction likewise operate on one flat ``float64`` vector per step.
These helpers define a stable parameter ordering (sorted hierarchical
names), pack/unpack the vectors and provide the parameter count reported
in Table 1 of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.nn.module import Module


def _ordered_named_parameters(module: Module) -> List[Tuple[str, "np.ndarray"]]:
    named = sorted(module.named_parameters(), key=lambda kv: kv[0])
    names = [n for n, _ in named]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate parameter names: {dupes}")
    return named


def parameter_count(module: Module) -> int:
    """Number of scalar trainable parameters (Table 1's Parameters column)."""
    return module.num_parameters()


def flatten_parameters(module: Module) -> np.ndarray:
    """Concatenate all parameters into one 1-D vector (stable order)."""
    named = _ordered_named_parameters(module)
    if not named:
        return np.zeros(0)
    return np.concatenate([p.data.reshape(-1) for _, p in named])


def flatten_gradients(module: Module) -> np.ndarray:
    """Concatenate all parameter gradients into one 1-D vector."""
    named = _ordered_named_parameters(module)
    if not named:
        return np.zeros(0)
    return np.concatenate([p.grad.reshape(-1) for _, p in named])


def unflatten_parameters(module: Module, flat: np.ndarray) -> Dict[str, np.ndarray]:
    """Split a flat vector back into per-parameter arrays (no assignment)."""
    flat = np.asarray(flat, dtype=np.float64).reshape(-1)
    named = _ordered_named_parameters(module)
    total = sum(p.size for _, p in named)
    if flat.size != total:
        raise ValueError(
            f"flat vector has {flat.size} elements but the module has {total} parameters"
        )
    out: Dict[str, np.ndarray] = {}
    offset = 0
    for name, param in named:
        n = param.size
        out[name] = flat[offset : offset + n].reshape(param.data.shape)
        offset += n
    return out


def assign_flat_parameters(module: Module, flat: np.ndarray) -> None:
    """Overwrite the module's parameters from a flat vector (model sync)."""
    pieces = unflatten_parameters(module, flat)
    for name, param in _ordered_named_parameters(module):
        param.data[...] = pieces[name]


def assign_flat_gradients(module: Module, flat: np.ndarray) -> None:
    """Overwrite the module's parameter gradients from a flat vector.

    Used after the distributed gradient exchange: the (partial) allreduce
    returns one flat averaged-gradient vector which is scattered back into
    ``param.grad`` before the optimizer step.
    """
    pieces = unflatten_parameters(module, flat)
    for name, param in _ordered_named_parameters(module):
        param.grad[...] = pieces[name]
