"""Loss functions.

Losses compute both the scalar loss value and the gradient with respect to
the model output; the gradient is what the training loop feeds into the
model's backward pass.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class MSELoss:
    """Mean squared error, as used by the hyperplane-regression experiment.

    The loss is averaged over the batch and summed over output features,
    matching the "validation loss around 4.7" scale reported for the
    paper's 8,192-dimensional hyperplane regression.
    """

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} != target shape {targets.shape}"
            )
        batch = predictions.shape[0]
        diff = predictions - targets
        loss = float(np.sum(diff**2) / batch)
        grad = 2.0 * diff / batch
        return loss, grad

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Loss value only (used for validation)."""
        return self(predictions, targets)[0]


class SoftmaxCrossEntropyLoss:
    """Softmax + cross-entropy over integer class labels.

    Optionally applies label smoothing, which the paper's ImageNet recipes
    use; the default of 0 keeps the classic formulation.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (batch, classes), got {logits.shape}")
        batch, num_classes = logits.shape
        if labels.shape != (batch,):
            raise ValueError(f"labels must have shape ({batch},), got {labels.shape}")
        if not np.issubdtype(labels.dtype, np.integer):
            raise TypeError("labels must be integer class indices")
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
            raise ValueError("label out of range")

        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)

        target = np.full_like(probs, self.label_smoothing / num_classes)
        target[np.arange(batch), labels] += 1.0 - self.label_smoothing

        log_probs = shifted - np.log(exp.sum(axis=1, keepdims=True))
        loss = float(-(target * log_probs).sum() / batch)
        grad = (probs - target) / batch
        return loss, grad

    def value(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self(logits, labels)[0]
