"""LSTM sequence classifier (the UCF101 video model of Section 6.3).

The paper's video classifier extracts a 2,048-wide feature per frame with
Inception v3 and feeds the sequence of features into a 2,048-wide
single-layer LSTM followed by a classifier over 101 action classes.  The
Inception feature extraction is a fixed preprocessing step (its time is
explicitly excluded from the paper's measurements), so the reproduction
generates synthetic per-frame feature sequences directly
(:mod:`repro.data.ucf101`) and this model implements the trainable part:
``LSTM -> Dense`` over the final hidden state.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.nn.layers import LSTM, Dense, Dropout
from repro.nn.module import Module
from repro.utils.rng import SeedLike, seeded_rng


class SequenceLSTMClassifier(Module):
    """Single-layer LSTM over per-frame features + linear classifier.

    Batches are dictionaries ``{"x": (B, T, D) float array, "lengths":
    (B,) int array}``; padding beyond each sequence's length is masked by
    the LSTM so padded frames contribute nothing.
    """

    def __init__(
        self,
        feature_dim: int = 64,
        hidden_dim: int = 64,
        num_classes: int = 101,
        dropout: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(seed)
        self.feature_dim = feature_dim
        self.hidden_dim = hidden_dim
        self.num_classes = num_classes
        self.lstm = LSTM(feature_dim, hidden_dim, return_sequences=False, seed=rng)
        self.dropout = Dropout(dropout, seed=rng) if dropout > 0 else None
        self.head = Dense(hidden_dim, num_classes, seed=rng)

    def forward(self, batch: Union[np.ndarray, Dict[str, np.ndarray]]) -> np.ndarray:
        if isinstance(batch, dict):
            x = batch["x"]
            lengths = batch.get("lengths")
        else:
            x, lengths = batch, None
        h = self.lstm.forward(np.asarray(x, dtype=np.float64), lengths=lengths)
        if self.dropout is not None:
            h = self.dropout(h)
        return self.head(h)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g = self.head.backward(grad_output)
        if self.dropout is not None:
            g = self.dropout.backward(g)
        return self.lstm.backward(g)
