"""A tiny Transformer classifier over variable-length token sequences.

Stand-in for the WMT16 Transformer of Section 2.2: its per-batch cost
grows with the sentence length, giving the same inherent load imbalance,
and it exercises embedding, self-attention and layer-norm code paths.  The
classification head (predicting a sequence-level label) keeps the training
loop identical to the other models while remaining differentiable end to
end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.nn.layers import Dense, Embedding, TransformerEncoderBlock
from repro.nn.layers.norm import LayerNorm
from repro.nn.module import Module
from repro.utils.rng import SeedLike, seeded_rng


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Classic sinusoidal position encoding of shape ``(length, dim)``."""
    positions = np.arange(length)[:, None].astype(np.float64)
    dims = np.arange(dim)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / dim)
    angles = positions * angle_rates
    encoding = np.zeros((length, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class TransformerClassifier(Module):
    """Embedding -> N encoder blocks -> masked mean pooling -> Dense.

    Batches are dictionaries ``{"tokens": (B, T) int array, "lengths":
    (B,) int array, "label": ...}``; positions beyond a sequence's length
    are masked both in attention and in the mean pooling.
    """

    def __init__(
        self,
        vocab_size: int = 256,
        dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        num_classes: int = 10,
        max_len: int = 512,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(seed)
        self.dim = dim
        self.max_len = max_len
        self.embedding = Embedding(vocab_size, dim, seed=rng)
        self._block_names: List[str] = []
        for i in range(num_layers):
            name = f"block{i}"
            self.add_module(name, TransformerEncoderBlock(dim, num_heads, seed=rng))
            self._block_names.append(name)
        self.final_norm = LayerNorm(dim)
        self.head = Dense(dim, num_classes, seed=rng)
        self._positions = sinusoidal_positions(max_len, dim)
        self._cache = None

    @property
    def blocks(self) -> List[TransformerEncoderBlock]:
        return [getattr(self, name) for name in self._block_names]

    def forward(self, batch: Union[np.ndarray, Dict[str, np.ndarray]]) -> np.ndarray:
        if isinstance(batch, dict):
            tokens = np.asarray(batch["tokens"])
            lengths = batch.get("lengths")
        else:
            tokens = np.asarray(batch)
            lengths = None
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, time), got {tokens.shape}")
        b, t = tokens.shape
        if t > self.max_len:
            raise ValueError(f"sequence length {t} exceeds max_len {self.max_len}")
        if lengths is None:
            lengths = np.full(b, t, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        mask = np.arange(t)[None, :] < lengths[:, None]

        x = self.embedding(tokens) + self._positions[:t]
        for block in self.blocks:
            x = block.forward(x, mask=mask)
        x = self.final_norm(x)
        # Masked mean pooling over valid positions.
        mask_f = mask.astype(np.float64)[:, :, None]
        denom = np.maximum(mask_f.sum(axis=1), 1.0)
        pooled = (x * mask_f).sum(axis=1) / denom
        self._cache = (mask_f, denom, x.shape)
        return self.head(pooled)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("TransformerClassifier.backward called before forward")
        mask_f, denom, x_shape = self._cache
        g_pooled = self.head.backward(np.asarray(grad_output, dtype=np.float64))
        g_x = (g_pooled[:, None, :] / denom[:, None, :]) * mask_f
        g_x = self.final_norm.backward(g_x)
        for block in reversed(self.blocks):
            g_x = block.backward(g_x)
        return self.embedding.backward(g_x)
