"""Models matching Table 1 of the paper (scaled to CPU-sized versions)."""

from repro.nn.models.mlp import HyperplaneMLP, MLPClassifier
from repro.nn.models.resnet import ResNetClassifier, resnet_cifar, resnet_imagenet_lite
from repro.nn.models.lstm_classifier import SequenceLSTMClassifier
from repro.nn.models.transformer import TransformerClassifier

__all__ = [
    "HyperplaneMLP",
    "MLPClassifier",
    "ResNetClassifier",
    "resnet_cifar",
    "resnet_imagenet_lite",
    "SequenceLSTMClassifier",
    "TransformerClassifier",
]
