"""Residual networks (ResNet-32 / ResNet-50 scaled to CPU size).

The paper trains ResNet-32 on CIFAR-10 (467,194 parameters) and ResNet-50
on ImageNet (25.6M parameters).  Training those exact models on a CPU
inside the reproduction's time budget is not feasible, so
:func:`resnet_cifar` and :func:`resnet_imagenet_lite` construct
structurally faithful but narrower/shallower residual networks: the same
Conv-BN-ReLU residual blocks with identity and projection shortcuts
(Fig. 5 of the paper shows exactly such a block), three stages with
spatial downsampling, global average pooling and a linear classifier.
The depth and width are configurable so tests can instantiate tiny
versions while examples use larger ones.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.module import Module
from repro.utils.rng import SeedLike, seeded_rng


def _conv_bn(in_ch: int, out_ch: int, stride: int, seed, kernel: int = 3) -> Sequential:
    return Sequential(
        Conv2D(in_ch, out_ch, kernel_size=kernel, stride=stride, padding=kernel // 2,
               bias=False, seed=seed),
        BatchNorm(out_ch),
    )


def _basic_block(in_ch: int, out_ch: int, stride: int, seed) -> Sequential:
    """A basic residual block: Conv-BN-ReLU-Conv-BN plus a shortcut."""
    body = Sequential(
        Conv2D(in_ch, out_ch, kernel_size=3, stride=stride, padding=1, bias=False, seed=seed),
        BatchNorm(out_ch),
        ReLU(),
        Conv2D(out_ch, out_ch, kernel_size=3, stride=1, padding=1, bias=False, seed=seed),
        BatchNorm(out_ch),
    )
    if stride != 1 or in_ch != out_ch:
        shortcut = _conv_bn(in_ch, out_ch, stride, seed, kernel=1)
    else:
        shortcut = None
    return Sequential(Residual(body, shortcut), ReLU())


class ResNetClassifier(Module):
    """A configurable residual network for small images.

    Parameters
    ----------
    in_channels:
        Number of input image channels.
    num_classes:
        Output classes.
    stage_channels:
        Channel width of each stage.
    blocks_per_stage:
        Number of residual blocks in each stage.  The first block of every
        stage after the first downsamples spatially with stride 2.
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        stage_channels: Sequence[int] = (8, 16, 32),
        blocks_per_stage: int = 1,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if blocks_per_stage < 1:
            raise ValueError("blocks_per_stage must be >= 1")
        rng = seeded_rng(seed)
        layers: List[Module] = [
            Conv2D(in_channels, stage_channels[0], kernel_size=3, stride=1, padding=1,
                   bias=False, seed=rng),
            BatchNorm(stage_channels[0]),
            ReLU(),
        ]
        prev = stage_channels[0]
        for stage_index, width in enumerate(stage_channels):
            for block_index in range(blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                layers.append(_basic_block(prev, width, stride, rng))
                prev = width
        layers.append(GlobalAvgPool2D())
        layers.append(Dense(prev, num_classes, seed=rng))
        self.net = Sequential(*layers)
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        if isinstance(x, dict):
            x = x["x"]
        return self.net(np.asarray(x, dtype=np.float64))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)


def resnet_cifar(
    num_classes: int = 10,
    width: int = 8,
    blocks_per_stage: int = 1,
    in_channels: int = 3,
    seed: SeedLike = None,
) -> ResNetClassifier:
    """ResNet-32-style network for CIFAR-like 3-channel images.

    ``blocks_per_stage=5`` with ``width=16`` recovers the true ResNet-32
    layer structure (3 stages x 5 blocks x 2 convs + stem + classifier =
    32 weighted layers); the defaults give a much smaller network suitable
    for CPU-scale experiments.
    """
    return ResNetClassifier(
        in_channels=in_channels,
        num_classes=num_classes,
        stage_channels=(width, 2 * width, 4 * width),
        blocks_per_stage=blocks_per_stage,
        seed=seed,
    )


def resnet_imagenet_lite(
    num_classes: int = 100,
    width: int = 8,
    blocks_per_stage: int = 1,
    in_channels: int = 3,
    seed: SeedLike = None,
) -> ResNetClassifier:
    """ResNet-50 stand-in: four stages, wider channels, projection shortcuts."""
    return ResNetClassifier(
        in_channels=in_channels,
        num_classes=num_classes,
        stage_channels=(width, 2 * width, 4 * width, 8 * width),
        blocks_per_stage=blocks_per_stage,
        seed=seed,
    )
