"""Multi-layer perceptrons.

:class:`HyperplaneMLP` is the one-layer MLP of Section 6.2.1: a single
linear unit learning the coefficients of an 8,192-dimensional hyperplane
from noisy samples.  :class:`MLPClassifier` is a generic configurable MLP
used in tests and as a cheap stand-in classifier.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Dense, ReLU, Sequential
from repro.nn.module import Module
from repro.utils.rng import SeedLike, seeded_rng


class HyperplaneMLP(Module):
    """One-layer linear regressor ``y = x w + b`` (Table 1, first row).

    With ``input_dim=8192`` this has 8,193 parameters, matching the
    "8,193 Parameters" entry of Table 1 exactly.
    """

    def __init__(self, input_dim: int = 8192, seed: SeedLike = None) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.linear = Dense(input_dim, 1, bias=True, init="normal", seed=seed)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if isinstance(x, dict):
            x = x["x"]
        return self.linear(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.linear.backward(grad_output)


class MLPClassifier(Module):
    """A small fully-connected classifier.

    Parameters
    ----------
    input_dim:
        Flattened input dimensionality.
    hidden_dims:
        Sizes of the hidden layers (each followed by ReLU).
    num_classes:
        Number of output classes (logits are returned, no softmax).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int] = (64, 64),
        num_classes: int = 10,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(seed)
        layers = []
        prev = input_dim
        for width in hidden_dims:
            layers.append(Dense(prev, width, init="he", seed=rng))
            layers.append(ReLU())
            prev = width
        layers.append(Dense(prev, num_classes, seed=rng))
        self.net = Sequential(*layers)
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        if isinstance(x, dict):
            x = x["x"]
        x = np.asarray(x, dtype=np.float64)
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)
