"""Base class for layers and models."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable array together with its gradient accumulator."""

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for every layer and model.

    Subclasses register parameters with :meth:`add_parameter` and child
    modules with :meth:`add_module` (or simply by assigning them to
    attributes — assignment is intercepted), implement ``forward`` (which
    must cache whatever the backward pass needs) and ``backward`` (which
    must accumulate parameter gradients into ``param.grad`` and return the
    gradient with respect to the layer input).
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ---------------------------------------------------------- registry
    def __setattr__(self, name: str, value) -> None:
        params = getattr(self, "_parameters", None)
        modules = getattr(self, "_modules", None)
        if params is None or modules is None:
            raise AttributeError(
                f"{type(self).__name__}: call super().__init__() before "
                "assigning parameters or sub-modules"
            )
        if isinstance(value, Parameter):
            params[name] = value
            modules.pop(name, None)
        elif isinstance(value, Module):
            modules[name] = value
            params.pop(name, None)
        object.__setattr__(self, name, value)

    def add_parameter(self, name: str, data: np.ndarray) -> Parameter:
        param = Parameter(data)
        setattr(self, name, param)
        return param

    def add_module(self, name: str, module: "Module") -> "Module":
        setattr(self, name, module)
        return module

    # ------------------------------------------------------------ access
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(hierarchical_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}/")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("/"), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}/")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (Table 1's "Parameters" column)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------- modes
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively.

        Affects dropout and batch-norm semantics, and whether layer
        forwards cache backward-pass state at all: in eval mode
        (``train(False)`` / :meth:`eval`) forwards keep no gradient-side
        bookkeeping — serving and evaluation pay neither the memory nor
        the extra compute — and a subsequent ``backward`` raises.
        """
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # --------------------------------------------------------- interface
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"
