"""repro — reproduction of eager-SGD with partial collective operations.

This package reproduces the system described in

    Shigang Li, Tal Ben-Nun, Salvatore Di Girolamo, Dan Alistarh, Torsten
    Hoefler.  "Taming Unbalanced Training Workloads in Deep Learning with
    Partial Collective Operations."  PPoPP 2020.

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.comm``
    Pluggable message-passing substrate (backend registry, tagged point-to-point
    send/recv, communicators, reduction operators).
``repro.schedule``
    Schedule engine: DAGs of send/recv/compute/NOP operations with
    happens-before dependencies, consumable operations and persistent
    (self-replicating) schedules.
``repro.collectives``
    Synchronous collectives (recursive-doubling / ring / Rabenseifner
    allreduce, broadcast, reduce) and the paper's *partial* collectives:
    solo allreduce, majority allreduce and generalised quorum allreduce.
``repro.simtime``
    Discrete-event simulation with a LogGP-style network model, used for
    the latency microbenchmark (Fig. 9) and large-scale throughput
    projections.
``repro.nn``
    Pure-NumPy neural-network substrate (layers, losses, optimizers and
    the models used in the paper's evaluation).
``repro.data``
    Synthetic datasets matching the statistical structure of the paper's
    workloads (hyperplane regression, CIFAR-like, ImageNet-like,
    UCF101-like video sequences, WMT-like sentences).
``repro.imbalance``
    Load-imbalance models: delay injection policies and content-driven
    cost models.
``repro.training``
    Distributed training: synchronous SGD baselines (Horovod-style and
    Deep500-style) and eager-SGD (Algorithm 2 of the paper).
``repro.theory``
    Convergence bounds (Theorem 5.2) and staleness/quorum bookkeeping.
``repro.experiments``
    One harness per paper table/figure.
"""

from repro._version import __version__

__all__ = ["__version__"]
