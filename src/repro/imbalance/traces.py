"""Recording and summarising per-rank, per-step workload traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.utils.stats import DistributionSummary, Histogram, summarize


@dataclass
class TraceSummary:
    """Summary of a runtime trace, as quoted in Section 2 of the paper."""

    summary: DistributionSummary
    histogram_centers: np.ndarray
    histogram_counts: np.ndarray

    def __str__(self) -> str:
        return str(self.summary)


class StepTrace:
    """Per-rank, per-step simulated durations of a training run.

    The trace is the interchange format between the training runner (which
    records how long each rank's local work took at each step) and the
    timing projector (:mod:`repro.simtime.training_model`), and it is what
    the workload-characterisation experiments (Figs. 2b/3/4) summarise.
    """

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = int(world_size)
        self._steps: List[np.ndarray] = []
        self._partial: Dict[int, Dict[int, float]] = {}

    # ------------------------------------------------------------ record
    def record(self, step: int, rank: int, duration: float) -> None:
        """Record the duration of ``rank``'s local work at ``step``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
        self._partial.setdefault(step, {})[rank] = float(duration)

    def record_step(self, durations: np.ndarray) -> None:
        """Record a whole step at once (one duration per rank)."""
        arr = np.asarray(durations, dtype=np.float64)
        if arr.shape != (self.world_size,):
            raise ValueError(
                f"expected {self.world_size} durations, got shape {arr.shape}"
            )
        self._steps.append(arr.copy())

    def _flush_partial(self) -> None:
        for step in sorted(self._partial):
            ranks = self._partial[step]
            if len(ranks) == self.world_size:
                row = np.array([ranks[r] for r in range(self.world_size)])
                self._steps.append(row)
        self._partial.clear()

    # ------------------------------------------------------------- query
    def as_matrix(self) -> np.ndarray:
        """Return the trace as an array of shape ``(steps, world_size)``."""
        self._flush_partial()
        if not self._steps:
            return np.zeros((0, self.world_size))
        return np.stack(self._steps, axis=0)

    @property
    def num_steps(self) -> int:
        return self.as_matrix().shape[0]

    def all_durations(self) -> np.ndarray:
        """Flattened per-batch durations across all ranks and steps."""
        return self.as_matrix().reshape(-1)

    def imbalance_ratio(self) -> float:
        """Mean over steps of (slowest rank / mean rank) — 1.0 is balanced."""
        matrix = self.as_matrix()
        if matrix.size == 0:
            return 1.0
        means = matrix.mean(axis=1)
        means = np.where(means > 0, means, 1.0)
        return float((matrix.max(axis=1) / means).mean())

    def summarize(self, histogram_bin_ms: float = 100.0) -> TraceSummary:
        """Summary statistics + histogram (in milliseconds, like Figs. 2-4)."""
        durations_ms = self.all_durations() * 1000.0
        hist = Histogram(bin_width=histogram_bin_ms)
        hist.extend(durations_ms)
        centers, counts = hist.as_series()
        return TraceSummary(
            summary=summarize(durations_ms),
            histogram_centers=centers,
            histogram_counts=counts,
        )
