"""Delay-injection policies (system-induced load imbalance).

Every policy answers one question: "at training step ``t``, how many extra
(simulated) seconds does each rank spend before reaching the gradient
exchange?"  The policies mirror the injection schemes of the paper's
evaluation:

* :class:`RandomSubsetDelay` — Sections 6.2.1/6.2.2: at every step a few
  randomly selected ranks are delayed by a fixed amount (e.g. 1-of-8 by
  200-400 ms; 4-of-64 by 300/460 ms).
* :class:`RotatingSkewDelay` — Section 6.2.3: *all* ranks are skewed from
  ``min`` to ``max`` milliseconds and the assignment is shifted after each
  step (severe imbalance).
* :class:`LinearSkewDelay` — the microbenchmark of Fig. 8.
* :class:`CloudNoiseDelay` — the long-tailed cloud variability of Fig. 4.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, rank_seed, seeded_rng


class DelayInjector:
    """Base class: per-step, per-rank injected delay in seconds."""

    def delays(self, step: int, world_size: int) -> np.ndarray:
        """Return an array of ``world_size`` delays (seconds) for ``step``."""
        raise NotImplementedError

    def delay_for_rank(self, step: int, rank: int, world_size: int) -> float:
        """Delay of a single rank (must agree with :meth:`delays`)."""
        return float(self.delays(step, world_size)[rank])

    def describe(self) -> str:
        return type(self).__name__


class NoDelay(DelayInjector):
    """Perfectly balanced system (no injected delay)."""

    def delays(self, step: int, world_size: int) -> np.ndarray:
        return np.zeros(world_size)


class ConstantDelay(DelayInjector):
    """Every rank is delayed by the same fixed amount every step."""

    def __init__(self, delay_ms: float) -> None:
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        self.delay_ms = float(delay_ms)

    def delays(self, step: int, world_size: int) -> np.ndarray:
        return np.full(world_size, self.delay_ms / 1000.0)

    def describe(self) -> str:
        return f"ConstantDelay({self.delay_ms:g} ms)"


class RandomSubsetDelay(DelayInjector):
    """Delay a random subset of ranks by a fixed amount at every step.

    The subset is re-drawn every step from a seed shared by all ranks, so
    every rank computes the same assignment without communication.
    """

    def __init__(self, num_delayed: int, delay_ms: float, seed: SeedLike = 0) -> None:
        if num_delayed < 0:
            raise ValueError("num_delayed must be non-negative")
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        self.num_delayed = int(num_delayed)
        self.delay_ms = float(delay_ms)
        self.seed = 0 if seed is None else int(seed)

    def delays(self, step: int, world_size: int) -> np.ndarray:
        if self.num_delayed > world_size:
            raise ValueError(
                f"cannot delay {self.num_delayed} of {world_size} ranks"
            )
        rng = seeded_rng(rank_seed(self.seed, step, stream=7))
        out = np.zeros(world_size)
        chosen = rng.choice(world_size, size=self.num_delayed, replace=False)
        out[chosen] = self.delay_ms / 1000.0
        return out

    def describe(self) -> str:
        return f"RandomSubsetDelay({self.num_delayed} ranks, {self.delay_ms:g} ms)"


class LinearSkewDelay(DelayInjector):
    """Rank ``i`` is delayed by ``(i + 1) * step_ms`` (microbenchmark skew)."""

    def __init__(self, step_ms: float = 1.0) -> None:
        if step_ms < 0:
            raise ValueError("step_ms must be non-negative")
        self.step_ms = float(step_ms)

    def delays(self, step: int, world_size: int) -> np.ndarray:
        return (np.arange(1, world_size + 1) * self.step_ms) / 1000.0

    def describe(self) -> str:
        return f"LinearSkewDelay({self.step_ms:g} ms/rank)"


class RotatingSkewDelay(DelayInjector):
    """All ranks skewed between ``min_ms`` and ``max_ms``, shifted each step.

    This is the severe-imbalance setting of Section 6.2.3: every rank is
    delayed at every step, the delays span a wide range, and the mapping
    of delay to rank rotates so no rank is permanently the slowest.
    """

    def __init__(self, min_ms: float = 50.0, max_ms: float = 400.0) -> None:
        if min_ms < 0 or max_ms < min_ms:
            raise ValueError("need 0 <= min_ms <= max_ms")
        self.min_ms = float(min_ms)
        self.max_ms = float(max_ms)

    def delays(self, step: int, world_size: int) -> np.ndarray:
        levels = np.linspace(self.min_ms, self.max_ms, world_size) / 1000.0
        return np.roll(levels, step % world_size)

    def describe(self) -> str:
        return f"RotatingSkewDelay({self.min_ms:g}-{self.max_ms:g} ms)"


class CloudNoiseDelay(DelayInjector):
    """Long-tailed multiplicative noise, as measured on cloud VMs (Fig. 4).

    Each rank independently draws a lognormal extra delay whose median and
    tail heaviness are configurable; occasional large stragglers dominate,
    reproducing the 399-1,892 ms spread of the paper's Google Cloud trace.
    """

    def __init__(
        self,
        median_ms: float = 30.0,
        sigma: float = 1.0,
        seed: SeedLike = 0,
    ) -> None:
        if median_ms < 0 or sigma < 0:
            raise ValueError("median_ms and sigma must be non-negative")
        self.median_ms = float(median_ms)
        self.sigma = float(sigma)
        self.seed = 0 if seed is None else int(seed)

    def delays(self, step: int, world_size: int) -> np.ndarray:
        rng = seeded_rng(rank_seed(self.seed, step, stream=11))
        if self.median_ms == 0:
            return np.zeros(world_size)
        samples = rng.lognormal(np.log(self.median_ms), self.sigma, size=world_size)
        return samples / 1000.0

    def describe(self) -> str:
        return f"CloudNoiseDelay(median={self.median_ms:g} ms, sigma={self.sigma:g})"
