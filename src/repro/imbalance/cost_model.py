"""Content-driven compute cost models (inherent load imbalance).

A cost model maps a batch (or its ``size_hint``, e.g. the total number of
frames or tokens) to a *simulated* compute time in seconds.  The training
runner uses these times for the projected time axes of the paper's figures
and — scaled down — for the real sleeps that create genuine asynchrony
between the rank threads.

The calibration functions reproduce the runtime distributions the paper
measures on a P100 GPU:

* Fig. 2b — LSTM on UCF101, batch size 16: runtimes from 201 ms to
  3,410 ms;
* Fig. 3 — Transformer on WMT16, batch size 64: 179 ms to 3,482 ms;
* Fig. 4 — ResNet-50 on 2xV100 cloud instances, batch size 256: 399 ms to
  1,892 ms, where the variability comes from the system, not the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.loader import Batch
from repro.imbalance.injection import CloudNoiseDelay, DelayInjector, NoDelay
from repro.utils.rng import SeedLike


class CostModel:
    """Base class mapping a batch to a simulated compute time (seconds)."""

    def batch_cost(self, batch: Batch) -> float:
        """Simulated compute seconds for ``batch``."""
        raise NotImplementedError

    def cost_from_size(self, size_hint: float) -> float:
        """Simulated compute seconds for a batch with the given size hint."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class FixedCostModel(CostModel):
    """Every batch costs the same (balanced workloads such as ResNet)."""

    seconds_per_batch: float

    def __post_init__(self) -> None:
        if self.seconds_per_batch < 0:
            raise ValueError("seconds_per_batch must be non-negative")

    def batch_cost(self, batch: Batch) -> float:
        return self.seconds_per_batch

    def cost_from_size(self, size_hint: float) -> float:
        return self.seconds_per_batch

    def describe(self) -> str:
        return f"FixedCostModel({self.seconds_per_batch * 1e3:.0f} ms)"


@dataclass(frozen=True)
class SequenceCostModel(CostModel):
    """Cost grows linearly with the batch's total sequence length.

    ``cost = base_seconds + seconds_per_unit * total_units`` optionally
    clipped at ``cap_seconds`` (long sequences are truncated / subsampled
    in practice, which caps the per-batch cost).
    """

    base_seconds: float
    seconds_per_unit: float
    cap_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base_seconds < 0 or self.seconds_per_unit < 0:
            raise ValueError("cost parameters must be non-negative")
        if self.cap_seconds is not None and self.cap_seconds <= 0:
            raise ValueError("cap_seconds must be positive when given")

    def cost_from_size(self, size_hint: float) -> float:
        cost = self.base_seconds + self.seconds_per_unit * float(size_hint)
        if self.cap_seconds is not None:
            cost = min(cost, self.cap_seconds)
        return cost

    def batch_cost(self, batch: Batch) -> float:
        if batch.size_hint is None:
            raise ValueError(
                "SequenceCostModel needs batches with a size_hint "
                "(total frames/tokens); got None"
            )
        return self.cost_from_size(batch.size_hint)

    def describe(self) -> str:
        cap = f", cap={self.cap_seconds:.3f}s" if self.cap_seconds else ""
        return (
            f"SequenceCostModel(base={self.base_seconds * 1e3:.0f} ms, "
            f"{self.seconds_per_unit * 1e6:.1f} us/unit{cap})"
        )


@dataclass(frozen=True)
class QuadraticSequenceCostModel(CostModel):
    """Cost with linear and quadratic terms in the per-sequence length.

    Transformers pay attention cost quadratic in the sentence length, so a
    purely linear model underestimates the long-batch tail of Fig. 3.  For
    a batch of sequences with lengths ``L_i`` the cost is

        ``base + per_unit * sum(L_i) + per_unit_sq * sum(L_i ** 2)``.

    When only a total-length ``size_hint`` is available, the sequences are
    assumed to be of equal length ``size_hint / batch_size`` (which is the
    bucketed-batch case this model is used for).
    """

    base_seconds: float
    seconds_per_unit: float
    seconds_per_unit_sq: float
    batch_size: int
    cap_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if min(self.base_seconds, self.seconds_per_unit, self.seconds_per_unit_sq) < 0:
            raise ValueError("cost parameters must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def _cap(self, cost: float) -> float:
        return min(cost, self.cap_seconds) if self.cap_seconds is not None else cost

    def cost_from_lengths(self, lengths: np.ndarray) -> float:
        lengths = np.asarray(lengths, dtype=np.float64)
        cost = (
            self.base_seconds
            + self.seconds_per_unit * float(lengths.sum())
            + self.seconds_per_unit_sq * float((lengths**2).sum())
        )
        return self._cap(cost)

    def cost_from_size(self, size_hint: float) -> float:
        mean_len = float(size_hint) / self.batch_size
        cost = (
            self.base_seconds
            + self.seconds_per_unit * float(size_hint)
            + self.seconds_per_unit_sq * self.batch_size * mean_len**2
        )
        return self._cap(cost)

    def batch_cost(self, batch: Batch) -> float:
        inputs = batch.inputs
        if isinstance(inputs, dict) and "lengths" in inputs:
            return self.cost_from_lengths(np.asarray(inputs["lengths"]))
        if batch.size_hint is None:
            raise ValueError("QuadraticSequenceCostModel needs lengths or a size_hint")
        return self.cost_from_size(batch.size_hint)

    def describe(self) -> str:
        return (
            f"QuadraticSequenceCostModel(base={self.base_seconds * 1e3:.0f} ms, "
            f"{self.seconds_per_unit * 1e6:.1f} us/unit, "
            f"{self.seconds_per_unit_sq * 1e6:.2f} us/unit^2)"
        )


def lstm_ucf101_cost_model(batch_size: int = 16) -> SequenceCostModel:
    """Cost model for the UCF101 LSTM (Fig. 2b).

    Calibrated so that, with the paper's batch size of 16 and the UCF101
    length distribution, the shortest batches take about 200 ms and the
    cost is capped at 3.41 s (the paper's maximum — very long videos are
    subsampled in practice, which bounds the cost of the right tail).
    """
    min_frames = 29
    # 0.201 s at the all-minimum batch.
    per_frame = 4.0e-4 / (batch_size / 16)
    base = 0.201 - per_frame * batch_size * min_frames
    return SequenceCostModel(
        base_seconds=max(base, 0.0),
        seconds_per_unit=per_frame,
        cap_seconds=3.410,
    )


def transformer_wmt_cost_model(batch_size: int = 64) -> QuadraticSequenceCostModel:
    """Cost model for the WMT Transformer (Fig. 3).

    Attention is quadratic in the sentence length, so the model has both a
    linear and a quadratic term.  The coefficients solve the three-point
    calibration against the paper's reported distribution at batch size
    64: ~179 ms for the shortest batches (4 tokens), ~475 ms at the mean
    length (~22 tokens), ~3.5 s at the longest (128 tokens).
    """
    # Solving base + B*(a*L + b*L^2) at L = 4, 22, 128 for the three
    # reference runtimes gives (for B = 64): base ~ 0.122 s,
    # a ~ 2.18e-4 s/token, b ~ 1.50e-6 s/token^2; rescale to the requested
    # batch size so per-sequence coefficients stay the same.
    reference_batch = 64
    per_token = 0.013944 / reference_batch
    per_token_sq = 9.615e-5 / reference_batch
    return QuadraticSequenceCostModel(
        base_seconds=0.1217,
        seconds_per_unit=per_token,
        seconds_per_unit_sq=per_token_sq,
        batch_size=batch_size,
        cap_seconds=3.482,
    )


def resnet50_cloud_cost_model() -> FixedCostModel:
    """Base compute cost of a ResNet-50 step on the cloud instance (Fig. 4).

    The data-side cost is constant (ImageNet batches are all the same
    size); the paper's observed 399-1,892 ms spread comes from system
    noise, which is modelled separately with
    :func:`cloud_noise_for_resnet50`.
    """
    return FixedCostModel(seconds_per_batch=0.399)


def cloud_noise_for_resnet50(seed: SeedLike = 0) -> DelayInjector:
    """Delay injector reproducing the cloud-noise tail of Fig. 4."""
    return CloudNoiseDelay(median_ms=35.0, sigma=1.05, seed=seed)
