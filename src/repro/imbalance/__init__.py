"""Load-imbalance models: delay injection and content-driven cost models.

The paper distinguishes two sources of load imbalance (Section 2):

* **system-induced** imbalance — multi-tenant cloud nodes, OS/network
  noise — modelled here by *delay injection policies*
  (:mod:`repro.imbalance.injection`) that add a per-rank, per-step delay,
  exactly like the paper's simulated experiments which inject 200-460 ms
  into randomly selected ranks;
* **inherent** imbalance — variable-length videos and sentences — modelled
  by *cost models* (:mod:`repro.imbalance.cost_model`) that map the
  content of a batch (frames, tokens) to its compute time.

:mod:`repro.imbalance.traces` records the resulting per-rank, per-step
durations and summarises them like Figs. 2b, 3 and 4.
"""

from repro.imbalance.injection import (
    DelayInjector,
    NoDelay,
    ConstantDelay,
    RandomSubsetDelay,
    LinearSkewDelay,
    RotatingSkewDelay,
    CloudNoiseDelay,
)
from repro.imbalance.cost_model import (
    CostModel,
    FixedCostModel,
    SequenceCostModel,
    QuadraticSequenceCostModel,
    lstm_ucf101_cost_model,
    transformer_wmt_cost_model,
    resnet50_cloud_cost_model,
    cloud_noise_for_resnet50,
)
from repro.imbalance.traces import StepTrace, TraceSummary

__all__ = [
    "DelayInjector",
    "NoDelay",
    "ConstantDelay",
    "RandomSubsetDelay",
    "LinearSkewDelay",
    "RotatingSkewDelay",
    "CloudNoiseDelay",
    "CostModel",
    "FixedCostModel",
    "SequenceCostModel",
    "QuadraticSequenceCostModel",
    "lstm_ucf101_cost_model",
    "transformer_wmt_cost_model",
    "resnet50_cloud_cost_model",
    "cloud_noise_for_resnet50",
    "StepTrace",
    "TraceSummary",
]
