"""Wall-clock and virtual-clock timers.

The training runner measures real elapsed time with :class:`Timer`; the
discrete-event simulator and the throughput projections use
:class:`VirtualClock`, which advances only when told to, so that
"injected" delays (hundreds of milliseconds in the paper) do not have to
be slept for in real time during tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional


class Timer:
    """A simple cumulative wall-clock timer.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError(
                "Timer.start() called while an interval is already running; "
                "call stop() first (the in-flight interval would be "
                "silently discarded)"
            )
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class VirtualClock:
    """A monotonically advancing virtual clock measured in seconds.

    The clock never reads the system time; callers advance it explicitly.
    It is used to attribute *simulated* compute and delay costs to a
    training run without sleeping.
    """

    now: float = 0.0
    _history: List[float] = field(default_factory=list)

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ValueError(f"cannot advance a clock by a negative amount: {dt}")
        self.now += dt
        return self.now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` (no-op if in the past)."""
        if t > self.now:
            self.now = t
        return self.now

    def checkpoint(self) -> None:
        """Record the current time for later inspection."""
        self._history.append(self.now)

    @property
    def checkpoints(self) -> List[float]:
        return list(self._history)

    def reset(self) -> None:
        self.now = 0.0
        self._history.clear()
