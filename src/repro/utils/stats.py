"""Streaming statistics and distribution summaries.

The paper characterises load imbalance by the min / max / mean / standard
deviation of per-batch runtimes (Section 2) and by histograms (Figures
2-4).  :class:`RunningStat`, :class:`Histogram` and :func:`summarize`
provide those measurements for arbitrary traces produced by the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


class RunningStat:
    """Numerically stable streaming mean / variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.push(v)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RunningStat(count={self.count}, mean={self.mean:.4g}, "
            f"std={self.std:.4g}, min={self.min:.4g}, max={self.max:.4g})"
        )


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a sample, as reported in the paper."""

    count: int
    mean: float
    std: float
    min: float
    max: float
    median: float

    def as_row(self) -> Tuple[int, float, float, float, float, float]:
        return (self.count, self.mean, self.std, self.min, self.max, self.median)

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} std={self.std:.1f} "
            f"min={self.min:.1f} max={self.max:.1f} median={self.median:.1f}"
        )


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Summarise a sample with the statistics quoted in the paper."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return DistributionSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        min=float(arr.min()),
        max=float(arr.max()),
        median=float(np.median(arr)),
    )


class Histogram:
    """Fixed-bin histogram mirroring the paper's figures 2-4.

    Parameters
    ----------
    bin_width:
        Width of each bin in the same unit as the pushed values.
    start:
        Left edge of the first bin.
    """

    def __init__(self, bin_width: float, start: float = 0.0) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = float(bin_width)
        self.start = float(start)
        self._counts: dict[int, int] = {}
        self._n = 0

    def push(self, value: float) -> None:
        idx = int(math.floor((float(value) - self.start) / self.bin_width))
        self._counts[idx] = self._counts.get(idx, 0) + 1
        self._n += 1

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.push(v)

    @property
    def total(self) -> int:
        return self._n

    def bins(self) -> List[Tuple[float, float, int]]:
        """Return ``(left_edge, right_edge, count)`` triples, sorted."""
        out = []
        for idx in sorted(self._counts):
            left = self.start + idx * self.bin_width
            out.append((left, left + self.bin_width, self._counts[idx]))
        return out

    def as_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(bin_centers, counts)`` arrays for plotting/printing."""
        triples = self.bins()
        if not triples:
            return np.array([]), np.array([])
        centers = np.array([(a + b) / 2.0 for a, b, _ in triples])
        counts = np.array([c for _, _, c in triples])
        return centers, counts

    def mode_bin(self) -> Tuple[float, float, int]:
        """Return the bin with the highest count."""
        if not self._counts:
            raise ValueError("histogram is empty")
        idx = max(self._counts, key=lambda k: self._counts[k])
        left = self.start + idx * self.bin_width
        return (left, left + self.bin_width, self._counts[idx])
