"""Deterministic random-number-generator helpers.

Every stochastic component in the library (datasets, delay injection,
initiator selection for majority collectives, weight initialisation)
accepts either an integer seed or a :class:`numpy.random.Generator`.  The
helpers here centralise the conversion so that experiments are exactly
reproducible across runs and across ranks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used throughout the library when the caller does not
#: provide one.  Chosen arbitrarily but fixed for reproducibility.
DEFAULT_SEED = 0x5EED


def seeded_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer, or an existing
        generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(int(seed))


def rank_seed(base_seed: int, rank: int, stream: int = 0) -> int:
    """Derive a per-rank seed from a base seed.

    The derivation uses :class:`numpy.random.SeedSequence` spawning so
    that different ``(rank, stream)`` pairs give statistically
    independent streams while remaining fully deterministic.
    """
    ss = np.random.SeedSequence(entropy=int(base_seed), spawn_key=(int(rank), int(stream)))
    return int(ss.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from one seed."""
    if isinstance(seed, np.random.Generator):
        # Use the generator itself to derive child seeds deterministically.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    base = DEFAULT_SEED if seed is None else int(seed)
    ss = np.random.SeedSequence(base)
    return [np.random.default_rng(child) for child in ss.spawn(count)]


def shuffled_indices(rng: np.random.Generator, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)``."""
    return rng.permutation(n)


def choice_without_replacement(
    rng: np.random.Generator, n: int, k: int
) -> np.ndarray:
    """Choose ``k`` distinct indices out of ``n``."""
    if k > n:
        raise ValueError(f"cannot choose {k} items out of {n}")
    return rng.choice(n, size=k, replace=False)
