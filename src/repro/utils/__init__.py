"""Shared utilities: deterministic RNG handling, timers and statistics."""

from repro.utils.rng import seeded_rng, spawn_rngs, rank_seed
from repro.utils.timer import Timer, VirtualClock
from repro.utils.stats import (
    RunningStat,
    Histogram,
    summarize,
    DistributionSummary,
)

__all__ = [
    "seeded_rng",
    "spawn_rngs",
    "rank_seed",
    "Timer",
    "VirtualClock",
    "RunningStat",
    "Histogram",
    "summarize",
    "DistributionSummary",
]
