"""The serving frontend: dynamic batcher, replica router, collector.

The frontend is one rank of the serving world running three roles on two
threads plus whoever calls :meth:`Frontend.submit`:

* **submitters** (client threads) push requests through the
  :class:`~repro.serving.batching.DynamicBatcher`'s admission control and
  block on their :class:`~repro.serving.batching.RequestFuture`;
* the **dispatcher** thread pulls due batches off the batcher, routes
  each to the least-loaded healthy replica (fewest outstanding requests)
  and sends it; it is the *only* thread sending on the serve channel, so
  multi-frame sends on a socket transport never interleave;
* the **collector** thread receives results/rejections, completes the
  futures (tagging each result with the model version that produced it),
  maintains per-replica load and health accounting, re-queues
  staleness-rejected batches for the dispatcher to retry on another
  replica, and tracks version announcements on the swap channel.

A batch rejected by every replica fails its futures with
:class:`~repro.serving.batching.StaleReplicaError` — bounded staleness
is a guarantee, not a hint, so the frontend never silently falls back to
weights older than the knob allows.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set

import numpy as np

from repro.comm.communicator import CommTimeoutError
from repro.comm.message import ANY_SOURCE
from repro.obs import recorder as _obs
from repro.obs.metrics import LogHistogram
from repro.serving import protocol
from repro.serving.batching import (
    DynamicBatcher,
    PendingRequest,
    RequestFuture,
    StaleReplicaError,
)
from repro.serving.config import ServingConfig

#: How long the collector blocks per receive before polling the swap
#: channel and the stop flag.
COLLECTOR_POLL_S = 0.02
#: How long the dispatcher waits inside the batcher per iteration.
DISPATCHER_POLL_S = 0.01


@dataclass
class _InFlightBatch:
    """One dispatched batch awaiting its response."""

    seq: int
    requests: List[PendingRequest]
    replica: int
    #: Replicas that have already rejected this batch as too stale.
    tried: Set[int] = field(default_factory=set)
    first_reason: str = ""


class Frontend:
    """The frontend role of the serving world (runs on the last rank)."""

    def __init__(self, comm, config: ServingConfig) -> None:
        self._comm = comm
        self._serve = comm.dup(protocol.SERVE_CHANNEL)
        self._swap = comm.dup(protocol.SWAP_CHANNEL)
        self.config = config
        self.batcher = DynamicBatcher(
            config.max_batch_size, config.max_queue_delay_s, config.max_queue_depth
        )
        self._replicas = list(config.replica_ranks)
        self._lock = threading.Lock()
        self._outstanding: Dict[int, int] = {r: 0 for r in self._replicas}
        self._inflight: Dict[int, _InFlightBatch] = {}
        self._retry: Deque[_InFlightBatch] = deque()
        self._next_seq = 0
        self._rr = 0
        self._stop = threading.Event()
        # The dispatcher and collector are fresh threads with no
        # thread-local recorder; they rebind the one the frontend rank's
        # thread had bound at construction.
        self._recorder = _obs.current()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serving-dispatcher", daemon=True
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name="serving-collector", daemon=True
        )
        # -------- accounting
        # Streaming log-bucketed histogram instead of a raw latency list:
        # O(1) per completed request and bounded memory under sustained
        # load, with p50/p99 within 1% of the exact sample percentiles.
        self._latencies = LogHistogram()
        self._versions_served: Dict[int, int] = {}
        self._announced_version = 0
        self._replica_health: Dict[int, Dict[str, int]] = {}
        self._completed = 0
        self._stale_failures = 0

    # --------------------------------------------------------------- api
    def start(self) -> "Frontend":
        self._dispatcher.start()
        self._collector.start()
        return self

    def submit(self, inputs: np.ndarray) -> RequestFuture:
        """Admit one request (one example); see :class:`DynamicBatcher`."""
        return self.batcher.submit(np.asarray(inputs, dtype=np.float64))

    @property
    def announced_version(self) -> int:
        with self._lock:
            return self._announced_version

    def outstanding(self) -> int:
        with self._lock:
            return sum(len(b.requests) for b in self._inflight.values()) + len(
                self._retry
            )

    # ---------------------------------------------------------- shutdown
    def shutdown(self, drain_timeout: float = 30.0) -> Dict[str, Any]:
        """Drain in-flight work, stop the replicas, return the report.

        Requests still queued in the batcher are failed (clients should
        await their futures before triggering shutdown); dispatched
        batches are given ``drain_timeout`` seconds to complete.
        """
        for pending in self.batcher.close():
            pending.future.set_exception(
                RuntimeError("serving frontend shutting down")
            )
        deadline = time.perf_counter() + drain_timeout
        while self.outstanding() and time.perf_counter() < deadline:
            time.sleep(0.005)
        self._stop.set()
        self._dispatcher.join(timeout=drain_timeout)
        self._collector.join(timeout=drain_timeout)
        # Threads are down: this is now the only thread touching the
        # serve channel, so the stop fan-out cannot interleave with a
        # dispatch.
        for replica in self._replicas:
            protocol.send_stop(self._serve, replica)
        with self._lock:
            leftovers = list(self._inflight.values()) + list(self._retry)
            self._inflight.clear()
            self._retry.clear()
        for batch in leftovers:
            for pending in batch.requests:
                if not pending.future.done():
                    pending.future.set_exception(
                        RuntimeError("serving frontend shut down mid-request")
                    )
        return self.report()

    # ------------------------------------------------------------ report
    def report(self) -> Dict[str, Any]:
        with self._lock:
            report: Dict[str, Any] = {
                "completed_requests": self._completed,
                "rejected_submissions": self.batcher.rejected,
                "stale_failures": self._stale_failures,
                "versions_served": dict(sorted(self._versions_served.items())),
                "announced_version": self._announced_version,
                "replica_health": {
                    r: dict(h) for r, h in sorted(self._replica_health.items())
                },
            }
        if self._latencies.count:
            report["latency_p50_s"] = self._latencies.percentile(50)
            report["latency_p99_s"] = self._latencies.percentile(99)
            report["latency_mean_s"] = self._latencies.mean
            report["latency_histogram"] = self._latencies.to_dict()
        return report

    # -------------------------------------------------------- dispatcher
    def _least_loaded(self, excluding: Set[int]) -> Optional[int]:
        candidates = [r for r in self._replicas if r not in excluding]
        if not candidates:
            return None
        # Ties rotate round-robin so an idle pool still spreads load
        # (min-by-rank would pin all traffic on the first replica).
        n = len(self._replicas)
        self._rr = (self._rr + 1) % n
        chosen = min(
            candidates,
            key=lambda r: (
                self._outstanding[r],
                (self._replicas.index(r) - self._rr) % n,
            ),
        )
        return chosen

    def _dispatch(self, batch: _InFlightBatch) -> None:
        protocol.send_request(
            self._serve,
            batch.replica,
            batch.seq,
            [p.request_id for p in batch.requests],
            np.stack([p.inputs for p in batch.requests]),
        )

    def _dispatch_loop(self) -> None:
        _obs.bind(self._recorder)
        while True:
            retry = None
            rerouted = False
            with self._lock:
                if self._retry:
                    retry = self._retry.popleft()
                    replica = self._least_loaded(retry.tried)
                    if replica is not None:
                        retry.seq = self._next_seq
                        self._next_seq += 1
                        retry.replica = replica
                        self._outstanding[replica] += len(retry.requests)
                        self._inflight[retry.seq] = retry
                        rerouted = True
            if retry is not None:
                if rerouted:
                    self._dispatch(retry)
                else:
                    self._fail_stale(retry)
                continue
            requests = self.batcher.next_batch(poll_timeout=DISPATCHER_POLL_S)
            if requests is None:
                if self._stop.is_set():
                    return
                continue
            with self._lock:
                replica = self._least_loaded(set())
                seq = self._next_seq
                self._next_seq += 1
                batch = _InFlightBatch(seq, requests, replica)
                self._outstanding[replica] += len(requests)
                self._inflight[seq] = batch
            self._dispatch(batch)

    def _fail_stale(self, batch: _InFlightBatch) -> None:
        with self._lock:
            self._stale_failures += len(batch.requests)
        error = StaleReplicaError(
            f"all {len(self._replicas)} replica(s) refused the batch as too "
            f"stale: {batch.first_reason}"
        )
        for pending in batch.requests:
            pending.future.set_exception(error)

    # --------------------------------------------------------- collector
    def _collect_loop(self) -> None:
        _obs.bind(self._recorder)
        publisher = self.config.publisher_rank
        while not self._stop.is_set() or self.outstanding():
            if publisher is not None:
                while True:
                    announce = self._swap.poll(source=publisher)
                    if announce is None:
                        break
                    with self._lock:
                        self._announced_version = max(
                            self._announced_version, int(announce[1])
                        )
            try:
                msg = self._serve.recv(source=ANY_SOURCE, timeout=COLLECTOR_POLL_S)
            except CommTimeoutError:
                continue
            kind = msg[0]
            if kind == protocol.MSG_RESULT:
                self._on_result(msg)
            elif kind == protocol.MSG_REJECT:
                self._on_reject(msg)
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"frontend: unexpected message {kind!r}")

    def _take_inflight(self, seq: int) -> Optional[_InFlightBatch]:
        with self._lock:
            batch = self._inflight.pop(seq, None)
            if batch is not None:
                self._outstanding[batch.replica] -= len(batch.requests)
            return batch

    def _on_result(self, msg) -> None:
        _, seq, request_ids, outputs, version, health = msg
        batch = self._take_inflight(seq)
        if batch is None:  # pragma: no cover - duplicate response guard
            return
        now = time.perf_counter()
        with self._lock:
            self._replica_health[batch.replica] = dict(health)
            self._versions_served[version] = self._versions_served.get(
                version, 0
            ) + len(batch.requests)
            self._completed += len(batch.requests)
            self._latencies.extend(
                now - p.future.submitted_at for p in batch.requests
            )
        outputs = np.asarray(outputs)
        for i, pending in enumerate(batch.requests):
            pending.future.set_result(outputs[i], version)

    def _on_reject(self, msg) -> None:
        _, seq, request_ids, reason, applied, announced, health = msg
        batch = self._take_inflight(seq)
        if batch is None:  # pragma: no cover - duplicate response guard
            return
        with self._lock:
            self._replica_health[batch.replica] = dict(health)
            self._announced_version = max(self._announced_version, int(announced))
            batch.tried.add(batch.replica)
            if not batch.first_reason:
                batch.first_reason = reason
            exhausted = len(batch.tried) >= len(self._replicas)
            if not exhausted:
                self._retry.append(batch)
        if exhausted:
            self._fail_stale(batch)
