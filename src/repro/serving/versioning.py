"""Double-buffered, monotonically versioned weights with bounded staleness.

Each replica owns one :class:`WeightStore`.  The replica's collector
stages incoming weight payloads and records version announcements; the
serving loop applies the newest staged version *between* batches, so any
in-flight batch finishes on the weights it started with (double
buffering) and a batch never observes a half-written parameter vector.

Versions are monotonic: staging an older (or equal) version than the one
already applied or staged is a no-op, so replicas converge on the newest
version regardless of message interleaving.

The bounded-staleness knob compares the *announced* frontier against the
*applied* version: the trainer announces every new version cheaply but
ships full weights less often, so a replica can know it is behind without
having the bytes to catch up.  When ``staleness() > K`` the replica
refuses to serve (the frontend re-routes or fails the request) rather
than return predictions from weights more than ``K`` versions old.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs import recorder as _obs


@dataclass(frozen=True)
class VersionedWeights:
    """One immutable published parameter set."""

    version: int
    flat: np.ndarray
    model_hash: str = ""


class WeightStore:
    """Thread-safe staging area for hot-swappable model weights.

    The collector thread calls :meth:`stage` / :meth:`announce`; the
    serving loop calls :meth:`apply_pending` between batches and
    :meth:`staleness` before each one.  Only the newest staged version is
    kept — intermediate versions a slow replica never applied are
    skipped, which is exactly what a converging replica wants.
    """

    def __init__(self, initial_version: int = 0) -> None:
        self._lock = threading.Lock()
        self._applied_version = int(initial_version)
        self._announced_version = int(initial_version)
        self._pending: Optional[VersionedWeights] = None
        #: Number of weight sets actually swapped in via :meth:`apply_pending`.
        self.swaps_applied = 0
        #: Number of staged payloads discarded as stale (version <= applied).
        self.swaps_discarded = 0
        # Stage runs on the replica's collector path; capture the owning
        # rank's recorder at construction rather than per call.
        self._recorder = _obs.current()

    # ------------------------------------------------------------- ingest
    def stage(self, weights: VersionedWeights) -> bool:
        """Record an incoming weight payload; newest version wins.

        Returns ``True`` if the payload became the pending set, ``False``
        if it was discarded as stale.  Also advances the announced
        frontier (a shipped version is implicitly announced).
        """
        with self._lock:
            self._announced_version = max(self._announced_version, weights.version)
            if weights.version <= self._applied_version:
                self.swaps_discarded += 1
                staged = False
            elif self._pending is not None and weights.version <= self._pending.version:
                self.swaps_discarded += 1
                staged = False
            else:
                self._pending = weights
                staged = True
        if self._recorder is not None:
            self._recorder.instant(
                "swap-stage", "serving", version=weights.version, staged=staged
            )
        return staged

    def announce(self, version: int) -> None:
        """Advance the announced-version frontier (no payload)."""
        with self._lock:
            self._announced_version = max(self._announced_version, int(version))

    # -------------------------------------------------------------- apply
    def apply_pending(self, model) -> Optional[int]:
        """Swap the pending weights into ``model`` if any are staged.

        Called between batches only.  Returns the newly applied version,
        or ``None`` if nothing was pending.
        """
        with self._lock:
            pending = self._pending
            self._pending = None
        if pending is None:
            return None
        from repro.nn.parameters import assign_flat_parameters

        assign_flat_parameters(model, pending.flat)
        with self._lock:
            self._applied_version = pending.version
            self.swaps_applied += 1
        if self._recorder is not None:
            self._recorder.instant(
                "swap-apply", "serving", version=pending.version
            )
        return pending.version

    # ------------------------------------------------------------- status
    @property
    def applied_version(self) -> int:
        with self._lock:
            return self._applied_version

    @property
    def announced_version(self) -> int:
        with self._lock:
            return self._announced_version

    def staleness(self) -> int:
        """Announced versions this store has not yet applied."""
        with self._lock:
            return self._announced_version - self._applied_version

    def too_stale(self, max_staleness_versions: Optional[int]) -> bool:
        """Whether serving should be refused under the bounded-staleness knob."""
        if max_staleness_versions is None:
            return False
        return self.staleness() > max_staleness_versions
