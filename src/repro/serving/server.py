"""Launching and driving a serving world.

Two ways to run one:

* :func:`serve` — batch mode: launch the world on any registered comm
  backend, drive it with a built-in :class:`Workload` (client threads
  living inside the frontend rank, so the traffic generator works on
  process transports too) and return a :class:`ServingReport`.  This is
  what ``python -m repro serve`` and the serving benchmark call.
* :class:`InferenceServer` — interactive mode on the thread backend: the
  world runs in a background thread and the caller submits requests from
  its own thread via a shared in-process bridge.  Tests use this to
  interleave submissions with hot swaps deterministically.

Both run the same SPMD entry, :func:`_serving_main`, which dispatches on
rank into the trainer loop (:mod:`repro.serving.trainer`), the replica
loop (:mod:`repro.serving.replica`) or the frontend
(:mod:`repro.serving.frontend`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.comm.backend import launch
from repro.obs.metrics import LogHistogram
from repro.serving.batching import BackpressureError, StaleReplicaError
from repro.serving.config import ServingConfig
from repro.serving.frontend import Frontend
from repro.serving.replica import run_replica
from repro.serving.trainer import run_trainer


@dataclass
class Workload:
    """The built-in traffic generator (threads inside the frontend rank).

    ``clients`` threads submit ``num_requests`` single-example requests
    round-robin, each waiting for its response before sending the next
    (closed-loop clients).  Backpressure rejections are retried after
    ``backpressure_retry_s``; staleness failures and timeouts are
    counted, not retried.
    """

    num_requests: int = 64
    clients: int = 4
    timeout_s: float = 60.0
    backpressure_retry_s: float = 0.002
    #: Seconds each client sleeps between its requests (0 = closed loop
    #: at full speed).
    think_time_s: float = 0.0

    def validate(self) -> None:
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")


@dataclass
class ServingReport:
    """Merged outcome of one serving run."""

    config: Dict[str, Any]
    frontend: Dict[str, Any]
    replicas: List[Dict[str, Any]] = field(default_factory=list)
    trainers: List[Dict[str, Any]] = field(default_factory=list)
    workload: Optional[Dict[str, Any]] = None

    # Convenience views used by the CLI assertions and the benchmark.
    @property
    def completed_requests(self) -> int:
        return int(self.workload["completed"]) if self.workload else 0

    @property
    def p50_s(self) -> Optional[float]:
        return self.workload.get("latency_p50_s") if self.workload else None

    @property
    def p99_s(self) -> Optional[float]:
        return self.workload.get("latency_p99_s") if self.workload else None

    @property
    def requests_per_s(self) -> Optional[float]:
        return self.workload.get("requests_per_s") if self.workload else None

    @property
    def versions_served(self) -> List[int]:
        return sorted(int(v) for v in self.frontend.get("versions_served", {}))

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def format_report(report: ServingReport) -> str:
    """Human-readable summary of a serving run (used by the CLI)."""
    cfg = report.config
    lines = [
        "serving report",
        f"  world      : {cfg['train_ranks']} trainer(s) + "
        f"{cfg['replicas']} replica(s) + 1 frontend on "
        f"{cfg['comm_backend'] or 'default'} backend",
        f"  batching   : max_batch_size={cfg['max_batch_size']}, "
        f"max_queue_delay={1e3 * cfg['max_queue_delay_s']:.1f} ms, "
        f"max_queue_depth={cfg['max_queue_depth']}",
        f"  staleness  : K={cfg['max_staleness_versions']}",
    ]
    if report.workload:
        w = report.workload
        lines.append(
            f"  workload   : {w['completed']}/{w['offered']} completed by "
            f"{w['clients']} client(s) in {w['elapsed_s']:.2f} s "
            f"({w['requests_per_s']:.0f} req/s); "
            f"{w['stale_failures']} stale, {w['timeouts']} timeout(s), "
            f"{w['backpressure_retries']} backpressure retrie(s)"
        )
        if "latency_p50_s" in w:
            lines.append(
                f"  latency    : p50 {1e3 * w['latency_p50_s']:.2f} ms, "
                f"p99 {1e3 * w['latency_p99_s']:.2f} ms, "
                f"mean {1e3 * w['latency_mean_s']:.2f} ms"
            )
    lines.append(
        f"  versions   : served {report.versions_served or [0]}, "
        f"announced {report.frontend.get('announced_version')}"
    )
    for replica in report.replicas:
        lines.append(
            f"  replica {replica['rank']:>3}: "
            f"{replica['served_requests']} request(s) in "
            f"{replica['served_batches']} batch(es), "
            f"{replica['rejected_batches']} rejected, "
            f"{replica['swaps_applied']} swap(s) applied "
            f"(version {replica['applied_version']})"
        )
    for trainer in report.trainers:
        lines.append(
            f"  trainer {trainer['rank']:>3}: {trainer['steps']} step(s), "
            f"final version {trainer['final_version']}, "
            f"{trainer['published_versions']} publish(es), "
            f"final loss {trainer['final_loss']:.4f}"
        )
    return "\n".join(lines)


def _request_inputs(config: ServingConfig, index: int) -> np.ndarray:
    """Deterministic input vector of request ``index``."""
    rng = np.random.default_rng(config.seed * 1_000_003 + index)
    return rng.standard_normal(config.input_dim)


def _run_workload(
    frontend: Frontend, config: ServingConfig, workload: Workload
) -> Dict[str, Any]:
    """Drive the frontend with closed-loop client threads; merge stats."""
    # One shared streaming histogram instead of per-client raw lists:
    # O(1) per request, bounded memory, and p50/p99 within 1% of the
    # exact sample percentiles (LogHistogram is thread-safe).
    latencies = LogHistogram()
    versions: List[set] = [set() for _ in range(workload.clients)]
    stale: List[int] = [0] * workload.clients
    timeouts: List[int] = [0] * workload.clients
    backpressure: List[int] = [0] * workload.clients

    def client(c: int) -> None:
        for index in range(c, workload.num_requests, workload.clients):
            inputs = _request_inputs(config, index)
            start = time.perf_counter()
            while True:
                try:
                    future = frontend.submit(inputs)
                    break
                except BackpressureError:
                    backpressure[c] += 1
                    time.sleep(workload.backpressure_retry_s)
            try:
                _, version = future.wait(timeout=workload.timeout_s)
            except StaleReplicaError:
                stale[c] += 1
                continue
            except TimeoutError:
                timeouts[c] += 1
                continue
            latencies.push(time.perf_counter() - start)
            versions[c].add(int(version))
            if workload.think_time_s:
                time.sleep(workload.think_time_s)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(c,), name=f"serving-client-{c}")
        for c in range(workload.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    completed = latencies.count
    stats: Dict[str, Any] = {
        "offered": workload.num_requests,
        "completed": int(completed),
        "stale_failures": int(sum(stale)),
        "timeouts": int(sum(timeouts)),
        "backpressure_retries": int(sum(backpressure)),
        "clients": workload.clients,
        "elapsed_s": elapsed,
        "requests_per_s": float(completed / elapsed) if elapsed > 0 else 0.0,
        "versions_seen": sorted(set().union(*versions)) if versions else [],
    }
    if completed:
        stats["latency_p50_s"] = latencies.percentile(50)
        stats["latency_p99_s"] = latencies.percentile(99)
        stats["latency_mean_s"] = latencies.mean
        stats["latency_histogram"] = latencies.to_dict()
    return stats


class _FrontendBridge:
    """In-process handle linking :class:`InferenceServer` to its frontend.

    Only meaningful on the thread backend, where the SPMD ranks share the
    launcher's address space and the bridge object can be passed through
    ``launch`` without pickling.
    """

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.stop = threading.Event()
        self.frontend: Optional[Frontend] = None
        self.report: Optional[Dict[str, Any]] = None


def _serving_main(
    comm,
    config: ServingConfig,
    workload: Optional[Workload] = None,
    bridge: Optional[_FrontendBridge] = None,
) -> Dict[str, Any]:
    """SPMD entry of the serving world: dispatch on rank into a role."""
    rank = comm.rank
    if rank in config.trainer_ranks:
        result = run_trainer(comm, config)
        result["role"] = "trainer"
        return result
    if rank in config.replica_ranks:
        result = run_replica(comm, config)
        result["role"] = "replica"
        return result

    frontend = Frontend(comm, config).start()
    stats: Optional[Dict[str, Any]] = None
    if bridge is not None:
        bridge.frontend = frontend
        bridge.ready.set()
        bridge.stop.wait()
    elif workload is not None:
        stats = _run_workload(frontend, config, workload)
    report = frontend.shutdown()
    report["role"] = "frontend"
    if stats is not None:
        report["workload"] = stats
    if bridge is not None:
        bridge.report = report
    return report


def _assemble(config: ServingConfig, results: List[Any]) -> ServingReport:
    frontend = results[config.frontend_rank]
    return ServingReport(
        config=asdict(config),
        frontend=frontend,
        replicas=[results[r] for r in config.replica_ranks],
        trainers=[results[r] for r in config.trainer_ranks],
        workload=frontend.get("workload"),
    )


def serve(
    config: ServingConfig,
    workload: Optional[Workload] = None,
    timeout: Optional[float] = 300.0,
) -> ServingReport:
    """Launch a serving world, drive it with ``workload``, return the report."""
    config.validate()
    workload = workload or Workload()
    workload.validate()
    results = launch(
        _serving_main,
        config.world_size,
        config,
        workload,
        backend=config.comm_backend,
        timeout=timeout,
    )
    return _assemble(config, results)


class InferenceServer:
    """Interactive serving handle on the thread backend.

    >>> with InferenceServer(ServingConfig(replicas=2)) as server:
    ...     output, version = server.infer(np.zeros(64))

    The world (trainers, replicas, frontend) runs in a background thread;
    :meth:`submit` and :meth:`infer` hand requests straight to the
    frontend's batcher.  :meth:`stop` (or leaving the ``with`` block)
    drains in-flight work, stops the replicas and stores the final
    :class:`ServingReport` in :attr:`report`.
    """

    def __init__(
        self,
        config: Optional[ServingConfig] = None,
        timeout: Optional[float] = 300.0,
    ) -> None:
        config = config or ServingConfig()
        if config.comm_backend not in (None, "thread"):
            raise ValueError(
                f"InferenceServer requires the thread backend (the bridge is "
                f"an in-process object), got {config.comm_backend!r}"
            )
        config = ServingConfig(**{**asdict(config), "comm_backend": "thread"})
        config.validate()
        self.config = config
        self.report: Optional[ServingReport] = None
        self._timeout = timeout
        self._bridge = _FrontendBridge()
        self._error: Optional[BaseException] = None
        self._results: Optional[List[Any]] = None
        self._thread = threading.Thread(
            target=self._run, name="serving-world", daemon=True
        )

    def _run(self) -> None:
        try:
            self._results = launch(
                _serving_main,
                self.config.world_size,
                self.config,
                None,
                self._bridge,
                backend="thread",
                timeout=self._timeout,
            )
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._bridge.ready.set()

    # ---------------------------------------------------------- lifecycle
    def start(self, ready_timeout: float = 60.0) -> "InferenceServer":
        self._thread.start()
        if not self._bridge.ready.wait(ready_timeout):
            raise RuntimeError("serving world failed to come up in time")
        if self._error is not None:
            raise RuntimeError("serving world crashed on startup") from self._error
        return self

    def stop(self, join_timeout: float = 60.0) -> ServingReport:
        self._bridge.stop.set()
        self._thread.join(join_timeout)
        if self._error is not None:
            raise RuntimeError("serving world crashed") from self._error
        if self._results is None:
            raise RuntimeError("serving world did not shut down in time")
        self.report = _assemble(self.config, self._results)
        return self.report

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._thread.is_alive() or self.report is None:
            self.stop()

    # ----------------------------------------------------------- requests
    @property
    def frontend(self) -> Frontend:
        if self._bridge.frontend is None:
            raise RuntimeError("serving world is not running (call start())")
        return self._bridge.frontend

    def submit(self, inputs: np.ndarray):
        """Admit one request; returns its RequestFuture."""
        return self.frontend.submit(inputs)

    def infer(self, inputs: np.ndarray, timeout: Optional[float] = None):
        """Submit one request and wait; returns ``(output, version)``."""
        timeout = self.config.request_timeout_s if timeout is None else timeout
        return self.submit(inputs).wait(timeout=timeout)
