"""Configuration of the online serving tier."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ServingConfig:
    """Configuration of one serving world.

    The world has ``train_ranks + replicas + 1`` ranks on the configured
    comm backend: ranks ``[0, train_ranks)`` run data-parallel SGD and
    publish weight versions, ranks ``[train_ranks, train_ranks +
    replicas)`` are model replicas, and the last rank is the frontend
    (dynamic batcher + router + response collector).

    Attributes
    ----------
    replicas:
        Number of model replicas serving inference batches.
    train_ranks:
        Ranks of the co-scheduled training world (0 = serve-only: the
        replicas keep version 0 forever).
    comm_backend:
        Registered comm backend carrying the world (``"thread"`` for
        tests and the in-process :class:`~repro.serving.InferenceServer`
        handle, ``"process"`` / ``"shm"`` for real concurrency).  ``None``
        uses the process-wide default.
    max_batch_size:
        Most requests the frontend fuses into one inference batch.
    max_queue_delay_s:
        Longest a queued request may wait for batch-mates before the
        batch is dispatched anyway — the batching half of the latency
        SLO.  With ``max_batch_size`` it defines the batching policy:
        dispatch at ``max_batch_size`` requests or ``max_queue_delay_s``
        seconds, whichever comes first.
    max_queue_depth:
        Admission-control bound: once this many requests are queued
        (not yet dispatched), further submissions fail fast with
        :class:`~repro.serving.BackpressureError` instead of growing the
        queue without bound.
    max_staleness_versions:
        Bounded-staleness knob ``K``: a replica refuses to serve once the
        latest *announced* model version is more than ``K`` versions
        ahead of the version it has applied.  ``None`` disables the
        refusal (serve whatever is loaded).
    request_timeout_s:
        How long a client waits for its response future.
    publish_every_steps:
        The training world publishes full weights to every replica each
        time its monotonic step counter advances by this many steps.
    announce_every_steps:
        The training world announces the *existence* of new versions at
        this (usually finer) period; announcements are what the
        bounded-staleness check compares against.
    train_steps:
        Steps the co-scheduled training world runs before finishing.
    train_batch_size:
        Global batch size of the co-scheduled training world.
    learning_rate:
        Learning rate of the co-scheduled training world.
    input_dim:
        Input dimensionality of the default model/workload pair.
    seed:
        Base seed: identical model initialisation on every rank (the
        replicas must start from the training world's version-0 model).
    """

    replicas: int = 2
    train_ranks: int = 0
    comm_backend: Optional[str] = None
    max_batch_size: int = 8
    max_queue_delay_s: float = 0.005
    max_queue_depth: int = 256
    max_staleness_versions: Optional[int] = None
    request_timeout_s: float = 30.0
    publish_every_steps: int = 5
    announce_every_steps: int = 1
    train_steps: int = 50
    train_batch_size: int = 32
    learning_rate: float = 0.05
    input_dim: int = 64
    seed: int = 0

    # ------------------------------------------------------------ layout
    @property
    def world_size(self) -> int:
        return self.train_ranks + self.replicas + 1

    @property
    def trainer_ranks(self) -> range:
        """Global ranks of the co-scheduled training world."""
        return range(0, self.train_ranks)

    @property
    def replica_ranks(self) -> range:
        """Global ranks of the replica pool."""
        return range(self.train_ranks, self.train_ranks + self.replicas)

    @property
    def frontend_rank(self) -> int:
        """Global rank of the frontend."""
        return self.train_ranks + self.replicas

    @property
    def publisher_rank(self) -> Optional[int]:
        """Global rank publishing weight versions (``None`` = serve-only)."""
        return 0 if self.train_ranks else None

    # -------------------------------------------------------- validation
    def validate(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.train_ranks < 0:
            raise ValueError(f"train_ranks must be >= 0, got {self.train_ranks}")
        if self.comm_backend is not None:
            from repro.comm.backend import get_backend

            get_backend(self.comm_backend)  # raises on unknown names
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_queue_delay_s < 0:
            raise ValueError(
                f"max_queue_delay_s must be >= 0, got {self.max_queue_delay_s}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.max_staleness_versions is not None and self.max_staleness_versions < 0:
            raise ValueError(
                f"max_staleness_versions must be >= 0 or None, "
                f"got {self.max_staleness_versions}"
            )
        if self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        if self.publish_every_steps < 1:
            raise ValueError(
                f"publish_every_steps must be >= 1, got {self.publish_every_steps}"
            )
        if self.announce_every_steps < 1:
            raise ValueError(
                f"announce_every_steps must be >= 1, got {self.announce_every_steps}"
            )
        if self.train_ranks:
            if self.train_steps < 1:
                raise ValueError(f"train_steps must be >= 1, got {self.train_steps}")
            if self.train_batch_size < self.train_ranks:
                raise ValueError(
                    f"train_batch_size must be >= train_ranks ({self.train_ranks}), "
                    f"got {self.train_batch_size}"
                )
            if self.learning_rate <= 0:
                raise ValueError(
                    f"learning_rate must be positive, got {self.learning_rate}"
                )
        if self.input_dim < 1:
            raise ValueError(f"input_dim must be >= 1, got {self.input_dim}")

    def describe(self) -> str:
        """One-line description used in reports."""
        backend = f", backend={self.comm_backend}" if self.comm_backend else ""
        train = (
            f", train_ranks={self.train_ranks} (publish every "
            f"{self.publish_every_steps} steps)"
            if self.train_ranks
            else ", serve-only"
        )
        staleness = (
            f", K={self.max_staleness_versions}"
            if self.max_staleness_versions is not None
            else ""
        )
        return (
            f"serving: {self.replicas} replica(s){train}{backend}, "
            f"batch<= {self.max_batch_size}, delay<= {self.max_queue_delay_s * 1e3:.1f} ms, "
            f"queue<= {self.max_queue_depth}{staleness}"
        )
