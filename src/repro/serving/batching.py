"""Dynamic batching under a latency SLO, with admission control.

The frontend fuses concurrent inference requests into batches the way
production model servers do: a batch is dispatched as soon as it reaches
``max_batch_size`` requests, or as soon as its *oldest* request has
waited ``max_queue_delay_s`` — whichever comes first.  Under light load
requests therefore pay at most one queue-delay of extra latency; under
heavy load batches fill instantly and the replicas see maximal batch
sizes.

Admission control bounds the queue: once ``max_queue_depth`` requests are
waiting, :meth:`DynamicBatcher.submit` raises
:class:`BackpressureError` instead of queueing — the caller sheds load or
retries, and the queue (and thus the latency of admitted requests) stays
bounded.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional, Tuple

from repro.obs import recorder as _obs


class BackpressureError(RuntimeError):
    """The admission queue is saturated; the request was not enqueued."""


class StaleReplicaError(RuntimeError):
    """Every routable replica refused the batch as too stale to serve."""


class RequestFuture:
    """Completion handle of one submitted request.

    The frontend completes the future with ``(output, model_version)`` —
    every response is tagged with the model version that produced it — or
    fails it with an exception (stale replicas, shutdown).
    """

    __slots__ = ("_event", "_output", "_version", "_error", "submitted_at")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._output: Any = None
        self._version: int = -1
        self._error: Optional[BaseException] = None
        self.submitted_at = time.perf_counter()

    # ------------------------------------------------------------ produce
    def set_result(self, output: Any, version: int) -> None:
        self._output = output
        self._version = int(version)
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    # ------------------------------------------------------------ consume
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Tuple[Any, int]:
        """Block until completion; returns ``(output, model_version)``.

        Raises the failure exception if the request failed, or
        :class:`TimeoutError` if no completion arrived in ``timeout``
        seconds.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"inference request not completed within {timeout} s"
            )
        if self._error is not None:
            raise self._error
        return self._output, self._version

    @property
    def latency(self) -> float:
        """Seconds from submission to now (or to completion once done)."""
        return time.perf_counter() - self.submitted_at


@dataclass
class PendingRequest:
    """One queued request awaiting batching."""

    request_id: int
    inputs: Any
    future: RequestFuture
    enqueued_at: float = field(default_factory=time.perf_counter)


class DynamicBatcher:
    """Thread-safe request queue implementing the batching policy.

    Parameters
    ----------
    max_batch_size:
        Dispatch a batch once it holds this many requests.
    max_queue_delay_s:
        ... or once its oldest request has waited this long.
    max_queue_depth:
        Admission bound; see :class:`BackpressureError`.
    """

    def __init__(
        self,
        max_batch_size: int,
        max_queue_delay_s: float,
        max_queue_depth: int,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_queue_delay_s < 0:
            raise ValueError(
                f"max_queue_delay_s must be >= 0, got {max_queue_delay_s}"
            )
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.max_batch_size = int(max_batch_size)
        self.max_queue_delay_s = float(max_queue_delay_s)
        self.max_queue_depth = int(max_queue_depth)
        self._queue: Deque[PendingRequest] = deque()
        self._cond = threading.Condition()
        self._next_id = 0
        self._closed = False
        #: Submissions rejected by admission control since construction.
        self.rejected = 0
        # Submit/dispatch run on client and dispatcher threads, so the
        # frontend rank's recorder is captured here, at construction.
        self._recorder = _obs.current()

    # -------------------------------------------------------------- admit
    def submit(self, inputs: Any) -> RequestFuture:
        """Queue one request; returns its completion future.

        Raises :class:`BackpressureError` when the queue is saturated and
        :class:`RuntimeError` after :meth:`close`.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("DynamicBatcher is closed; request rejected")
            if len(self._queue) >= self.max_queue_depth:
                self.rejected += 1
                if self._recorder is not None:
                    self._recorder.instant(
                        "queue-reject", "serving", depth=len(self._queue)
                    )
                raise BackpressureError(
                    f"admission queue saturated ({len(self._queue)} >= "
                    f"{self.max_queue_depth} queued requests)"
                )
            future = RequestFuture()
            self._queue.append(
                PendingRequest(self._next_id, inputs, future)
            )
            self._next_id += 1
            if self._recorder is not None:
                self._recorder.instant(
                    "queue-admit", "serving", request_id=self._next_id - 1
                )
                self._recorder.counter(
                    "queue-depth", len(self._queue), cat="serving"
                )
            self._cond.notify_all()
            return future

    @property
    def depth(self) -> int:
        """Requests currently queued (not yet dispatched)."""
        with self._cond:
            return len(self._queue)

    # ----------------------------------------------------------- dispatch
    def next_batch(self, poll_timeout: float = 0.1) -> Optional[List[PendingRequest]]:
        """Block until a batch is due under the policy, and return it.

        Returns ``None`` when no request arrived within ``poll_timeout``
        (so the dispatcher loop can check for shutdown) and an empty list
        never.  After :meth:`close`, drains the remaining queue and then
        keeps returning ``None``.
        """
        with self._cond:
            if not self._queue:
                if self._closed:
                    return None
                self._cond.wait(poll_timeout)
                if not self._queue:
                    return None
            # A batch exists; hold it until full or until the oldest
            # request's SLO clock runs out.
            deadline = self._queue[0].enqueued_at + self.max_queue_delay_s
            while len(self._queue) < self.max_batch_size and not self._closed:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = [
                self._queue.popleft()
                for _ in range(min(self.max_batch_size, len(self._queue)))
            ]
            if batch and self._recorder is not None:
                self._recorder.instant(
                    "batch-dispatch", "serving",
                    batch_size=len(batch),
                    oldest_wait_s=time.perf_counter() - batch[0].enqueued_at,
                )
                self._recorder.counter(
                    "batch-size", len(batch), cat="serving"
                )
            self._cond.notify_all()
            return batch or None

    # -------------------------------------------------------------- close
    def close(self) -> List[PendingRequest]:
        """Refuse further submissions; return any still-queued requests.

        The caller decides what to do with the drained requests (fail
        their futures, or dispatch one final batch).
        """
        with self._cond:
            self._closed = True
            drained = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
            return drained
