"""One model replica: serve batches, hot-swap weights between them.

A replica is a rank of the serving world running a plain serve loop:

1. drain the swap channel (stage weight payloads, record announcements);
2. apply the newest staged weights — *between* batches only, so an
   in-flight batch always finishes on the weights it started with;
3. block (briefly) for the next message from the frontend;
4. on a batch: refuse it if the bounded-staleness knob says the applied
   weights are too far behind the announced frontier, otherwise run the
   eval-mode forward pass and return the predictions tagged with the
   applied model version;
5. on a stop message: drain the swap channel once more and exit,
   returning the health counters as the rank result.

The model runs in eval mode (:meth:`repro.nn.module.Module.eval`), so
the layer forwards skip the backward-pass caches entirely — serving
keeps no gradient-side state.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.comm.communicator import CommTimeoutError
from repro.obs import recorder as _obs
from repro.serving import protocol
from repro.serving.config import ServingConfig
from repro.serving.versioning import VersionedWeights, WeightStore

#: How long the serve loop blocks for frontend traffic before it wakes
#: to drain the swap channel again.
REPLICA_POLL_S = 0.05


def default_model_factory(config: ServingConfig):
    """The model every rank of the default serving world builds.

    Seeded identically everywhere: the replicas must start from the
    training world's version-0 model or the first hot swap would be a
    discontinuity in served predictions.
    """
    from repro.nn.models.mlp import HyperplaneMLP

    return HyperplaneMLP(config.input_dim, seed=config.seed)


def _drain_swap(
    swap, publisher: Optional[int], store: WeightStore
) -> None:
    """Consume every queued swap message without blocking."""
    if publisher is None:
        return
    while True:
        msg = swap.poll(source=publisher)
        if msg is None:
            return
        kind = msg[0]
        if kind == protocol.MSG_WEIGHTS:
            _, version, flat, model_hash = msg
            store.stage(VersionedWeights(version, flat, model_hash))
        elif kind == protocol.MSG_ANNOUNCE:
            store.announce(msg[1])


def run_replica(
    comm,
    config: ServingConfig,
    model_factory: Optional[Callable[[ServingConfig], object]] = None,
) -> Dict[str, int]:
    """Serve loop of one replica rank; returns its health counters."""
    serve = comm.dup(protocol.SERVE_CHANNEL)
    swap = comm.dup(protocol.SWAP_CHANNEL)
    model = (model_factory or default_model_factory)(config)
    model.eval()
    store = WeightStore(0)
    publisher = config.publisher_rank
    frontend = config.frontend_rank
    health: Dict[str, int] = {
        "rank": comm.rank,
        "served_batches": 0,
        "served_requests": 0,
        "rejected_batches": 0,
        "swaps_applied": 0,
    }

    running = True
    while running:
        _drain_swap(swap, publisher, store)
        if store.apply_pending(model) is not None:
            health["swaps_applied"] += 1
        try:
            msg = serve.recv(source=frontend, timeout=REPLICA_POLL_S)
        except CommTimeoutError:
            continue
        kind = msg[0]
        if kind == protocol.MSG_STOP:
            running = False
            continue
        if kind != protocol.MSG_BATCH:  # pragma: no cover - protocol guard
            raise RuntimeError(f"replica {comm.rank}: unexpected message {kind!r}")
        _, batch_seq, request_ids, inputs = msg
        # Freshest possible weights for this batch — but never mid-batch.
        _drain_swap(swap, publisher, store)
        if store.apply_pending(model) is not None:
            health["swaps_applied"] += 1
        if store.too_stale(config.max_staleness_versions):
            health["rejected_batches"] += 1
            _obs.instant(
                "stale-reject", "serving",
                batch_seq=batch_seq,
                applied=store.applied_version,
                staleness=store.staleness(),
            )
            protocol.send_reject(
                serve,
                frontend,
                batch_seq,
                request_ids,
                f"applied version {store.applied_version} is "
                f"{store.staleness()} behind announced "
                f"{store.announced_version} (K={config.max_staleness_versions})",
                store.applied_version,
                store.announced_version,
                health,
            )
            continue
        with _obs.span(
            "serve-batch", "serving",
            batch_seq=batch_seq, batch_size=int(request_ids.size),
        ):
            outputs = np.asarray(model.forward(inputs))
        health["served_batches"] += 1
        health["served_requests"] += int(request_ids.size)
        protocol.send_result(
            serve,
            frontend,
            batch_seq,
            request_ids,
            outputs,
            store.applied_version,
            health,
        )

    # Consume any swap traffic that raced the stop so nothing lingers
    # unread in the mailboxes at world teardown.
    _drain_swap(swap, publisher, store)
    store.apply_pending(model)
    health["applied_version"] = store.applied_version
    health["announced_version"] = store.announced_version
    return health
