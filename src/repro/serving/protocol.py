"""Wire protocol of the serving tier.

All serving traffic runs on two dynamic sub-channels of the application
channel, so it never interferes with the collectives of a co-scheduled
training world:

* ``app.serve`` — frontend → replica inference batches, replica →
  frontend results/rejections, and the frontend's stop fan-out (stop
  must travel on the channel the replica's blocked receive listens on);
* ``app.swap`` — publisher → replica weight payloads and publisher →
  everyone version announcements.

Messages are small picklable tuples whose first element is the kind, and
every tag is minted from the ``serving`` region of the global tag map
(:mod:`repro.comm.tags`).  Request/response pairing is by the batch
sequence number *in the payload*; the tags merely keep the matches
unambiguous while fewer than the region capacity of batches are in
flight.  A version is announced either explicitly (``announce``) or
implicitly by shipping its weights — the publisher never sends both for
one version to one destination, so swap tags stay unique per (source,
destination) pair.

:func:`serving_round_trip` re-expresses one serving round as a
deterministic SPMD schedule for the static verifier
(:mod:`repro.analysis.schedule_verifier`): request fan-out, response
fan-in, hot-swap publishes/announces and the stop fan-out, all with
explicit sources — so match-completeness, tag soundness and deadlock
freedom of the serving schedule are machine-checked like every
collective.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.comm import tags

#: Dynamic sub-channel carrying requests, responses and stop messages.
SERVE_CHANNEL = "app.serve"
#: Dynamic sub-channel carrying weight payloads and version announcements.
SWAP_CHANNEL = "app.swap"

MSG_BATCH = "batch"
MSG_RESULT = "result"
MSG_REJECT = "reject"
MSG_WEIGHTS = "weights"
MSG_ANNOUNCE = "announce"
MSG_STOP = "stop"

#: Control-tag kind of the stop message.
CONTROL_STOP = 0


# ---------------------------------------------------------------------------
# senders (comm must already be dup'ed onto the right channel)
# ---------------------------------------------------------------------------
def send_request(
    comm,
    dest: int,
    batch_seq: int,
    request_ids: Sequence[int],
    inputs: np.ndarray,
) -> None:
    """Frontend -> replica: one fused inference batch."""
    payload = (
        MSG_BATCH,
        int(batch_seq),
        np.asarray(request_ids, dtype=np.int64),
        np.ascontiguousarray(inputs),
    )
    comm.send(payload, dest, tag=tags.serving_request_tag(batch_seq))


def send_result(
    comm,
    dest: int,
    batch_seq: int,
    request_ids: np.ndarray,
    outputs: np.ndarray,
    version: int,
    health: Dict[str, int],
) -> None:
    """Replica -> frontend: predictions tagged with the serving version."""
    payload = (
        MSG_RESULT,
        int(batch_seq),
        np.asarray(request_ids, dtype=np.int64),
        np.ascontiguousarray(outputs),
        int(version),
        dict(health),
    )
    comm.send(payload, dest, tag=tags.serving_response_tag(batch_seq))


def send_reject(
    comm,
    dest: int,
    batch_seq: int,
    request_ids: np.ndarray,
    reason: str,
    applied_version: int,
    announced_version: int,
    health: Dict[str, int],
) -> None:
    """Replica -> frontend: refusal (e.g. bounded-staleness violation)."""
    payload = (
        MSG_REJECT,
        int(batch_seq),
        np.asarray(request_ids, dtype=np.int64),
        str(reason),
        int(applied_version),
        int(announced_version),
        dict(health),
    )
    comm.send(payload, dest, tag=tags.serving_response_tag(batch_seq))


def send_weights(
    comm,
    dest: int,
    version: int,
    flat: np.ndarray,
    model_hash: str = "",
) -> None:
    """Publisher -> replica: a full parameter set for hot swap."""
    payload = (
        MSG_WEIGHTS,
        int(version),
        np.ascontiguousarray(flat, dtype=np.float64),
        str(model_hash),
    )
    comm.send(payload, dest, tag=tags.serving_swap_tag(version))


def send_announce(comm, dest: int, version: int) -> None:
    """Publisher -> replica/frontend: version ``version`` now exists."""
    comm.send((MSG_ANNOUNCE, int(version)), dest, tag=tags.serving_swap_tag(version))


def send_stop(comm, dest: int) -> None:
    """Frontend -> replica: shut down after the current batch."""
    comm.send((MSG_STOP,), dest, tag=tags.serving_control_tag(CONTROL_STOP))


# ---------------------------------------------------------------------------
# world layout helpers shared by the verifier schedule
# ---------------------------------------------------------------------------
def round_trip_layout(
    world_size: int,
) -> Tuple[int, Optional[int], Tuple[int, ...]]:
    """(frontend, publisher, replicas) of the verifier's serving world.

    Mirrors the real layout of :class:`~repro.serving.ServingConfig` —
    trainers first, replicas next, frontend last — shrunk to the smallest
    co-scheduled shape: one publisher (when ``world_size >= 3``), all
    middle ranks replicas, last rank frontend.  At ``world_size == 2``
    the world is serve-only (replica + frontend, no publisher).
    """
    if world_size < 2:
        raise ValueError(
            f"serving needs at least a replica and a frontend, got "
            f"world size {world_size}"
        )
    frontend = world_size - 1
    publisher: Optional[int] = 0 if world_size >= 3 else None
    first_replica = 1 if publisher is not None else 0
    return frontend, publisher, tuple(range(first_replica, frontend))


def serving_round_trip(comm, num_requests: int = 4, num_swaps: int = 2) -> Any:
    """One deterministic serving round for the schedule verifier.

    The frontend fans ``num_requests`` single-element batches out over
    the replicas round-robin and collects the responses; the publisher
    (when present) ships ``num_swaps`` weight versions to every replica,
    then announces two further versions to the replicas *and* the
    frontend; the frontend finally fans out stop messages.  Every receive
    names its source and every tag comes from the serving region, so the
    verifier's match/tag/deadlock checkers apply verbatim.

    Returns the integer sum of the response values on the frontend rank
    (each replica doubles its input, so the exact expected total is
    ``num_requests * (num_requests + 1)``) and ``None`` elsewhere.
    """
    frontend, publisher, replicas = round_trip_layout(comm.size)
    assigned = {s: replicas[s % len(replicas)] for s in range(num_requests)}
    shipped = range(1, num_swaps + 1)
    announced = range(num_swaps + 1, num_swaps + 3)
    rank = comm.rank

    if rank == frontend:
        for seq in range(num_requests):
            send_request(
                comm, assigned[seq], seq, [seq], np.array([float(seq + 1)])
            )
        total = 0.0
        for seq in range(num_requests):
            msg = comm.recv(
                source=assigned[seq], tag=tags.serving_response_tag(seq)
            )
            total += float(msg[3].sum())
        if publisher is not None:
            for version in announced:
                comm.recv(source=publisher, tag=tags.serving_swap_tag(version))
        for replica in replicas:
            send_stop(comm, replica)
        return int(total)

    if rank in replicas:
        for seq in [s for s in range(num_requests) if assigned[s] == rank]:
            msg = comm.recv(source=frontend, tag=tags.serving_request_tag(seq))
            outputs = 2.0 * msg[3]
            send_result(comm, frontend, seq, msg[2], outputs, 0, {})
        if publisher is not None:
            for version in shipped:
                comm.recv(source=publisher, tag=tags.serving_swap_tag(version))
            for version in announced:
                comm.recv(source=publisher, tag=tags.serving_swap_tag(version))
        comm.recv(source=frontend, tag=tags.serving_control_tag(CONTROL_STOP))
        return None

    # publisher: ship full weights, then announce weight-less versions.
    for version in shipped:
        for replica in replicas:
            send_weights(comm, replica, version, np.full(3, float(version)))
    for version in announced:
        for replica in replicas:
            send_announce(comm, replica, version)
        send_announce(comm, frontend, version)
    return None
