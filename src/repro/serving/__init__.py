"""Online inference tier on the comm fabric.

The serving subsystem turns the reproduction's comm fabric into a small
model server: a **frontend** rank batches concurrent inference requests
under a latency SLO (dispatch at ``max_batch_size`` requests or
``max_queue_delay_s`` seconds, whichever first; admission control with
backpressure), routes each batch to the least-loaded **replica** rank,
and completes per-request futures with results tagged by the serving
model version.  A co-scheduled **training world** — plain synchronous
data-parallel SGD over a :class:`~repro.comm.subworld.SubsetCommunicator`
on the same fabric — publishes weight versions that the replicas
hot-swap in between batches (double-buffered, monotonic versions), with
a bounded-staleness knob that makes replicas refuse to serve when more
than ``K`` announced versions behind.

Entry points: :func:`~repro.serving.server.serve` /
``python -m repro serve`` for batch runs with the built-in workload, and
:class:`~repro.serving.server.InferenceServer` for interactive use on
the thread backend.  The request/response and hot-swap schedules are
statically verified alongside the collectives by
``python -m repro verify`` (see
:func:`repro.serving.protocol.serving_round_trip`).
"""

from repro.serving.batching import (
    BackpressureError,
    DynamicBatcher,
    PendingRequest,
    RequestFuture,
    StaleReplicaError,
)
from repro.serving.config import ServingConfig
from repro.serving.frontend import Frontend
from repro.serving.replica import run_replica
from repro.serving.server import (
    InferenceServer,
    ServingReport,
    Workload,
    serve,
)
from repro.serving.trainer import run_trainer
from repro.serving.versioning import VersionedWeights, WeightStore

__all__ = [
    "BackpressureError",
    "DynamicBatcher",
    "PendingRequest",
    "RequestFuture",
    "StaleReplicaError",
    "ServingConfig",
    "Frontend",
    "run_replica",
    "run_trainer",
    "InferenceServer",
    "ServingReport",
    "Workload",
    "serve",
    "VersionedWeights",
    "WeightStore",
]
