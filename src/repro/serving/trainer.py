"""The co-scheduled training world: train, publish, announce.

The trainer ranks of a serving world run plain synchronous data-parallel
SGD over a :class:`~repro.comm.subworld.SubsetCommunicator` spanning only
themselves — the collectives layer runs verbatim on the subset view
while the serving traffic shares the same fabric on its own channels.

After every optimizer step the model version (the monotonic step
counter) advances.  Trainer rank 0 — the *publisher*; all trainers are
identical after the allreduce — feeds the replica pool:

* every ``publish_every_steps`` steps it ships the full flat parameter
  vector (plus its :func:`~repro.training.model_sync.model_hash`) to
  every replica: a hot-swap payload;
* every ``announce_every_steps`` steps in between it announces the bare
  version number.  Announcements are cheap, so the replicas always know
  the frontier; the gap between announced and shipped versions is what
  the bounded-staleness knob measures.

The frontend is announced on both occasions so its report can show the
training frontier next to the versions it actually served.
"""

from __future__ import annotations

from typing import Dict, List

from repro.collectives.sync import allreduce
from repro.comm.subworld import SubsetCommunicator
from repro.nn.parameters import (
    assign_flat_gradients,
    flatten_gradients,
    flatten_parameters,
)
from repro.serving import protocol
from repro.serving.config import ServingConfig
from repro.training.model_sync import model_hash


def run_trainer(comm, config: ServingConfig) -> Dict[str, object]:
    """Training loop of one trainer rank; returns its summary dict."""
    from repro.data.hyperplane import HyperplaneDataset
    from repro.data.loader import ShardedLoader
    from repro.nn.losses import MSELoss
    from repro.nn.optim import SGD
    from repro.serving.replica import default_model_factory

    trainers = list(config.trainer_ranks)
    train_rank = trainers.index(comm.rank)
    sub = SubsetCommunicator(comm, trainers) if len(trainers) > 1 else None
    swap = comm.dup(protocol.SWAP_CHANNEL)
    is_publisher = comm.rank == config.publisher_rank
    replicas = list(config.replica_ranks)

    model = default_model_factory(config)
    dataset = HyperplaneDataset(
        num_examples=max(4 * config.train_batch_size, 256),
        input_dim=config.input_dim,
        noise_std=0.5,
        seed=config.seed,
    )
    loader = ShardedLoader(
        dataset,
        config.train_batch_size,
        rank=train_rank,
        world_size=len(trainers),
        seed=config.seed,
    )
    loss_fn = MSELoss()
    optimizer = SGD(model, config.learning_rate)

    version = 0
    losses: List[float] = []
    published = 0
    epoch = 0
    while version < config.train_steps:
        for batch in loader.epoch_batches(epoch):
            if version >= config.train_steps:
                break
            model.zero_grad()
            outputs = model.forward(batch.inputs)
            loss, grad = loss_fn(outputs, batch.targets)
            model.backward(grad)
            if sub is not None:
                flat = flatten_gradients(model)
                flat = allreduce(
                    sub, flat, algorithm="recursive_doubling", average=True
                )
                assign_flat_gradients(model, flat)
            optimizer.step()
            version += 1
            losses.append(loss)
            if not is_publisher:
                continue
            if version % config.publish_every_steps == 0:
                flat_params = flatten_parameters(model)
                digest = model_hash(model)
                for replica in replicas:
                    protocol.send_weights(swap, replica, version, flat_params, digest)
                protocol.send_announce(swap, config.frontend_rank, version)
                published += 1
            elif version % config.announce_every_steps == 0:
                for replica in replicas:
                    protocol.send_announce(swap, replica, version)
                protocol.send_announce(swap, config.frontend_rank, version)
        epoch += 1

    return {
        "rank": comm.rank,
        "steps": version,
        "final_version": version,
        "published_versions": published,
        "final_loss": losses[-1] if losses else float("nan"),
        "model_hash": model_hash(model),
    }
