"""Fig. 3 — runtime distribution of Transformer training on WMT16.

The paper samples 20,653 batches (batch size 64, one third of an epoch)
and reports runtimes from 179 ms to 3,482 ms with a mean of 475 ms and a
standard deviation of 144 ms — inherent load imbalance caused by variable
sentence lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.bucketing import BucketBatchSampler
from repro.data.wmt import sample_sentence_lengths
from repro.experiments.report import format_table
from repro.imbalance.cost_model import transformer_wmt_cost_model
from repro.utils.stats import DistributionSummary, Histogram, summarize

#: Reference numbers from Section 2.2 of the paper.
PAPER_RUNTIME_MS = {"min": 179, "max": 3482, "mean": 475, "std": 144}
PAPER_NUM_BATCHES = 20_653


@dataclass
class Fig3Result:
    """Measured batch-runtime distribution for the Transformer workload."""

    num_sentences: int
    batch_size: int
    num_batches: int
    runtime_summary_ms: DistributionSummary
    hist_centers: np.ndarray
    hist_counts: np.ndarray


def run(
    num_sentences: int = 200_000,
    batch_size: int = 64,
    seed: int = 0,
) -> Fig3Result:
    """Sample sentence lengths, bucket them and measure batch runtimes."""
    lengths = sample_sentence_lengths(num_sentences, seed=seed)
    cost_model = transformer_wmt_cost_model(batch_size=batch_size)
    sampler = BucketBatchSampler(
        lengths, batch_size=batch_size, num_buckets=16, seed=seed, drop_last=True
    )
    runtimes_ms = [
        cost_model.cost_from_size(float(lengths[batch].sum())) * 1000.0
        for batch in sampler.epoch_batches(0)
    ]
    hist = Histogram(bin_width=100.0)
    hist.extend(runtimes_ms)
    centers, counts = hist.as_series()
    return Fig3Result(
        num_sentences=num_sentences,
        batch_size=batch_size,
        num_batches=len(runtimes_ms),
        runtime_summary_ms=summarize(runtimes_ms),
        hist_centers=centers,
        hist_counts=counts,
    )


def report(result: Fig3Result) -> str:
    rows = [
        ("min runtime (ms)", PAPER_RUNTIME_MS["min"], result.runtime_summary_ms.min),
        ("max runtime (ms)", PAPER_RUNTIME_MS["max"], result.runtime_summary_ms.max),
        ("mean runtime (ms)", PAPER_RUNTIME_MS["mean"], result.runtime_summary_ms.mean),
        ("std runtime (ms)", PAPER_RUNTIME_MS["std"], result.runtime_summary_ms.std),
        ("num batches", PAPER_NUM_BATCHES, result.num_batches),
    ]
    return format_table(
        ["quantity", "paper", "reproduction"],
        rows,
        title=f"Fig. 3  Transformer/WMT batch runtimes (batch size {result.batch_size})",
    )
