"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes

* ``run(...) -> result`` — executes the experiment (with a ``scale``
  parameter so tests and benchmarks can run reduced versions), and
* ``report(result) -> str`` — prints the same rows/series the paper
  reports, side by side with the paper's numbers where applicable.

| Module | Paper content |
| --- | --- |
| :mod:`repro.experiments.fig2_workload` | Fig. 2a/2b — UCF101 video lengths and LSTM batch runtimes |
| :mod:`repro.experiments.fig3_wmt_runtime` | Fig. 3 — Transformer/WMT batch runtimes |
| :mod:`repro.experiments.fig4_cloud_runtime` | Fig. 4 — ResNet-50 cloud batch runtimes |
| :mod:`repro.experiments.table1_networks` | Table 1 — evaluated networks |
| :mod:`repro.experiments.fig9_microbenchmark` | Fig. 9 — partial allreduce latency + NAP |
| :mod:`repro.experiments.fig10_hyperplane` | Fig. 10 — hyperplane regression throughput/loss |
| :mod:`repro.experiments.fig11_imagenet` | Fig. 11 — ResNet/ImageNet throughput and accuracy |
| :mod:`repro.experiments.fig12_cifar_severe` | Fig. 12 — ResNet/CIFAR under severe imbalance |
| :mod:`repro.experiments.fig13_ucf101_lstm` | Fig. 13 — LSTM/UCF101 accuracy vs time |
| :mod:`repro.experiments.speedups` | Speedup headlines quoted in the abstract/Section 6 |
| :mod:`repro.experiments.fusion_pipeline` | fused/chunked gradient-exchange pipeline vs. the monolithic baseline |
| :mod:`repro.experiments.autotune` | calibrated LogGP parameters + auto-tuned fusion recommendations |
"""

from repro.experiments import report

__all__ = ["report"]
