"""Fused, chunked gradient-exchange pipeline vs. the monolithic baseline.

The seed implementation shipped every step's gradient as **one monolithic
flat vector through a single blocking recursive-doubling allreduce** —
no tensor fusion, no chunk pipelining.  This harness quantifies what the
bucketed/chunked exchange subsystem buys:

* *analytic rows* — the LogGP cost model
  (:func:`repro.simtime.collective_model.allreduce_time` /
  :func:`~repro.simtime.collective_model.fused_exchange_time`) across
  world sizes, bucket sizes and chunk counts;
* *functional rows* (optional) — wall-clock of the thread-backed
  :class:`~repro.training.exchange.SynchronousExchange` at reduced scale,
  validating that the fused path computes the identical average gradient.

The headline: for a >= 4 MB gradient at P = 8, the chunked ring pipeline
is >= 1.3x faster than the seed's unfused single-buffer exchange
(:mod:`benchmarks.bench_fusion_pipeline` asserts this bound).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.report import format_table
from repro.simtime.collective_model import (
    CompressionModel,
    allreduce_time,
    fused_exchange_time,
)
from repro.simtime.network import DEFAULT_NETWORK, LogGPParams

MB = 1024 * 1024


@dataclass(frozen=True)
class FusionRow:
    """Modelled latency of one exchange configuration at one world size."""

    world_size: int
    gradient_mb: float
    configuration: str
    buckets: int
    n_chunks: int
    time_us: float
    #: Speedup over the unfused single-buffer (recursive-doubling) baseline.
    speedup: float


@dataclass(frozen=True)
class FunctionalRow:
    """Wall-clock of the real exchange on one backend (reduced scale)."""

    world_size: int
    elements: int
    configuration: str
    seconds_per_exchange: float
    max_abs_error: float
    backend: str = "thread"
    #: Encoded payload bytes one rank contributed per exchange.
    wire_bytes: int = 0


@dataclass
class FusionPipelineResult:
    rows: List[FusionRow]
    functional_rows: List[FunctionalRow] = field(default_factory=list)

    def headline_speedup(self, world_size: int = 8) -> float:
        """Best chunked/fused speedup at ``world_size`` over the baseline.

        Only genuinely chunked or bucketed configurations count — the
        plain single-buffer ring is reported for context but excluded.
        """
        candidates = [
            r.speedup
            for r in self.rows
            if r.world_size == world_size and (r.n_chunks > 1 or r.buckets > 1)
        ]
        if not candidates:
            raise ValueError(f"no fused rows at world size {world_size}")
        return max(candidates)


def run(
    world_sizes: Sequence[int] = (4, 8, 16, 32),
    gradient_mb: float = 4.0,
    bucket_mb: Sequence[float] = (1.0, 4.0),
    n_chunks: int = 8,
    params: LogGPParams = DEFAULT_NETWORK,
    compression: Optional[str] = None,
) -> FusionPipelineResult:
    """Model the fused/chunked exchange against the monolithic baseline.

    For every world size the table contains the seed baseline (one
    blocking recursive-doubling allreduce of the whole gradient), the
    plain ring exchange, the chunk-pipelined ring, and the fused
    bucket pipelines for every requested bucket size.  With
    ``compression``, each fused pipeline additionally gets a compressed
    sibling row scored with the codec's wire/transform terms
    (:class:`~repro.simtime.collective_model.CompressionModel`).
    """
    cm: Optional[CompressionModel] = None
    codec_label = ""
    if compression is not None:
        from repro.compression import resolve_codec

        codec = resolve_codec(compression)
        if codec is not None:
            cm = codec.cost_model()
            codec_label = codec.name
    total_bytes = int(gradient_mb * MB)
    rows: List[FusionRow] = []
    for size in world_sizes:
        seen_wire_counts: set = set()
        baseline = allreduce_time(total_bytes, size, "recursive_doubling", params)
        rows.append(
            FusionRow(size, gradient_mb, "unfused single-buffer (RD)", 1, 1,
                      baseline * 1e6, 1.0)
        )
        ring = allreduce_time(total_bytes, size, "ring", params)
        rows.append(
            FusionRow(size, gradient_mb, "single-buffer ring", 1, 1,
                      ring * 1e6, baseline / ring)
        )
        chunked = allreduce_time(total_bytes, size, "ring", params, n_chunks=n_chunks)
        rows.append(
            FusionRow(size, gradient_mb, f"chunked ring (C={n_chunks})", 1, n_chunks,
                      chunked * 1e6, baseline / chunked)
        )
        for bmb in bucket_mb:
            bucket_bytes = int(bmb * MB)
            count = max(1, -(-total_bytes // bucket_bytes))
            sizes = [total_bytes / count] * count
            fused = fused_exchange_time(sizes, size, "ring", params, n_chunks=n_chunks)
            rows.append(
                FusionRow(
                    size, gradient_mb,
                    f"fused pipeline ({count} x {bmb:g} MB, C={n_chunks})",
                    count, n_chunks, fused * 1e6, baseline / fused,
                )
            )
            if cm is not None:
                # Compressed sibling: same dense gradient, the threshold
                # budgets encoded bytes (so buckets hold more elements).
                # Same bucketing rule as the autotuner's grid search.
                from repro.tuning.autotune import plan_bucket_bytes

                wire_sizes = plan_bucket_bytes(total_bytes, bucket_bytes, cm)
                wire_count = len(wire_sizes)
                if wire_count in seen_wire_counts:
                    # Several thresholds can collapse to the same encoded
                    # bucketing; one row describes them all.
                    continue
                seen_wire_counts.add(wire_count)
                compressed = fused_exchange_time(
                    wire_sizes, size, "ring", params, n_chunks=n_chunks,
                    compression=cm,
                )
                wire_bucket_mb = wire_sizes[0] * cm.wire_scale / MB
                rows.append(
                    FusionRow(
                        size, gradient_mb,
                        f"fused pipeline + {codec_label} "
                        f"({wire_count} x {wire_bucket_mb:g} MB wire, C={n_chunks})",
                        wire_count, n_chunks, compressed * 1e6,
                        baseline / compressed,
                    )
                )
    return FusionPipelineResult(rows=rows)


def run_functional(
    world_size: int = 4,
    elements: int = 1 << 15,
    n_chunks: int = 4,
    fusion_threshold_bytes: int = 64 * 1024,
    iterations: int = 4,
    backend: Optional[str] = None,
    compression: Optional[str] = None,
    sharding: str = "none",
) -> List[FunctionalRow]:
    """Measure the real exchange on ``backend`` and verify its result.

    Wall-clock numbers on the thread substrate are dominated by copying
    and scheduling rather than network physics; the process backend adds
    loopback TCP and removes the shared GIL.  Either way the functional
    rows validate correctness and give a rough cost signal, while the
    analytic rows carry the latency claims.

    ``sharding="zero1"`` appends a row running the ZeRO-1
    :class:`~repro.training.exchange.ShardedExchange` end to end (SGD on
    a flat parameter vector): its error column compares the gathered
    parameters against the dense-update reference, and its wire column is
    the *measured* bytes this rank sent per exchange.
    """
    from repro.comm import get_backend, launch
    from repro.training.exchange import SynchronousExchange

    if sharding not in ("none", "zero1"):
        raise ValueError(f"sharding must be 'none' or 'zero1', got {sharding!r}")
    backend_name = get_backend(backend).name
    configs = [
        ("unfused single-buffer (RD)", dict(algorithm="recursive_doubling")),
        ("single-buffer ring", dict(algorithm="ring")),
        (
            f"fused chunked ring (C={n_chunks})",
            dict(
                algorithm="ring",
                fusion_threshold_bytes=fusion_threshold_bytes,
                pipeline_chunks=n_chunks,
            ),
        ),
    ]
    if compression is not None:
        from repro.compression import resolve_codec

        codec = resolve_codec(compression)
        if codec is not None:
            configs.append(
                (
                    f"fused chunked ring + {codec.name} (C={n_chunks})",
                    dict(
                        algorithm="ring",
                        fusion_threshold_bytes=fusion_threshold_bytes,
                        pipeline_chunks=n_chunks,
                        compression=compression,
                    ),
                )
            )
    rows: List[FunctionalRow] = []
    base = np.arange(elements, dtype=np.float64) / elements
    expected = base + (world_size - 1) / 2.0
    for name, kwargs in configs:
        def worker(comm):
            exchange = SynchronousExchange(comm, **kwargs)
            gradient = base + comm.rank
            start = time.perf_counter()
            for _ in range(iterations):
                result = exchange.exchange(gradient)
            elapsed = (time.perf_counter() - start) / iterations
            return (
                elapsed,
                float(np.max(np.abs(result.gradient - expected))),
                result.wire_bytes,
            )

        outputs = launch(worker, world_size, backend=backend)
        rows.append(
            FunctionalRow(
                world_size=world_size,
                elements=elements,
                configuration=name,
                seconds_per_exchange=float(np.mean([o[0] for o in outputs])),
                max_abs_error=float(max(o[1] for o in outputs)),
                backend=backend_name,
                wire_bytes=int(outputs[0][2]),
            )
        )
    if sharding == "zero1":
        lr = 0.25
        init = np.linspace(-1.0, 1.0, elements)
        params_expected = init - iterations * lr * expected

        def sharded_worker(comm):
            from repro.nn.module import Module
            from repro.nn.optim import SGD
            from repro.nn.parameters import flatten_parameters
            from repro.training.exchange import ShardedExchange

            model = Module()
            model.add_parameter("theta", init.copy())
            optimizer = SGD(model, lr)
            exchange = ShardedExchange(
                comm,
                algorithm="ring",
                fusion_threshold_bytes=fusion_threshold_bytes,
                pipeline_chunks=n_chunks,
            )
            gradient = base + comm.rank
            start = time.perf_counter()
            for _ in range(iterations):
                result = exchange.exchange_update(gradient, model, optimizer)
            elapsed = (time.perf_counter() - start) / iterations
            return (
                elapsed,
                float(np.max(np.abs(flatten_parameters(model) - params_expected))),
                result.wire_bytes,
            )

        outputs = launch(sharded_worker, world_size, backend=backend)
        rows.append(
            FunctionalRow(
                world_size=world_size,
                elements=elements,
                configuration=f"zero1 sharded ring (C={n_chunks})",
                seconds_per_exchange=float(np.mean([o[0] for o in outputs])),
                max_abs_error=float(max(o[1] for o in outputs)),
                backend=backend_name,
                wire_bytes=int(outputs[0][2]),
            )
        )
    return rows


def report(result: FusionPipelineResult) -> str:
    """Render the comparison tables."""
    parts = [
        format_table(
            ["P", "gradient", "exchange", "buckets", "chunks", "time [us]", "speedup"],
            [
                (
                    r.world_size,
                    f"{r.gradient_mb:g} MB",
                    r.configuration,
                    r.buckets,
                    r.n_chunks,
                    r.time_us,
                    r.speedup,
                )
                for r in result.rows
            ],
            title="fused/chunked gradient exchange vs. unfused single-buffer baseline "
            "(LogGP model)",
        )
    ]
    if result.functional_rows:
        backends = "/".join(sorted({r.backend for r in result.functional_rows}))
        parts.append("")
        parts.append(
            format_table(
                ["P", "elements", "exchange", "s/exchange", "max |err|", "wire B/rank"],
                [
                    (
                        r.world_size,
                        r.elements,
                        r.configuration,
                        r.seconds_per_exchange,
                        r.max_abs_error,
                        r.wire_bytes,
                    )
                    for r in result.functional_rows
                ],
                title=f"{backends}-backed exchange (functional validation)",
            )
        )
    try:
        headline = result.headline_speedup(8)
        parts.append("")
        parts.append(
            f"headline: fused/chunked exchange is {headline:.2f}x faster than the "
            f"unfused single-buffer exchange at P = 8 (target: >= 1.3x)"
        )
    except ValueError:
        pass
    return "\n".join(parts)
