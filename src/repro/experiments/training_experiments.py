"""Shared machinery for the training-based experiments (Figs. 10-13).

Each of those figures compares several SGD variants (synch-SGD flavours
and eager-SGD with solo/majority allreduce) on one workload and reports
throughput and/or accuracy as a function of training time.  This module
provides the comparison runner and the report helpers so the per-figure
modules only declare the workload and the variant list.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.loader import Dataset
from repro.experiments.report import format_table
from repro.imbalance.injection import DelayInjector
from repro.training.config import TrainingConfig
from repro.training.metrics import TrainingResult
from repro.training.runner import LossFn, ModelFactory, train_distributed


@dataclass
class VariantSpec:
    """One line of a figure: a named SGD variant plus config overrides."""

    #: Label used in reports (e.g. ``"synch-SGD-300 (Deep500)"``).
    name: str
    #: Exchange mode: ``sync`` / ``solo`` / ``majority`` / ``quorum``.
    mode: str
    #: Synchronous style when ``mode == "sync"``.
    sync_style: str = "deep500"
    #: Delay injector override (``None`` keeps the base config's injector).
    delay_injector: Optional[DelayInjector] = None
    #: Quorum size for quorum mode.
    quorum: Optional[int] = None
    #: Arbitrary additional config overrides.
    overrides: Dict[str, object] = field(default_factory=dict)


@dataclass
class ComparisonResult:
    """Results of all variants of one figure."""

    workload: str
    results: Dict[str, TrainingResult]
    baseline: str

    def speedup_over(self, name: str, baseline: Optional[str] = None) -> float:
        """Speedup of ``name`` over the baseline in projected training time."""
        base = self.results[baseline or self.baseline]
        other = self.results[name]
        if other.total_sim_time <= 0:
            return float("inf")
        return base.total_sim_time / other.total_sim_time

    def summary_rows(self) -> List[Tuple]:
        rows = []
        for name, result in self.results.items():
            row = result.summary_row()
            rows.append(
                (
                    name,
                    row["total_sim_time_s"],
                    row["throughput_steps_per_s"],
                    row["final_eval_loss"],
                    row["final_eval_top1"],
                    row["final_eval_top5"],
                    row["mean_num_active"],
                    round(self.speedup_over(name), 2),
                )
            )
        return rows


def run_comparison(
    workload: str,
    model_factory: ModelFactory,
    train_dataset: Dataset,
    loss_fn: LossFn,
    base_config: TrainingConfig,
    variants: Sequence[VariantSpec],
    eval_dataset: Optional[Dataset] = None,
    classification: bool = True,
    baseline: Optional[str] = None,
) -> ComparisonResult:
    """Run every variant and collect the results.

    The baseline (for speedup computation) defaults to the first variant.
    """
    if not variants:
        raise ValueError("at least one variant is required")
    results: Dict[str, TrainingResult] = {}
    for spec in variants:
        config = copy.deepcopy(base_config)
        config.mode = spec.mode
        config.sync_style = spec.sync_style
        if spec.delay_injector is not None:
            config.delay_injector = spec.delay_injector
        if spec.quorum is not None:
            config.quorum = spec.quorum
        for key, value in spec.overrides.items():
            if not hasattr(config, key):
                raise AttributeError(f"TrainingConfig has no field {key!r}")
            setattr(config, key, value)
        config.validate()
        results[spec.name] = train_distributed(
            model_factory,
            train_dataset,
            loss_fn,
            config,
            eval_dataset=eval_dataset,
            classification=classification,
        )
    return ComparisonResult(
        workload=workload,
        results=results,
        baseline=baseline or variants[0].name,
    )


# ---------------------------------------------------------------------------
# report helpers
# ---------------------------------------------------------------------------
def comparison_table(comparison: ComparisonResult, title: str) -> str:
    """The per-variant summary table printed by every training figure."""
    return format_table(
        [
            "variant",
            "train time (s, projected)",
            "throughput (steps/s)",
            "final eval loss",
            "final top-1",
            "final top-5",
            "mean active ranks",
            f"speedup vs {comparison.baseline}",
        ],
        comparison.summary_rows(),
        title=title,
    )


def metric_vs_time_table(
    comparison: ComparisonResult,
    metric: str = "eval_top1",
    max_points: int = 12,
    title: str = "metric vs projected training time",
) -> str:
    """Per-variant series of (projected time, metric) at epoch boundaries."""
    rows = []
    for name, result in comparison.results.items():
        series = result.accuracy_vs_time(metric)
        n = len(series)
        if n == 0:
            continue
        if n > max_points:
            idx = [int(round(i * (n - 1) / (max_points - 1))) for i in range(max_points)]
        else:
            idx = range(n)
        for i in idx:
            t, v = series[i]
            rows.append((name, i, round(t, 2), round(v, 4)))
    return format_table(["variant", "epoch", "time (s)", metric], rows, title=title)


def speedup_summary(
    comparison: ComparisonResult,
    expected: Dict[str, float],
    baseline: Optional[str] = None,
) -> str:
    """Compare measured speedups against the paper's quoted numbers."""
    rows = []
    for name, paper_value in expected.items():
        if name not in comparison.results:
            continue
        measured = comparison.speedup_over(name, baseline)
        rows.append((name, round(measured, 2), paper_value))
    return format_table(
        ["variant", "measured speedup", "paper speedup"],
        rows,
        title=f"Speedups over {baseline or comparison.baseline}",
    )
