"""Fig. 13 — LSTM video classification on UCF101 (inherent load imbalance).

Setup of the paper (Section 6.3): 8 processes, total batch size 128, 50
epochs, training an LSTM over Inception-v3 frame features.  The imbalance
is *inherent*: batches contain videos of very different lengths.  Results:

* eager-SGD (solo) is 1.64x faster than Horovod but loses top-1 test
  accuracy (60.6% vs 69.6%) because too many gradients are stale;
* eager-SGD (majority) matches Horovod's accuracy (69.7% top-1, 90.0%
  top-5) at a 1.27x speedup.

The reproduction uses the synthetic UCF101-like video-feature dataset
(matching length distribution), the LSTM classifier and the calibrated
LSTM cost model, and compares the same three variants.  No delays are
injected: all imbalance comes from the batch content, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.data.ucf101 import VideoFeatureDataset
from repro.experiments.training_experiments import (
    ComparisonResult,
    VariantSpec,
    comparison_table,
    metric_vs_time_table,
    run_comparison,
)
from repro.imbalance.cost_model import lstm_ucf101_cost_model
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.models import SequenceLSTMClassifier
from repro.training.config import TrainingConfig

#: Paper headline speedups over synch-SGD (Horovod).
PAPER_SPEEDUPS = {"eager-SGD (solo)": 1.64, "eager-SGD (majority)": 1.27}
#: Paper top-1 / top-5 test accuracy.
PAPER_TEST_ACCURACY = {
    "synch-SGD (Horovod)": {"top1": 0.696, "top5": 0.904},
    "eager-SGD (majority)": {"top1": 0.697, "top5": 0.900},
    "eager-SGD (solo)": {"top1": 0.606, "top5": 0.805},
}

SCALES = {
    "tiny": dict(
        num_videos=240, feature_dim=16, hidden_dim=16, num_classes=6,
        length_scale=0.05, world_size=4, global_batch_size=32, epochs=3,
    ),
    "small": dict(
        num_videos=800, feature_dim=32, hidden_dim=32, num_classes=10,
        length_scale=0.08, world_size=8, global_batch_size=64, epochs=5,
    ),
    "large": dict(
        num_videos=2400, feature_dim=64, hidden_dim=64, num_classes=24,
        length_scale=0.15, world_size=8, global_batch_size=128, epochs=12,
    ),
}


@dataclass
class Fig13Result:
    comparison: ComparisonResult
    scale: str


def run(
    scale: str = "small",
    seed: int = 0,
    time_scale: float = 0.001,
    model_sync_period_epochs: int = 5,
    comm_backend: Optional[str] = None,
    compression: Optional[str] = None,
) -> Fig13Result:
    """Run Horovod / solo / majority on the video-classification workload."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}")
    p = SCALES[scale]
    dataset = VideoFeatureDataset(
        num_videos=p["num_videos"],
        feature_dim=p["feature_dim"],
        num_classes=p["num_classes"],
        length_scale=p["length_scale"],
        signal=1.5,
        seed=seed,
    )
    # Hold out a validation split by index (video lengths stay realistic).
    train, val = _split_videos(dataset, fraction=0.2, seed=seed)

    def model_factory():
        return SequenceLSTMClassifier(
            feature_dim=p["feature_dim"],
            hidden_dim=p["hidden_dim"],
            num_classes=p["num_classes"],
            seed=seed + 1,
        )

    local_batch = p["global_batch_size"] // p["world_size"]
    base = TrainingConfig(
        world_size=p["world_size"],
        comm_backend=comm_backend,
        compression=compression,
        epochs=p["epochs"],
        global_batch_size=p["global_batch_size"],
        learning_rate=0.05,
        optimizer="momentum",
        cost_model=lstm_ucf101_cost_model(batch_size=local_batch),
        time_scale=time_scale,
        model_sync_period_epochs=model_sync_period_epochs,
        seed=seed,
        eval_batch_size=64,
        # Independent per-rank bucketed pipelines: this is what turns the
        # video-length spread into *inter-rank* imbalance (Section 2.1).
        bucket_by_length=True,
    )
    variants = [
        VariantSpec(name="synch-SGD (Horovod)", mode="sync", sync_style="horovod"),
        VariantSpec(name="eager-SGD (solo)", mode="solo"),
        VariantSpec(name="eager-SGD (majority)", mode="majority"),
    ]
    comparison = run_comparison(
        workload="UCF101-like LSTM video classification",
        model_factory=model_factory,
        train_dataset=train,
        loss_fn=SoftmaxCrossEntropyLoss(),
        base_config=base,
        variants=variants,
        eval_dataset=val,
        classification=True,
        baseline="synch-SGD (Horovod)",
    )
    return Fig13Result(comparison=comparison, scale=scale)


def _split_videos(dataset: VideoFeatureDataset, fraction: float, seed: int):
    """Train/validation split preserving the dataset interface."""
    import numpy as np

    from repro.data.loader import Batch, Dataset
    from repro.utils.rng import seeded_rng

    rng = seeded_rng(seed)
    perm = rng.permutation(len(dataset))
    n_val = int(len(dataset) * fraction)
    val_idx, train_idx = perm[:n_val], perm[n_val:]

    class _View(Dataset):
        def __init__(self, base: VideoFeatureDataset, indices: np.ndarray) -> None:
            self.base = base
            self.indices = np.asarray(indices, dtype=np.int64)

        def __len__(self) -> int:
            return int(self.indices.size)

        def example_sizes(self) -> np.ndarray:
            return self.base.lengths[self.indices]

        def get_batch(self, indices) -> Batch:
            idx = self.indices[np.asarray(indices, dtype=np.int64)]
            return self.base.get_batch(idx)

    return _View(dataset, train_idx), _View(dataset, val_idx)


def report(result: Fig13Result) -> str:
    from repro.experiments.report import format_table

    rows = []
    for name, paper_speedup in PAPER_SPEEDUPS.items():
        if name not in result.comparison.results:
            continue
        res = result.comparison.results[name]
        rows.append(
            (
                name,
                round(result.comparison.speedup_over(name), 2),
                paper_speedup,
                round(res.final_epoch.eval_top1, 3),
                PAPER_TEST_ACCURACY[name]["top1"],
            )
        )
    parts = [
        comparison_table(
            result.comparison,
            title=f"Fig. 13  LSTM / UCF101-like video classification (scale={result.scale})",
        ),
        "",
        metric_vs_time_table(
            result.comparison,
            metric="train_top1",
            title="Fig. 13a  top-1 train accuracy vs projected training time",
        ),
        "",
        metric_vs_time_table(
            result.comparison,
            metric="eval_top1",
            title="Fig. 13b  top-1 test accuracy vs projected training time",
        ),
        "",
        format_table(
            [
                "variant",
                "measured speedup",
                "paper speedup",
                "final top-1 (repro)",
                "final top-1 (paper)",
            ],
            rows,
            title="Fig. 13 headlines (speedup over Horovod; accuracy ordering)",
        ),
    ]
    return "\n".join(parts)
