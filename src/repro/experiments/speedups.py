"""Headline speedups quoted in the paper's abstract and Section 6.

This harness aggregates the training experiments (Figs. 10-13) into a
single speedup summary comparing eager-SGD against the synchronous
baselines, mirroring the abstract's claim of a "1.27x speedup over
state-of-the-art synchronous SGD without losing accuracy" (majority
allreduce on UCF101) and the per-experiment numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments import fig10_hyperplane, fig12_cifar_severe, fig13_ucf101_lstm
from repro.experiments.report import format_table


@dataclass
class SpeedupRow:
    """One headline comparison (measured vs paper)."""

    experiment: str
    variant: str
    measured: float
    paper: float
    accuracy_measured: float
    accuracy_paper: float


@dataclass
class SpeedupSummary:
    rows: List[SpeedupRow] = field(default_factory=list)


def run(scale: str = "tiny", seed: int = 0) -> SpeedupSummary:
    """Run the training experiments at the requested scale and aggregate.

    ``scale="tiny"`` keeps the aggregate run inside a couple of minutes on
    CPU threads and is what the benchmark harness uses; larger scales
    trade time for closer-to-paper behaviour.
    """
    summary = SpeedupSummary()

    # Fig. 10: solo vs Deep500 for each injected delay.
    fig10 = fig10_hyperplane.run(scale=scale, seed=seed)
    for delay, speedup in fig10_hyperplane.speedups_per_delay(fig10).items():
        name = f"eager-SGD-{int(delay)} (solo)"
        paper = fig10_hyperplane.PAPER_SPEEDUPS.get(name, float("nan"))
        eager = fig10.comparison.results[name]
        sync = fig10.comparison.results[f"synch-SGD-{int(delay)} (Deep500)"]
        summary.rows.append(
            SpeedupRow(
                experiment="Fig. 10 hyperplane",
                variant=name,
                measured=round(speedup, 2),
                paper=paper,
                accuracy_measured=round(eager.final_epoch.eval_loss, 3),
                accuracy_paper=fig10_hyperplane.PAPER_FINAL_LOSS,
            )
        )
        del sync

    # Fig. 12: majority vs Horovod under severe imbalance.
    fig12 = fig12_cifar_severe.run(scale=scale, seed=seed)
    summary.rows.append(
        SpeedupRow(
            experiment="Fig. 12 CIFAR severe",
            variant="eager-SGD (majority)",
            measured=round(fig12.comparison.speedup_over("eager-SGD (majority)"), 2),
            paper=fig12_cifar_severe.PAPER_MAJORITY_SPEEDUP,
            accuracy_measured=round(
                fig12.comparison.results["eager-SGD (majority)"].final_epoch.eval_top1, 3
            ),
            accuracy_paper=fig12_cifar_severe.PAPER_FINAL_TOP1["eager-SGD (majority)"],
        )
    )

    # Fig. 13: solo and majority vs Horovod on the video workload.
    fig13 = fig13_ucf101_lstm.run(scale=scale, seed=seed)
    for variant, paper_speedup in fig13_ucf101_lstm.PAPER_SPEEDUPS.items():
        summary.rows.append(
            SpeedupRow(
                experiment="Fig. 13 UCF101 LSTM",
                variant=variant,
                measured=round(fig13.comparison.speedup_over(variant), 2),
                paper=paper_speedup,
                accuracy_measured=round(
                    fig13.comparison.results[variant].final_epoch.eval_top1, 3
                ),
                accuracy_paper=fig13_ucf101_lstm.PAPER_TEST_ACCURACY[variant]["top1"],
            )
        )
    return summary


def report(summary: SpeedupSummary) -> str:
    rows = [
        (
            r.experiment,
            r.variant,
            r.measured,
            r.paper,
            r.accuracy_measured,
            r.accuracy_paper,
        )
        for r in summary.rows
    ]
    return format_table(
        [
            "experiment",
            "variant",
            "speedup (measured)",
            "speedup (paper)",
            "final metric (measured)",
            "final metric (paper)",
        ],
        rows,
        title="Headline speedups of eager-SGD over synchronous SGD",
    )
