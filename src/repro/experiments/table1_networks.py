"""Table 1 — neural networks used for the evaluation.

The paper's Table 1 lists, per task: the model, its parameter count, the
training-set size, the global batch size, the number of epochs and the
number of processes.  The reproduction instantiates its scaled-down
counterpart of each model and reports both the paper's numbers and the
reproduction's actual parameter counts / dataset sizes, making the scaling
factor explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.data.hyperplane import HyperplaneDataset
from repro.data.synthetic_images import cifar10_like, imagenet_like
from repro.data.ucf101 import VideoFeatureDataset
from repro.experiments.report import format_table
from repro.nn.models import (
    HyperplaneMLP,
    SequenceLSTMClassifier,
    resnet_cifar,
    resnet_imagenet_lite,
)


@dataclass(frozen=True)
class NetworkRow:
    """One row of Table 1 (paper numbers + reproduction numbers)."""

    task: str
    model: str
    paper_parameters: int
    repro_parameters: int
    paper_train_size: str
    repro_train_size: str
    paper_batch: int
    repro_batch: int
    paper_epochs: int
    paper_processes: int


@dataclass
class Table1Result:
    rows: List[NetworkRow]


def run(scale: str = "small", seed: int = 0) -> Table1Result:
    """Instantiate every evaluated network and collect the table rows.

    ``scale="small"`` builds the CPU-sized models used throughout the
    reproduction; ``scale="paper"`` builds the hyperplane MLP at the
    paper's exact dimensionality (the only model whose exact size is
    feasible on a CPU) and the largest practical versions of the others.
    """
    if scale not in ("small", "paper"):
        raise ValueError("scale must be 'small' or 'paper'")
    paper_scale = scale == "paper"

    mlp = HyperplaneMLP(input_dim=8192 if paper_scale else 256, seed=seed)
    hyperplane_examples = 32_768 if paper_scale else 2_048

    cifar_model = resnet_cifar(
        width=16 if paper_scale else 8,
        blocks_per_stage=5 if paper_scale else 1,
        seed=seed,
    )
    cifar_examples = 50_000 if paper_scale else 2_000

    imagenet_model = resnet_imagenet_lite(
        num_classes=1000 if paper_scale else 100,
        width=16 if paper_scale else 8,
        blocks_per_stage=2 if paper_scale else 1,
        seed=seed,
    )
    imagenet_examples = 1_281_167 if paper_scale else 4_000

    lstm_model = SequenceLSTMClassifier(
        feature_dim=2048 if paper_scale else 32,
        hidden_dim=2048 if paper_scale else 32,
        num_classes=101,
        seed=seed,
    )
    ucf_examples = 9_537 if paper_scale else 1_000

    rows = [
        NetworkRow(
            task="Hyperplane regression",
            model="One-layer MLP",
            paper_parameters=8_193,
            repro_parameters=mlp.num_parameters(),
            paper_train_size="32,768 points",
            repro_train_size=f"{hyperplane_examples:,} points",
            paper_batch=2_048,
            repro_batch=2_048 if paper_scale else 256,
            paper_epochs=48,
            paper_processes=8,
        ),
        NetworkRow(
            task="Cifar-10",
            model="ResNet-32",
            paper_parameters=467_194,
            repro_parameters=cifar_model.num_parameters(),
            paper_train_size="50,000 images",
            repro_train_size=f"{cifar_examples:,} images",
            paper_batch=512,
            repro_batch=512 if paper_scale else 64,
            paper_epochs=190,
            paper_processes=8,
        ),
        NetworkRow(
            task="ImageNet",
            model="ResNet-50",
            paper_parameters=25_559_081,
            repro_parameters=imagenet_model.num_parameters(),
            paper_train_size="1,281,167 images",
            repro_train_size=f"{imagenet_examples:,} images",
            paper_batch=8_192,
            repro_batch=8_192 if paper_scale else 128,
            paper_epochs=90,
            paper_processes=64,
        ),
        NetworkRow(
            task="UCF101",
            model="Inception+LSTM",
            paper_parameters=34_663_525,
            repro_parameters=lstm_model.num_parameters(),
            paper_train_size="9,537 videos",
            repro_train_size=f"{ucf_examples:,} videos",
            paper_batch=128,
            repro_batch=128 if paper_scale else 32,
            paper_epochs=50,
            paper_processes=8,
        ),
    ]
    return Table1Result(rows=rows)


def report(result: Table1Result) -> str:
    table_rows = [
        (
            r.task,
            r.model,
            f"{r.paper_parameters:,}",
            f"{r.repro_parameters:,}",
            r.paper_train_size,
            r.repro_train_size,
            r.paper_batch,
            r.repro_batch,
            r.paper_epochs,
            r.paper_processes,
        )
        for r in result.rows
    ]
    return format_table(
        [
            "Task",
            "Model",
            "Params (paper)",
            "Params (repro)",
            "Train data (paper)",
            "Train data (repro)",
            "Batch (paper)",
            "Batch (repro)",
            "Epochs (paper)",
            "Processes (paper)",
        ],
        table_rows,
        title="Table 1  Neural networks used for evaluation",
    )
