"""Fig. 12 — ResNet-32 on CIFAR-10 under severe load imbalance.

Setup of the paper (Section 6.2.3): 8 processes, 190 epochs, and *every*
process is skewed at every step with delays from 50 ms to 400 ms whose
assignment rotates after each step.  Results: eager-SGD with solo
allreduce trains fastest but loses accuracy (most gradients are stale);
eager-SGD with majority allreduce reaches approximately the same accuracy
as synch-SGD (Horovod) with a 1.29x speedup.

The reproduction keeps the rotating 50-400 ms skew and compares the same
three variants on the CIFAR-like synthetic dataset with the scaled ResNet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.synthetic_images import cifar10_like
from repro.experiments.training_experiments import (
    ComparisonResult,
    VariantSpec,
    comparison_table,
    metric_vs_time_table,
    run_comparison,
)
from repro.imbalance.cost_model import FixedCostModel
from repro.imbalance.injection import RotatingSkewDelay
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.models import resnet_cifar
from repro.training.config import TrainingConfig

#: Paper headline: majority allreduce matches synch-SGD accuracy at 1.29x speedup.
PAPER_MAJORITY_SPEEDUP = 1.29
#: Paper accuracy waypoints of Fig. 12 (top-1 test accuracy at end of training).
PAPER_FINAL_TOP1 = {
    "synch-SGD (Horovod)": 0.926,
    "eager-SGD (majority)": 0.90,
    "eager-SGD (solo)": 0.58,
}

#: Per-step compute cost of ResNet-32 on CIFAR-10 with a local batch of 64
#: on a P100 (order of 100 ms), used for the paper-scale time projection.
STEP_COMPUTE_SECONDS = 0.100

SCALES = {
    "tiny": dict(
        num_examples=600, image_size=8, width=4, blocks=1,
        world_size=4, global_batch_size=64, epochs=3,
    ),
    "small": dict(
        num_examples=2000, image_size=8, width=8, blocks=1,
        world_size=8, global_batch_size=128, epochs=6,
    ),
    "large": dict(
        num_examples=10000, image_size=16, width=16, blocks=3,
        world_size=8, global_batch_size=512, epochs=30,
    ),
}


@dataclass
class Fig12Result:
    comparison: ComparisonResult
    scale: str
    min_delay_ms: float
    max_delay_ms: float


def run(
    scale: str = "small",
    min_delay_ms: float = 50.0,
    max_delay_ms: float = 400.0,
    seed: int = 0,
    time_scale: float = 0.002,
    model_sync_period_epochs: int = 5,
    comm_backend: Optional[str] = None,
    compression: Optional[str] = None,
) -> Fig12Result:
    """Run Horovod / solo / majority under the rotating severe skew."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}")
    p = SCALES[scale]
    dataset = cifar10_like(
        num_examples=p["num_examples"], image_size=p["image_size"], signal=2.0, seed=seed
    )
    train, val = dataset.split(validation_fraction=0.2, seed=seed)

    def model_factory():
        return resnet_cifar(
            num_classes=10, width=p["width"], blocks_per_stage=p["blocks"], seed=seed + 1
        )

    injector = RotatingSkewDelay(min_ms=min_delay_ms, max_ms=max_delay_ms)
    base = TrainingConfig(
        world_size=p["world_size"],
        comm_backend=comm_backend,
        compression=compression,
        epochs=p["epochs"],
        global_batch_size=p["global_batch_size"],
        learning_rate=0.05,
        optimizer="momentum",
        cost_model=FixedCostModel(STEP_COMPUTE_SECONDS),
        delay_injector=injector,
        time_scale=time_scale,
        model_sync_period_epochs=model_sync_period_epochs,
        seed=seed,
    )
    variants = [
        VariantSpec(name="synch-SGD (Horovod)", mode="sync", sync_style="horovod"),
        VariantSpec(name="eager-SGD (solo)", mode="solo"),
        VariantSpec(name="eager-SGD (majority)", mode="majority"),
    ]
    comparison = run_comparison(
        workload="CIFAR-like ResNet, severe imbalance",
        model_factory=model_factory,
        train_dataset=train,
        loss_fn=SoftmaxCrossEntropyLoss(),
        base_config=base,
        variants=variants,
        eval_dataset=val,
        classification=True,
        baseline="synch-SGD (Horovod)",
    )
    return Fig12Result(
        comparison=comparison,
        scale=scale,
        min_delay_ms=min_delay_ms,
        max_delay_ms=max_delay_ms,
    )


def report(result: Fig12Result) -> str:
    from repro.experiments.report import format_table

    majority_speedup = result.comparison.speedup_over("eager-SGD (majority)")
    solo_speedup = result.comparison.speedup_over("eager-SGD (solo)")
    parts = [
        comparison_table(
            result.comparison,
            title=(
                "Fig. 12  ResNet / CIFAR-like workload under severe imbalance "
                f"({result.min_delay_ms:g}-{result.max_delay_ms:g} ms rotating skew, "
                f"scale={result.scale})"
            ),
        ),
        "",
        metric_vs_time_table(
            result.comparison,
            metric="eval_top1",
            title="Fig. 12  top-1 test accuracy vs projected training time",
        ),
        "",
        format_table(
            ["variant", "measured speedup", "paper speedup", "paper final top-1"],
            [
                (
                    "eager-SGD (majority)",
                    round(majority_speedup, 2),
                    PAPER_MAJORITY_SPEEDUP,
                    PAPER_FINAL_TOP1["eager-SGD (majority)"],
                ),
                (
                    "eager-SGD (solo)",
                    round(solo_speedup, 2),
                    float("nan"),
                    PAPER_FINAL_TOP1["eager-SGD (solo)"],
                ),
            ],
            title="Fig. 12 headline: majority matches synch-SGD accuracy, 1.29x faster",
        ),
    ]
    return "\n".join(parts)
