"""Fig. 9 — latency microbenchmark of partial allreduce operations.

The microbenchmark (Fig. 8 of the paper) skews 32 processes linearly by
1..32 ms before every collective call, runs 64 iterations per message size
(64 B to 4 MB) and reports, per operation, the average latency over all
processes together with the Number of Active Processes (NAP).  The paper's
headline numbers: compared to ``MPI_Allreduce``, solo and majority
allreduce reduce the latency by on average 53.32x and 2.46x respectively;
the NAP is around 1 for solo and around 16 (half of 32) for majority.

The reproduction runs the same sweep through the analytic LogGP latency
model (validated against the message-level discrete-event simulation) and,
optionally, through the real implementation on a selectable comm
backend at a reduced scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.comm.backend import launch
from repro.collectives.partial import MajorityAllreduce, SoloAllreduce
from repro.collectives.sync import allreduce
from repro.experiments.report import format_table, ratio_line
from repro.simtime.collective_model import (
    majority_allreduce_latencies,
    solo_allreduce_latencies,
    synchronous_allreduce_latencies,
)
from repro.simtime.skew import linear_skew
from repro.utils.rng import seeded_rng

#: Message sizes of Fig. 9 (bytes).
DEFAULT_MESSAGE_SIZES = (64, 512, 4 * 1024, 32 * 1024, 256 * 1024, 4 * 1024 * 1024)
#: The paper's average latency-reduction factors over MPI_Allreduce.
PAPER_SOLO_SPEEDUP = 53.32
PAPER_MAJORITY_SPEEDUP = 2.46


@dataclass
class MicrobenchmarkRow:
    """Average latencies (ms) and NAP for one message size."""

    message_bytes: int
    mpi_latency_ms: float
    majority_latency_ms: float
    solo_latency_ms: float
    majority_nap: float
    solo_nap: float


@dataclass
class Fig9Result:
    world_size: int
    iterations: int
    skew_step_ms: float
    rows: List[MicrobenchmarkRow]
    #: Average latency-reduction factors over all message sizes.
    solo_speedup: float = 0.0
    majority_speedup: float = 0.0
    #: Optional functional-backend measurements (reduced scale).
    functional_rows: List[MicrobenchmarkRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rows:
            solo = np.mean([r.mpi_latency_ms / max(r.solo_latency_ms, 1e-9) for r in self.rows])
            majority = np.mean(
                [r.mpi_latency_ms / max(r.majority_latency_ms, 1e-9) for r in self.rows]
            )
            self.solo_speedup = float(solo)
            self.majority_speedup = float(majority)


def run(
    world_size: int = 32,
    iterations: int = 64,
    skew_step_ms: float = 1.0,
    message_sizes=DEFAULT_MESSAGE_SIZES,
    seed: int = 0,
    compression: Optional[str] = None,
) -> Fig9Result:
    """Run the analytic microbenchmark sweep (Fig. 8's loop).

    ``compression`` names a gradient codec (:mod:`repro.compression`):
    the analytic latencies then include the codec's compressed-bytes and
    encode/decode terms (:class:`~repro.simtime.collective_model.CompressionModel`).
    """
    cm = None
    if compression is not None:
        from repro.compression import get_codec

        cm = get_codec(compression).cost_model()
    arrivals = linear_skew(world_size, skew_step_ms)
    rng = seeded_rng(seed)
    rows: List[MicrobenchmarkRow] = []
    for nbytes in message_sizes:
        mpi = synchronous_allreduce_latencies(arrivals, nbytes, compression=cm)
        solo = solo_allreduce_latencies(arrivals, nbytes, compression=cm)
        majority_lat: List[float] = []
        majority_nap: List[float] = []
        for _ in range(iterations):
            initiator = int(rng.integers(0, world_size))
            m = majority_allreduce_latencies(
                arrivals, nbytes, initiator=initiator, compression=cm
            )
            majority_lat.append(m.average_latency)
            majority_nap.append(m.num_active)
        rows.append(
            MicrobenchmarkRow(
                message_bytes=int(nbytes),
                mpi_latency_ms=mpi.average_latency * 1e3,
                majority_latency_ms=float(np.mean(majority_lat)) * 1e3,
                solo_latency_ms=solo.average_latency * 1e3,
                majority_nap=float(np.mean(majority_nap)),
                solo_nap=float(solo.num_active),
            )
        )
    return Fig9Result(
        world_size=world_size,
        iterations=iterations,
        skew_step_ms=skew_step_ms,
        rows=rows,
    )


def run_functional(
    world_size: int = 8,
    iterations: int = 8,
    skew_step_ms: float = 4.0,
    message_elements: int = 1024,
    seed: int = 0,
    backend: Optional[str] = None,
    compression: Optional[str] = None,
) -> List[MicrobenchmarkRow]:
    """Measure the real collectives directly on ``backend`` (reduced scale).

    Each rank sleeps ``rank * skew_step_ms`` before calling the collective,
    exactly like the microbenchmark pseudo-code of Fig. 8, and the average
    per-rank latency is reported.  Running 32 ranks with 4 MB payloads on
    threads would measure Python overhead rather than algorithmic
    behaviour, so the functional check uses a smaller world; the *ordering*
    solo < majority < synchronous and the NAP expectations are what it
    validates.

    With ``compression``, every collective carries the codec's wire
    payload: reduce-closed codecs (fp16) reduce at the encoded width;
    other codecs contribute the locally quantized dense gradient (the
    decode-reduce-encode caveat documented in
    :mod:`repro.training.exchange`).
    """

    def worker(comm, mode: str):
        from repro.compression import resolve_codec

        codec = resolve_codec(compression)
        dtype = np.float64
        if codec is not None and codec.reduce_closed:
            dtype = codec.wire_dtype
        latencies = []
        naps = []
        if mode == "solo":
            partial = SoloAllreduce(comm, message_elements, seed=seed, dtype=dtype)
        elif mode == "majority":
            partial = MajorityAllreduce(comm, message_elements, seed=seed, dtype=dtype)
        else:
            partial = None
        data = np.ones(message_elements)
        if codec is not None:
            encoded = codec.encode(data)
            data = (
                np.asarray(encoded.payload)
                if codec.reduce_closed
                else codec.decode(encoded)
            )
        for it in range(iterations):
            comm.barrier()
            time.sleep((comm.rank + 1) * skew_step_ms / 1000.0)
            start = time.perf_counter()
            if partial is None:
                allreduce(comm, data, average=True)
                naps.append(comm.size)
            else:
                result = partial.reduce(data)
                naps.append(result.num_active)
            latencies.append(time.perf_counter() - start)
        if partial is not None:
            partial.close()
        return float(np.mean(latencies)), float(np.mean(naps))

    measurements: Dict[str, tuple] = {}
    for mode in ("mpi", "majority", "solo"):
        per_rank = launch(worker, world_size, mode, backend=backend)
        lat = float(np.mean([r[0] for r in per_rank])) * 1e3
        nap = float(np.mean([r[1] for r in per_rank]))
        measurements[mode] = (lat, nap)
    row = MicrobenchmarkRow(
        message_bytes=message_elements * 8,
        mpi_latency_ms=measurements["mpi"][0],
        majority_latency_ms=measurements["majority"][0],
        solo_latency_ms=measurements["solo"][0],
        majority_nap=measurements["majority"][1],
        solo_nap=measurements["solo"][1],
    )
    return [row]


def report(result: Fig9Result) -> str:
    rows = [
        (
            _format_bytes(r.message_bytes),
            r.mpi_latency_ms,
            r.majority_latency_ms,
            r.solo_latency_ms,
            r.majority_nap,
            r.solo_nap,
        )
        for r in result.rows
    ]
    parts = [
        format_table(
            [
                "message size",
                "MPI_Allreduce (ms)",
                "Majority (ms)",
                "Solo (ms)",
                "NAP majority",
                "NAP solo",
            ],
            rows,
            title=(
                f"Fig. 9  Partial allreduce latency, {result.world_size} processes, "
                f"{result.iterations} iterations, linear skew {result.skew_step_ms:g} ms/rank"
            ),
        ),
        "",
        ratio_line("solo latency reduction", result.solo_speedup, PAPER_SOLO_SPEEDUP),
        ratio_line(
            "majority latency reduction", result.majority_speedup, PAPER_MAJORITY_SPEEDUP
        ),
        f"expected NAP: solo ~1, majority ~{result.world_size // 2} (half of {result.world_size})",
    ]
    if result.functional_rows:
        func_rows = [
            (
                _format_bytes(r.message_bytes),
                r.mpi_latency_ms,
                r.majority_latency_ms,
                r.solo_latency_ms,
                r.majority_nap,
                r.solo_nap,
            )
            for r in result.functional_rows
        ]
        parts += [
            "",
            format_table(
                [
                    "message size",
                    "sync allreduce (ms)",
                    "Majority (ms)",
                    "Solo (ms)",
                    "NAP majority",
                    "NAP solo",
                ],
                func_rows,
                title="Functional measurement on the real transport (reduced scale)",
            ),
        ]
    return "\n".join(parts)


def _format_bytes(nbytes: int) -> str:
    if nbytes >= 1024 * 1024:
        return f"{nbytes // (1024 * 1024)} MB"
    if nbytes >= 1024:
        return f"{nbytes // 1024} KB"
    return f"{nbytes} B"
