"""Strong- and weak-scaling projections (Sections 6.2.1, 6.2.2, 6.3).

Besides the figure-level comparisons, the paper quotes several scaling
numbers:

* hyperplane regression: single-GPU throughput 0.64 steps/s at batch 2,048;
  eager-SGD with 400 ms injection still reaches a 3.8x strong-scaling
  speedup on 8 nodes;
* ResNet-50: single-GPU throughput 1.56 steps/s at batch 128; eager-SGD on
  64 processes with 460 ms injection reaches a 46.9x weak-scaling speedup;
* UCF101 LSTM: synch-SGD/Horovod reaches 3.72x and eager-SGD (majority)
  4.71x weak-scaling speedup on 8 nodes, while in strong scaling only
  eager-SGD (solo) shows a speedup (1.12x).

This harness reproduces those numbers through the timing projection: the
per-step compute cost of the scaled workload is combined with the paper's
injection scheme, replayed under each SGD variant, and compared against
the single-process baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.report import format_table
from repro.simtime.network import DEFAULT_NETWORK
from repro.simtime.training_model import StepTimeline, project_training_time
from repro.utils.rng import seeded_rng

#: Paper reference values (speedup over one GPU node).
PAPER_SCALING = {
    "hyperplane strong scaling, 8 ranks, eager (solo, 400 ms)": 3.8,
    "resnet50 weak scaling, 64 ranks, eager (solo, 460 ms)": 46.9,
    "ucf101 weak scaling, 8 ranks, synch-SGD": 3.72,
    "ucf101 weak scaling, 8 ranks, eager (majority)": 4.71,
}


@dataclass
class ScalingRow:
    """One scaling measurement."""

    name: str
    world_size: int
    mode: str
    speedup: float
    paper_speedup: Optional[float]


@dataclass
class ScalingResult:
    rows: List[ScalingRow]


def _per_rank_durations(
    steps: int,
    world_size: int,
    compute_seconds: float,
    delayed_ranks: int,
    delay_seconds: float,
    seed: int,
) -> np.ndarray:
    """Per-step, per-rank durations with a random delayed subset per step."""
    rng = seeded_rng(seed)
    durations = np.full((steps, world_size), compute_seconds, dtype=np.float64)
    for t in range(steps):
        if delayed_ranks:
            chosen = rng.choice(world_size, size=delayed_ranks, replace=False)
            durations[t, chosen] += delay_seconds
    return durations


def _projected_speedup(
    mode: str,
    world_size: int,
    parallel_compute_seconds: float,
    serial_compute_seconds: float,
    delayed_ranks: int,
    delay_seconds: float,
    gradient_bytes: int,
    steps: int = 200,
    seed: int = 0,
) -> float:
    """Speedup of a P-rank run over the single-node baseline.

    ``parallel_compute_seconds`` is the per-step compute of one rank in the
    distributed run; ``serial_compute_seconds`` is the per-step compute of
    the single-node baseline (equal for weak scaling, P times larger for
    strong scaling).
    """
    durations = _per_rank_durations(
        steps, world_size, parallel_compute_seconds, delayed_ranks, delay_seconds, seed
    )
    projection = project_training_time(
        StepTimeline(durations),
        mode=mode,
        gradient_bytes=gradient_bytes,
        params=DEFAULT_NETWORK,
        seed=seed,
    )
    serial_time = steps * serial_compute_seconds
    return serial_time / projection.total_time


def run(steps: int = 200, seed: int = 0) -> ScalingResult:
    """Reproduce the paper's scaling headlines via the timing projection."""
    rows: List[ScalingRow] = []

    # --- Hyperplane regression, strong scaling on 8 ranks (Section 6.2.1).
    # Single node: 0.64 steps/s at batch 2,048 -> 1.5625 s/step; each of
    # the 8 ranks then computes 1/8 of the batch.
    serial = 1.0 / 0.64
    rows.append(
        ScalingRow(
            name="hyperplane strong scaling, 8 ranks, eager (solo, 400 ms)",
            world_size=8,
            mode="solo",
            speedup=_projected_speedup(
                "solo", 8, serial / 8, serial, delayed_ranks=1,
                delay_seconds=0.4, gradient_bytes=8_193 * 4, steps=steps, seed=seed,
            ),
            paper_speedup=PAPER_SCALING[
                "hyperplane strong scaling, 8 ranks, eager (solo, 400 ms)"
            ],
        )
    )
    rows.append(
        ScalingRow(
            name="hyperplane strong scaling, 8 ranks, synch-SGD (400 ms)",
            world_size=8,
            mode="sync",
            speedup=_projected_speedup(
                "sync", 8, serial / 8, serial, delayed_ranks=1,
                delay_seconds=0.4, gradient_bytes=8_193 * 4, steps=steps, seed=seed,
            ),
            paper_speedup=None,
        )
    )

    # --- ResNet-50, weak scaling on 64 ranks (Section 6.2.2).
    # Single node: 1.56 steps/s at batch 128 -> 0.641 s/step; weak scaling
    # keeps the per-rank batch at 128, so per-rank compute stays 0.641 s.
    resnet_step = 1.0 / 1.56
    rows.append(
        ScalingRow(
            name="resnet50 weak scaling, 64 ranks, eager (solo, 460 ms)",
            world_size=64,
            mode="solo",
            speedup=64
            * _projected_speedup(
                "solo", 64, resnet_step, resnet_step, delayed_ranks=4,
                delay_seconds=0.46, gradient_bytes=25_559_081 * 4, steps=steps, seed=seed,
            ),
            paper_speedup=PAPER_SCALING[
                "resnet50 weak scaling, 64 ranks, eager (solo, 460 ms)"
            ],
        )
    )

    # The UCF101 weak-scaling numbers (3.72x for synch-SGD, 4.71x for
    # majority) are driven by the *inherent* content imbalance rather than
    # by injected delays; they are produced by
    # :func:`run_with_inherent_imbalance` instead of a fixed-cost model.
    return ScalingResult(rows=rows)


def run_with_inherent_imbalance(
    steps: int = 200, world_size: int = 8, seed: int = 0
) -> ScalingResult:
    """UCF101-style weak scaling with *content-driven* per-rank costs.

    Instead of a fixed per-step cost, each rank's step cost is drawn from
    the Fig. 2b batch-runtime distribution (independent per rank), which is
    what actually separates synch-SGD from the eager variants on the video
    workload.
    """
    from repro.data.ucf101 import sample_video_lengths
    from repro.imbalance.cost_model import lstm_ucf101_cost_model

    rng = seeded_rng(seed)
    cost_model = lstm_ucf101_cost_model(batch_size=16)
    lengths = sample_video_lengths(4096, seed=rng)
    rows: List[ScalingRow] = []
    durations = np.empty((steps, world_size))
    for t in range(steps):
        for r in range(world_size):
            batch = rng.choice(lengths, size=16, replace=False)
            durations[t, r] = cost_model.cost_from_size(float(np.sort(batch).sum()))
    serial_step = float(durations.mean())
    for mode, label in (("sync", "synch-SGD"), ("solo", "eager (solo)"),
                        ("majority", "eager (majority)")):
        projection = project_training_time(
            StepTimeline(durations),
            mode=mode,
            gradient_bytes=34_663_525 * 4,
            seed=seed,
        )
        rows.append(
            ScalingRow(
                name=f"ucf101 weak scaling (inherent imbalance), {label}",
                world_size=world_size,
                mode=mode,
                speedup=world_size * (steps * serial_step) / projection.total_time,
                paper_speedup=PAPER_SCALING.get(f"ucf101 weak scaling, 8 ranks, {label}"),
            )
        )
    return ScalingResult(rows=rows)


def report(result: ScalingResult) -> str:
    rows = [
        (
            r.name,
            r.world_size,
            round(r.speedup, 2),
            r.paper_speedup if r.paper_speedup is not None else "-",
        )
        for r in result.rows
    ]
    return format_table(
        ["scenario", "ranks", "measured speedup", "paper speedup"],
        rows,
        title="Strong/weak scaling projections vs single GPU node",
    )
