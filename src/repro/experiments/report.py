"""Plain-text report formatting shared by the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table.

    Floats are shown with four significant decimals; everything else uses
    ``str``.  Used by every ``report()`` function so experiment output is
    uniform and diffable.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(str_headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(str_headers))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 20,
) -> str:
    """Render an (x, y) series as a compact table, subsampled if long."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    n = len(xs)
    if n == 0:
        return f"{name}: (empty series)"
    if n > max_points:
        idx = [int(round(i * (n - 1) / (max_points - 1))) for i in range(max_points)]
    else:
        idx = list(range(n))
    rows = [(float(xs[i]), float(ys[i])) for i in idx]
    return format_table([x_label, y_label], rows, title=name)


def ratio_line(label: str, ours: float, paper: float, unit: str = "x") -> str:
    """One-line comparison of a measured ratio against the paper's value."""
    return (
        f"{label}: measured {ours:.2f}{unit} vs paper {paper:.2f}{unit} "
        f"(relative difference {abs(ours - paper) / max(abs(paper), 1e-12) * 100:.0f}%)"
    )
