"""Fig. 11 — ResNet-50 on ImageNet under light (simulated) load imbalance.

Setup of the paper (Section 6.2.2): 64 processes, total batch size 8,192,
90 epochs; at every step 4 of the 64 processes are delayed by 300 or
460 ms (cloud-like variability).  Results: eager-SGD (solo) achieves
1.25x / 1.23x speedup over Deep500 and 1.14x / 1.22x over Horovod while
reaching equivalent accuracy (paper: 75.2% vs 75.7/75.8% top-1 test,
92.4% vs 92.6% top-5).

The reproduction uses the ImageNet-like synthetic dataset with the scaled
ResNet, keeps the fraction of delayed ranks (1/16 of the world) and the
delay magnitudes, and compares Deep500-style and Horovod-style synch-SGD
against eager-SGD (solo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.data.synthetic_images import imagenet_like
from repro.experiments.training_experiments import (
    ComparisonResult,
    VariantSpec,
    comparison_table,
    metric_vs_time_table,
    run_comparison,
    speedup_summary,
)
from repro.imbalance.cost_model import resnet50_cloud_cost_model
from repro.imbalance.injection import RandomSubsetDelay
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.models import resnet_imagenet_lite
from repro.training.config import TrainingConfig

#: Speedups over the synchronous baselines quoted in Section 6.2.2.
PAPER_SPEEDUPS_DEEP500 = {
    "eager-SGD-300 (solo)": 1.25,
    "eager-SGD-460 (solo)": 1.23,
}
PAPER_SPEEDUPS_HOROVOD = {
    "eager-SGD-300 (solo)": 1.14,
    "eager-SGD-460 (solo)": 1.22,
}
#: Accuracy comparison quoted in the paper (top-1 / top-5 test accuracy).
PAPER_ACCURACY = {
    "synch-SGD (Deep500)": {"top1": 0.757, "top5": 0.926},
    "synch-SGD (Horovod)": {"top1": 0.758, "top5": 0.926},
    "eager-SGD (solo)": {"top1": 0.752, "top5": 0.924},
}

#: Scale presets: dataset size / model width / schedule.
SCALES = {
    "tiny": dict(
        num_examples=600, num_classes=10, image_size=8, width=4, blocks=1,
        world_size=4, global_batch_size=64, epochs=2,
    ),
    "small": dict(
        num_examples=2000, num_classes=20, image_size=8, width=8, blocks=1,
        world_size=8, global_batch_size=128, epochs=4,
    ),
    "large": dict(
        num_examples=8000, num_classes=100, image_size=16, width=8, blocks=2,
        world_size=16, global_batch_size=512, epochs=8,
    ),
}


@dataclass
class Fig11Result:
    comparison: ComparisonResult
    scale: str
    delays_ms: Sequence[float]


def run(
    scale: str = "small",
    delays_ms: Sequence[float] = (300.0, 460.0),
    seed: int = 0,
    time_scale: float = 0.001,
    comm_backend: Optional[str] = None,
    compression: Optional[str] = None,
) -> Fig11Result:
    """Run Deep500/Horovod/eager-SGD(solo) for every injected delay."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}")
    p = SCALES[scale]
    dataset = imagenet_like(
        num_examples=p["num_examples"],
        num_classes=p["num_classes"],
        image_size=p["image_size"],
        seed=seed,
    )
    train, val = dataset.split(validation_fraction=0.2, seed=seed)

    def model_factory():
        return resnet_imagenet_lite(
            num_classes=p["num_classes"],
            width=p["width"],
            blocks_per_stage=p["blocks"],
            seed=seed + 1,
        )

    base = TrainingConfig(
        world_size=p["world_size"],
        comm_backend=comm_backend,
        compression=compression,
        epochs=p["epochs"],
        global_batch_size=p["global_batch_size"],
        learning_rate=0.05,
        optimizer="momentum",
        cost_model=resnet50_cloud_cost_model(),
        time_scale=time_scale,
        model_sync_period_epochs=10,
        seed=seed,
    )

    # The paper delays 4 of 64 ranks (1/16 of the world); keep the ratio.
    num_delayed = max(1, p["world_size"] // 16)
    variants: List[VariantSpec] = []
    for delay in delays_ms:
        injector = RandomSubsetDelay(
            num_delayed=num_delayed, delay_ms=delay, seed=seed + int(delay)
        )
        variants.append(
            VariantSpec(
                name=f"synch-SGD-{int(delay)} (Deep500)",
                mode="sync",
                sync_style="deep500",
                delay_injector=injector,
            )
        )
        variants.append(
            VariantSpec(
                name=f"synch-SGD-{int(delay)} (Horovod)",
                mode="sync",
                sync_style="horovod",
                delay_injector=injector,
            )
        )
        variants.append(
            VariantSpec(
                name=f"eager-SGD-{int(delay)} (solo)",
                mode="solo",
                delay_injector=injector,
            )
        )

    comparison = run_comparison(
        workload="ImageNet-like ResNet",
        model_factory=model_factory,
        train_dataset=train,
        loss_fn=SoftmaxCrossEntropyLoss(),
        base_config=base,
        variants=variants,
        eval_dataset=val,
        classification=True,
        baseline=f"synch-SGD-{int(delays_ms[0])} (Deep500)",
    )
    return Fig11Result(comparison=comparison, scale=scale, delays_ms=delays_ms)


def report(result: Fig11Result) -> str:
    from repro.experiments.report import format_table

    parts = [
        comparison_table(
            result.comparison,
            title=f"Fig. 11  ResNet / ImageNet-like workload (scale={result.scale})",
        ),
        "",
        metric_vs_time_table(
            result.comparison,
            metric="train_top1",
            title="Fig. 11b  top-1 train accuracy vs projected training time",
        ),
        "",
        metric_vs_time_table(
            result.comparison,
            metric="eval_top1",
            title="Fig. 11c  top-1 test accuracy vs projected training time",
        ),
        "",
    ]
    rows = []
    for delay in result.delays_ms:
        eager = f"eager-SGD-{int(delay)} (solo)"
        d500 = f"synch-SGD-{int(delay)} (Deep500)"
        hvd = f"synch-SGD-{int(delay)} (Horovod)"
        if eager in result.comparison.results:
            rows.append(
                (
                    f"{int(delay)} ms",
                    round(result.comparison.speedup_over(eager, baseline=d500), 2),
                    PAPER_SPEEDUPS_DEEP500.get(eager, float("nan")),
                    round(result.comparison.speedup_over(eager, baseline=hvd), 2),
                    PAPER_SPEEDUPS_HOROVOD.get(eager, float("nan")),
                )
            )
    parts.append(
        format_table(
            [
                "injection",
                "speedup vs Deep500 (measured)",
                "paper",
                "speedup vs Horovod (measured)",
                "paper",
            ],
            rows,
            title="Fig. 11a  eager-SGD (solo) throughput speedups",
        )
    )
    return "\n".join(parts)
