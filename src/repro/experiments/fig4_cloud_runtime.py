"""Fig. 4 — runtime variability of ResNet-50 training on a cloud instance.

ResNet-50 on ImageNet has identical per-batch input sizes, so any runtime
spread is system-induced.  The paper measures 399 ms to 1,892 ms (mean
454 ms, std 116 ms) over five epochs on a Google Cloud ``n1-standard-16``
with two V100 GPUs.  The reproduction combines the fixed ResNet step cost
with the long-tailed cloud-noise injector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_table
from repro.imbalance.cost_model import cloud_noise_for_resnet50, resnet50_cloud_cost_model
from repro.utils.stats import DistributionSummary, Histogram, summarize

#: Reference numbers from Section 2.3 of the paper.
PAPER_RUNTIME_MS = {"min": 399, "max": 1892, "mean": 454, "std": 116}


@dataclass
class Fig4Result:
    """Measured runtime distribution for the cloud ResNet-50 workload."""

    num_batches: int
    runtime_summary_ms: DistributionSummary
    hist_centers: np.ndarray
    hist_counts: np.ndarray


def run(num_batches: int = 30_000, seed: int = 0) -> Fig4Result:
    """Sample per-batch runtimes: fixed compute + long-tailed cloud noise."""
    base = resnet50_cloud_cost_model().seconds_per_batch
    noise = cloud_noise_for_resnet50(seed=seed)
    runtimes_ms = []
    for step in range(num_batches):
        extra = noise.delays(step, 1)[0]
        runtimes_ms.append((base + extra) * 1000.0)
    hist = Histogram(bin_width=100.0)
    hist.extend(runtimes_ms)
    centers, counts = hist.as_series()
    return Fig4Result(
        num_batches=num_batches,
        runtime_summary_ms=summarize(runtimes_ms),
        hist_centers=centers,
        hist_counts=counts,
    )


def report(result: Fig4Result) -> str:
    rows = [
        ("min runtime (ms)", PAPER_RUNTIME_MS["min"], result.runtime_summary_ms.min),
        ("max runtime (ms)", PAPER_RUNTIME_MS["max"], result.runtime_summary_ms.max),
        ("mean runtime (ms)", PAPER_RUNTIME_MS["mean"], result.runtime_summary_ms.mean),
        ("std runtime (ms)", PAPER_RUNTIME_MS["std"], result.runtime_summary_ms.std),
    ]
    return format_table(
        ["quantity", "paper", "reproduction"],
        rows,
        title="Fig. 4  ResNet-50 batch runtimes on a cloud instance",
    )
