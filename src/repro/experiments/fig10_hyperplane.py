"""Fig. 10 — hyperplane regression under light (simulated) load imbalance.

Setup of the paper (Section 6.2.1): an 8,192-dimensional hyperplane, a
one-layer MLP, 8 processes with a total batch size of 2,048, 48 epochs.
At every step one randomly selected process is delayed by 200, 300 or
400 ms.  Results: eager-SGD with solo allreduce achieves 1.50x, 1.75x and
2.01x speedup over synch-SGD (Deep500) while converging to the same
validation loss (~4.7).

The reproduction keeps the structure (1-of-P random delay of the same
magnitudes; same model family; same comparison) and scales the problem
size so it runs on CPU threads; the time axis is projected to paper scale
from the per-step workload trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.data.hyperplane import HyperplaneDataset
from repro.experiments.training_experiments import (
    ComparisonResult,
    VariantSpec,
    comparison_table,
    metric_vs_time_table,
    run_comparison,
    speedup_summary,
)
from repro.imbalance.cost_model import FixedCostModel
from repro.imbalance.injection import RandomSubsetDelay
from repro.nn.losses import MSELoss
from repro.nn.models import HyperplaneMLP
from repro.training.config import TrainingConfig

#: Speedups of eager-SGD (solo) over synch-SGD (Deep500) quoted in 6.2.1.
PAPER_SPEEDUPS = {
    "eager-SGD-200 (solo)": 1.50,
    "eager-SGD-300 (solo)": 1.75,
    "eager-SGD-400 (solo)": 2.01,
}
#: Validation loss both methods converge to in the paper.
PAPER_FINAL_LOSS = 4.7

#: Scale presets: (input_dim, num_examples, global_batch, epochs, world_size).
SCALES = {
    "tiny": dict(input_dim=64, num_examples=512, global_batch_size=128, epochs=3, world_size=4),
    "small": dict(input_dim=256, num_examples=2048, global_batch_size=256, epochs=8, world_size=8),
    "paper": dict(
        input_dim=8192, num_examples=32768, global_batch_size=2048, epochs=48, world_size=8
    ),
}

#: Single-GPU step time implied by the paper ("0.64 steps/s with batch
#: size 2,048" on one node): roughly 195 ms of compute per local batch at
#: 8-way parallelism.
STEP_COMPUTE_SECONDS = 0.195


@dataclass
class Fig10Result:
    comparison: ComparisonResult
    scale: str
    delays_ms: Sequence[float]


def run(
    scale: str = "small",
    delays_ms: Sequence[float] = (200.0, 300.0, 400.0),
    seed: int = 0,
    time_scale: float = 0.001,
    include_majority: bool = False,
    comm_backend: Optional[str] = None,
    compression: Optional[str] = None,
) -> Fig10Result:
    """Run synch-SGD vs eager-SGD (solo) for every injected delay."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}")
    params = SCALES[scale]
    dataset = HyperplaneDataset(
        num_examples=params["num_examples"],
        input_dim=params["input_dim"],
        noise_std=1.0,
        seed=seed,
    )
    train, val = dataset.split(validation_fraction=0.2, seed=seed)

    def model_factory() -> HyperplaneMLP:
        return HyperplaneMLP(input_dim=params["input_dim"], seed=seed + 1)

    base = TrainingConfig(
        world_size=params["world_size"],
        comm_backend=comm_backend,
        compression=compression,
        epochs=params["epochs"],
        global_batch_size=params["global_batch_size"],
        learning_rate=0.5,
        optimizer="sgd",
        cost_model=FixedCostModel(STEP_COMPUTE_SECONDS),
        time_scale=time_scale,
        model_sync_period_epochs=10,
        seed=seed,
    )

    variants: List[VariantSpec] = []
    for delay in delays_ms:
        injector = RandomSubsetDelay(num_delayed=1, delay_ms=delay, seed=seed + int(delay))
        variants.append(
            VariantSpec(
                name=f"synch-SGD-{int(delay)} (Deep500)",
                mode="sync",
                sync_style="deep500",
                delay_injector=injector,
            )
        )
        variants.append(
            VariantSpec(
                name=f"eager-SGD-{int(delay)} (solo)",
                mode="solo",
                delay_injector=injector,
            )
        )
        if include_majority:
            variants.append(
                VariantSpec(
                    name=f"eager-SGD-{int(delay)} (majority)",
                    mode="majority",
                    delay_injector=injector,
                )
            )

    comparison = run_comparison(
        workload="hyperplane regression",
        model_factory=model_factory,
        train_dataset=train,
        loss_fn=MSELoss(),
        base_config=base,
        variants=variants,
        eval_dataset=val,
        classification=False,
        baseline=f"synch-SGD-{int(delays_ms[0])} (Deep500)",
    )
    return Fig10Result(comparison=comparison, scale=scale, delays_ms=delays_ms)


def speedups_per_delay(result: Fig10Result) -> Dict[float, float]:
    """Speedup of eager-SGD(solo) over synch-SGD at the *same* delay."""
    out = {}
    for delay in result.delays_ms:
        sync_name = f"synch-SGD-{int(delay)} (Deep500)"
        eager_name = f"eager-SGD-{int(delay)} (solo)"
        if sync_name in result.comparison.results and eager_name in result.comparison.results:
            out[delay] = result.comparison.speedup_over(eager_name, baseline=sync_name)
    return out


def report(result: Fig10Result) -> str:
    parts = [
        comparison_table(
            result.comparison,
            title=(
                "Fig. 10  Hyperplane regression, synch-SGD vs eager-SGD "
                f"(scale={result.scale})"
            ),
        ),
        "",
        metric_vs_time_table(
            result.comparison,
            metric="eval_loss",
            title="Fig. 10 (bottom)  validation loss vs projected training time",
        ),
        "",
    ]
    rows = []
    for delay, speedup in speedups_per_delay(result).items():
        paper = PAPER_SPEEDUPS.get(f"eager-SGD-{int(delay)} (solo)", float("nan"))
        rows.append((f"{int(delay)} ms injection", round(speedup, 2), paper))
    from repro.experiments.report import format_table

    parts.append(
        format_table(
            ["injection", "measured speedup (solo vs Deep500)", "paper speedup"],
            rows,
            title="Fig. 10 (top)  throughput speedups",
        )
    )
    return "\n".join(parts)
