"""Fig. 2 — load imbalance in LSTM training on UCF101.

Fig. 2a of the paper shows the distribution of video lengths over the
9,537 training videos of UCF101 (29 to 1,776 frames, median 167, standard
deviation 97).  Fig. 2b shows the resulting distribution of per-batch
runtimes (batch size 16, bucketed by length) on a P100 GPU: 201 ms to
3,410 ms.

The reproduction samples synthetic video lengths from the calibrated
distribution, buckets them exactly as the paper describes and maps each
batch to a runtime with the LSTM cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.bucketing import BucketBatchSampler
from repro.data.ucf101 import UCF101_LENGTH_STATS, sample_video_lengths
from repro.experiments.report import format_table
from repro.imbalance.cost_model import lstm_ucf101_cost_model
from repro.utils.stats import DistributionSummary, Histogram, summarize

#: Reference numbers quoted in Section 2.1 of the paper.
PAPER_LENGTH = {"min": 29, "max": 1776, "median": 167, "std": 97}
PAPER_RUNTIME_MS = {"min": 201, "max": 3410, "mean": 1235, "std": 706}


@dataclass
class Fig2Result:
    """Measured distributions for Fig. 2a (lengths) and Fig. 2b (runtimes)."""

    num_videos: int
    batch_size: int
    length_summary: DistributionSummary
    length_hist_centers: np.ndarray
    length_hist_counts: np.ndarray
    runtime_summary_ms: DistributionSummary
    runtime_hist_centers: np.ndarray
    runtime_hist_counts: np.ndarray


def run(
    num_videos: int = UCF101_LENGTH_STATS.num_videos,
    batch_size: int = 16,
    epochs: int = 2,
    seed: int = 0,
) -> Fig2Result:
    """Generate the synthetic workload and measure both distributions.

    ``epochs=2`` mirrors the paper, which samples 1,192 batches over two
    epochs.
    """
    lengths = sample_video_lengths(num_videos, seed=seed)
    length_hist = Histogram(bin_width=100.0)
    length_hist.extend(lengths)

    cost_model = lstm_ucf101_cost_model(batch_size=batch_size)
    # drop_last: the paper's runtime distribution is over full batches of
    # 16 bucketed videos; ragged trailing batches would add artificially
    # cheap outliers below the paper's 201 ms minimum.
    sampler = BucketBatchSampler(
        lengths, batch_size=batch_size, num_buckets=16, seed=seed, drop_last=True
    )
    runtimes_ms = []
    for epoch in range(epochs):
        for batch_indices in sampler.epoch_batches(epoch):
            total_frames = float(lengths[batch_indices].sum())
            runtimes_ms.append(cost_model.cost_from_size(total_frames) * 1000.0)
    runtime_hist = Histogram(bin_width=250.0)
    runtime_hist.extend(runtimes_ms)

    lc, lcounts = length_hist.as_series()
    rc, rcounts = runtime_hist.as_series()
    return Fig2Result(
        num_videos=num_videos,
        batch_size=batch_size,
        length_summary=summarize(lengths),
        length_hist_centers=lc,
        length_hist_counts=lcounts,
        runtime_summary_ms=summarize(runtimes_ms),
        runtime_hist_centers=rc,
        runtime_hist_counts=rcounts,
    )


def report(result: Fig2Result) -> str:
    """Side-by-side comparison with the numbers quoted in the paper."""
    length_rows = [
        ("min frames", PAPER_LENGTH["min"], result.length_summary.min),
        ("max frames", PAPER_LENGTH["max"], result.length_summary.max),
        ("median frames", PAPER_LENGTH["median"], result.length_summary.median),
        ("std frames", PAPER_LENGTH["std"], result.length_summary.std),
        ("num videos", UCF101_LENGTH_STATS.num_videos, result.num_videos),
    ]
    runtime_rows = [
        ("min runtime (ms)", PAPER_RUNTIME_MS["min"], result.runtime_summary_ms.min),
        ("max runtime (ms)", PAPER_RUNTIME_MS["max"], result.runtime_summary_ms.max),
        ("mean runtime (ms)", PAPER_RUNTIME_MS["mean"], result.runtime_summary_ms.mean),
        ("std runtime (ms)", PAPER_RUNTIME_MS["std"], result.runtime_summary_ms.std),
    ]
    parts = [
        format_table(
            ["quantity", "paper", "reproduction"],
            length_rows,
            title="Fig. 2a  UCF101 video-length distribution",
        ),
        "",
        format_table(
            ["quantity", "paper", "reproduction"],
            runtime_rows,
            title=f"Fig. 2b  LSTM batch runtimes (batch size {result.batch_size})",
        ),
        "",
        format_table(
            ["frames (bin center)", "num videos"],
            list(zip(result.length_hist_centers.tolist(), result.length_hist_counts.tolist())),
            title="Fig. 2a histogram (reproduction)",
        ),
    ]
    return "\n".join(parts)
