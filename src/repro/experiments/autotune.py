"""Calibrated LogGP + auto-tuned fusion: the ``tune`` CLI harness.

Runs :func:`repro.tuning.calibration.calibrate` for every requested
world size (through the profile cache), then searches the fusion grid
with :func:`repro.tuning.autotune.autotune` at the requested gradient
size.  The report shows three tables:

1. the fitted LogGP parameters per world size and the worst relative
   error of the fitted model against the measured allreduce sweep;
2. the model-vs-measured validation rows behind that error — this is
   where the "reproduce the measured thread-backend allreduce latency"
   acceptance is visible size by size;
3. the per-world-size recommendation: the auto-tuned
   ``(fusion_threshold_bytes, pipeline_chunks)`` and its modelled
   speedup over the fixed 64 KiB / 1-chunk default.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.tuning.autotune import TunedPlan, tune_with_profile
from repro.tuning.calibration import CalibratedProfile, calibrate, predict_sample

MB = 1024 * 1024


@dataclass
class AutotuneResult:
    """Profiles and recommendations produced by one ``tune`` invocation."""

    profiles: List[CalibratedProfile]
    plans: List[TunedPlan]
    gradient_mb: float
    algorithm: str
    quick: bool = False


def run(
    world_sizes: Sequence[int] = (2, 4, 8),
    gradient_mb: float = 4.0,
    algorithm: str = "ring",
    quick: bool = False,
    cache_dir: Optional[Path] = None,
    force: bool = False,
    live_trials: int = 0,
    backend: Optional[str] = None,
    compression: Optional[str] = None,
) -> AutotuneResult:
    """Calibrate every world size and auto-tune the fusion knobs.

    ``backend`` selects the communication backend the measurements run
    on (``"thread"`` / ``"process"``; ``None`` = the process-wide
    default) — profiles cache separately per backend.  ``quick`` runs
    the reduced measurement sweep (CI smoke); ``force`` remeasures even
    when a cached profile exists; ``live_trials`` makes the grid search
    cross-check its best candidates against live exchanges on the same
    backend.  ``compression`` names a gradient codec: the grid is then
    tuned under the codec's wire/transform cost model, so the
    recommended fusion threshold is per codec (a compressing codec
    shifts the knee — more elements fit one wire buffer).
    """
    if not world_sizes:
        raise ValueError("world_sizes must not be empty")
    if any(p < 2 for p in world_sizes):
        raise ValueError(f"calibration needs world sizes >= 2, got {list(world_sizes)}")
    if gradient_mb <= 0:
        raise ValueError(f"gradient_mb must be > 0, got {gradient_mb}")
    gradient_bytes = max(1, int(gradient_mb * MB))
    profiles = []
    plans = []
    for world_size in world_sizes:
        profile = calibrate(
            world_size, backend=backend, quick=quick, cache_dir=cache_dir, force=force
        )
        profiles.append(profile)
        plans.append(
            tune_with_profile(
                profile, gradient_bytes, algorithm, live_trials=live_trials,
                compression=compression,
                ranks_per_host=_resolve_ranks_per_host(profile.backend, world_size),
            )
        )
    return AutotuneResult(
        profiles=profiles,
        plans=plans,
        gradient_mb=gradient_mb,
        algorithm=algorithm,
        quick=quick,
    )


def report(result: AutotuneResult) -> str:
    """Render the fitted parameters, validation and recommendation tables."""
    backends = "/".join(sorted({p.backend for p in result.profiles}))
    parts = [
        format_table(
            ["P", "alpha [us]", "beta [ns/B]", "gamma [ns/B]", "overhead [us]",
             "fit algo", "max rel err"],
            [
                (
                    p.world_size,
                    p.params.alpha * 1e6,
                    p.params.beta * 1e9,
                    p.params.gamma * 1e9,
                    p.params.collective_overhead * 1e6,
                    p.algorithm,
                    f"{p.max_rel_error:.1%}",
                )
                for p in result.profiles
            ],
            title=f"calibrated LogGP parameters ({backends} backend)",
        ),
        "",
        format_table(
            ["P", "size [KiB]", "measured [us]", "model [us]", "rel err"],
            [
                (
                    s.world_size,
                    s.nbytes / 1024,
                    s.seconds * 1e6,
                    predict_sample(s, p.params) * 1e6,
                    f"{abs(predict_sample(s, p.params) - s.seconds) / s.seconds:.1%}",
                )
                for p in result.profiles
                for s in p.samples
                if s.kind == "allreduce"
            ],
            title="model vs. measured allreduce latency (calibration sweep)",
        ),
        "",
        format_table(
            ["P", "gradient", "codec", "threshold", "chunks", "buckets",
             "tuned [us]", "64KiB/1 [us]", "speedup"],
            [
                (
                    plan.world_size,
                    f"{result.gradient_mb:g} MB",
                    plan.compression,
                    _format_bytes(plan.fusion_threshold_bytes),
                    plan.pipeline_chunks,
                    plan.num_buckets,
                    plan.predicted_time * 1e6,
                    plan.baseline_time * 1e6,
                    plan.speedup,
                )
                for plan in result.plans
            ],
            title=f"auto-tuned fusion recommendation ({result.algorithm} exchange) "
            "vs. fixed 64 KiB / 1-chunk default (same codec)",
        ),
    ]
    two_tier = [p for p in result.profiles if p.is_two_tier]
    if two_tier:
        parts.append("")
        parts.append(
            format_table(
                ["P", "link", "alpha [us]", "beta [ns/B]", "gamma [ns/B]",
                 "overhead [us]"],
                [
                    (
                        p.world_size,
                        link_class,
                        p.link(link_class).alpha * 1e6,
                        p.link(link_class).beta * 1e9,
                        p.link(link_class).gamma * 1e9,
                        p.link(link_class).collective_overhead * 1e6,
                    )
                    for p in two_tier
                    for link_class in ("intra", "inter")
                ],
                title="per-link-class LogGP parameters (two-tier fabric)",
            )
        )
    live = [p for p in result.plans if p.measured_time == p.measured_time]
    if live:
        parts.append("")
        parts.append(
            format_table(
                ["P", "threshold", "chunks", "measured [us]",
                 "measured 64KiB/1 [us]", "live speedup"],
                [
                    (
                        plan.world_size,
                        _format_bytes(plan.fusion_threshold_bytes),
                        plan.pipeline_chunks,
                        plan.measured_time * 1e6,
                        plan.measured_baseline_time * 1e6,
                        plan.measured_speedup,
                    )
                    for plan in live
                ],
                title=f"live {backends}-backend cross-check",
            )
        )
    worst = max(p.max_rel_error for p in result.profiles)
    min_speedup = min(p.speedup for p in result.plans)
    parts.append("")
    parts.append(
        f"headline: fitted model within {worst:.1%} of measured allreduce "
        f"latency (worst case); auto-tuned exchange >= {min_speedup:.2f}x the "
        f"fixed 64 KiB / 1-chunk default at every calibrated world size"
    )
    return "\n".join(parts)


def _resolve_ranks_per_host(backend: Optional[str], world_size: int):
    """Host layout the tuner should score for, or ``None`` for flat.

    Only the ``hier`` backend carries a host topology; it is resolved the
    same way the backend itself resolves it (``REPRO_HOST_TOPOLOGY`` or
    the single-host default).  An env spec sized for a different world
    size is ignored rather than raised — each calibrated world size gets
    the layout that actually applies to it.
    """
    if backend != "hier":
        return None
    from repro.comm.hier_backend import resolve_topology

    try:
        topology = resolve_topology(None, world_size)
    except ValueError:
        return None
    if topology.is_single_host:
        return None
    return tuple(
        len(topology.ranks_on_host(host)) for host in range(topology.num_hosts)
    )


def _format_bytes(nbytes: int) -> str:
    if nbytes % MB == 0:
        return f"{nbytes // MB} MiB"
    if nbytes % 1024 == 0:
        return f"{nbytes // 1024} KiB"
    return f"{nbytes} B"
