"""Partial collective operations: solo, majority and quorum allreduce.

This module is the runtime half of the paper's contribution.  Each rank
owns a :class:`PartialAllreduce` object which spawns a *progress thread*
(the communication library of Section 4.3) and exposes a single blocking
call to the application:

    ``result = partial.reduce(gradient)``

The call semantics follow Algorithm 2 / Fig. 7 of the paper:

* the gradient is added into the rank's **send buffer** (so gradients that
  miss their round are not lost: they become *stale gradients* contributed
  to a later round);
* the current round is *activated* — eagerly by this rank in solo mode, by
  the randomly designated initiator in majority mode, or once ``Q`` ranks
  have arrived in quorum mode;
* the call returns the reduced value of the current round together with
  bookkeeping (whether this rank's fresh gradient was included, how many
  ranks contributed fresh data — the "number of active processes" of
  Fig. 9 — and who initiated).

The activation phase is a dissemination broadcast (union of ``P`` binomial
trees; see :func:`repro.collectives.schedules.build_activation_schedule`)
carried on the dedicated ``activation`` channel; the reduction itself is a
recursive-doubling allreduce among the progress threads on the ``lib``
channel.  Progress threads always participate immediately, so a slow
application thread never delays the collective — it merely contributes
null (or stale) data, which is exactly the paper's relaxation.
"""

from __future__ import annotations

import enum
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm import tags
from repro.comm.communicator import Communicator
from repro.comm.message import ANY_TAG
from repro.comm.reduce_ops import ReduceOp, SUM, get_op
from repro.comm.router import Channel
from repro.collectives.sync import allreduce_recursive_doubling
from repro.obs import recorder as _obs
from repro.utils.rng import seeded_rng

# Tag bases come from the global tag-region map (one tag per round in
# each region); the underscored aliases are kept for existing callers.
_ACTIVATION_TAG_BASE = tags.PARTIAL_ACTIVATION_TAG_BASE
_ARRIVAL_TAG_BASE = tags.PARTIAL_ARRIVAL_TAG_BASE


class PartialMode(str, enum.Enum):
    """Which partial-collective flavour to run."""

    #: Wait-free: the first process to arrive initiates (Section 4.1).
    SOLO = "solo"
    #: A randomly designated initiator guarantees that on average at least
    #: half of the processes contribute fresh data (Section 4.2).
    MAJORITY = "majority"
    #: Generalised quorum: the round is initiated once ``quorum`` ranks
    #: have arrived (the solo--majority--full spectrum mentioned in the
    #: paper's conclusions).
    QUORUM = "quorum"


@dataclass(frozen=True)
class PartialAllreduceResult:
    """Outcome of one partial allreduce round for one rank."""

    #: Index of the completed round.
    round_index: int
    #: The reduced vector (divided by the world size when ``average``).
    data: np.ndarray
    #: Whether this rank's freshly computed gradient was part of the round
    #: (the ``s_i^t`` bit of the ADS object in Section 5.1.1).
    included: bool
    #: Number of processes that contributed fresh (non-stale, non-null)
    #: data to this round — the "number of active processes" of Fig. 9.
    num_active: int
    #: Rank that initiated the round (-1 if unknown on this rank).
    initiator: int
    #: Seconds this rank's application thread spent blocked in the call.
    wait_time: float = 0.0


@dataclass
class _RoundRecord:
    """Internal per-round bookkeeping kept by the progress thread."""

    result: np.ndarray
    num_active: int
    initiator: int
    swap_marker: int


class PartialAllreduce:
    """Per-rank handle for an asynchronously progressed partial allreduce.

    Parameters
    ----------
    comm:
        Any communicator of the target world; the object derives its own
        communicators on the ``lib`` and ``activation`` channels from it,
        leaving the caller's channel untouched.
    shape:
        Shape of the contribution vector (e.g. the flattened gradient).
    mode:
        :class:`PartialMode` or its string value.
    average:
        Divide the reduced sum by the world size (Algorithm 2, line 6).
    op:
        Reduction operator (default: sum).
    seed:
        Seed of the shared PRNG used to designate initiators in majority
        mode; it must be identical on every rank (the paper achieves
        consensus "by using the same seed for all the processes").
    quorum:
        Required number of arrivals in quorum mode.
    poll_interval:
        Sleep used by the progress thread while waiting for activation.
    overwrite_recvbuff:
        Paper-faithful receive-buffer semantics (default).  The persistent
        schedule of Section 4.1.1 reuses a single receive buffer, so a
        process that lags behind by more than one round only sees the
        *latest* completed round's result ("the data in the receive buffer
        will be overwritten and only the latest data can be seen"), which
        is what makes replicas drift apart under severe imbalance and why
        eager-SGD periodically re-synchronises the models.  Set to
        ``False`` for exact per-round results (an ablation of that design
        choice).
    channel_suffix:
        Suffix appended to the ``lib``/``activation`` channel names.  One
        :class:`PartialAllreduce` per channel pair: the fused gradient
        exchange opens a distinct suffix per fusion bucket so per-bucket
        rounds can progress independently without tag cross-talk.
    n_chunks:
        Pipeline the background reduction in this many segments (see
        :func:`repro.collectives.sync.allreduce_recursive_doubling`).
        Only effective for elementwise-uniform ops (sum/avg): a composite
        max/min/prod payload needs the arrival counter kept in one piece,
        so those ops fall back to unsegmented rounds.
    """

    def __init__(
        self,
        comm: Communicator,
        shape: Tuple[int, ...] | int,
        mode: PartialMode | str = PartialMode.SOLO,
        *,
        average: bool = True,
        op: ReduceOp | str = SUM,
        seed: int = 12345,
        quorum: Optional[int] = None,
        poll_interval: float = 2e-4,
        overwrite_recvbuff: bool = True,
        dtype=np.float64,
        channel_suffix: str = "",
        n_chunks: int = 1,
    ) -> None:
        self.mode = PartialMode(mode)
        self.comm_lib = comm.dup(Channel.LIB + channel_suffix)
        self.comm_act = comm.dup(Channel.ACTIVATION + channel_suffix)
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        self.n_chunks = int(n_chunks)
        self.rank = comm.rank
        self.size = comm.size
        self.shape = (shape,) if isinstance(shape, int) else tuple(shape)
        self.average = bool(average)
        self.op = get_op(op)
        self._payload_op = self._make_payload_op(self.op)
        self.poll_interval = float(poll_interval)
        self.dtype = dtype

        if np.issubdtype(np.dtype(self.dtype), np.floating):
            # The piggybacked arrival counter (see _run_round) is summed
            # in this dtype; its sums-of-ones stay exact only up to
            # 2^(mantissa+1) (2048 for float16, 2^53 for float64).
            exact_limit = 2 ** (np.finfo(np.dtype(self.dtype)).nmant + 1)
            if self.size > exact_limit:
                raise ValueError(
                    f"world size {self.size} exceeds the exact-integer range "
                    f"of dtype {np.dtype(self.dtype).name} ({exact_limit}); "
                    f"the active-process counter would be silently absorbed"
                )
        if self.mode is PartialMode.QUORUM:
            if quorum is None:
                quorum = max(1, self.size // 2)
            if not 1 <= quorum <= self.size:
                raise ValueError(f"quorum must be in [1, {self.size}], got {quorum}")
        self.quorum = quorum
        self.overwrite_recvbuff = bool(overwrite_recvbuff)

        # Shared PRNG stream for initiator designation (majority / quorum
        # coordinator).  All ranks draw the same sequence.
        self._initiator_rng = seeded_rng(seed)

        # --- state shared between the application thread and the
        # --- progress thread, guarded by _lock / _cond.
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._send_acc = np.zeros(self.shape, dtype=self.dtype)
        self._add_counter = 0
        self._last_arrival_round = -1
        self._internal_rounds: set[int] = set()
        self._rounds_done = 0
        self._records: Dict[int, _RoundRecord] = {}
        self._latest_record: Optional[_RoundRecord] = None
        self._caller_round = -1
        self._stop = False
        self._failure: Optional[BaseException] = None

        # Statistics.
        self.nap_history: List[int] = []
        self.included_history: List[bool] = []
        self.initiated_rounds: List[int] = []
        self.stale_norm_history: List[float] = []

        self._depth = max(1, int(math.ceil(math.log2(self.size)))) if self.size > 1 else 0
        # The progress thread inherits the owning rank's flight recorder
        # (thread-local bindings do not propagate to spawned threads).
        self._recorder = _obs.current()
        self._thread = threading.Thread(
            target=self._progress_loop,
            name=f"partial-allreduce-rank{self.rank}",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # application-thread API
    # ------------------------------------------------------------------
    def reduce(
        self, contribution: np.ndarray, timeout: Optional[float] = 120.0
    ) -> PartialAllreduceResult:
        """Contribute to the next round and return that round's result.

        This is the ``partial_allreduce`` call of Algorithm 2.  The call
        blocks until the round completes, but the round can complete
        without this rank's fresh contribution (which then stays in the
        send buffer as a stale gradient for the following round).
        """
        contribution = np.asarray(contribution, dtype=self.dtype)
        if contribution.shape != self.shape:
            raise ValueError(
                f"contribution shape {contribution.shape} does not match "
                f"collective shape {self.shape}"
            )
        start = time.perf_counter()
        with self._cond:
            self._raise_if_failed()
            self._caller_round += 1
            round_index = self._caller_round
            # Add the fresh gradient to the send buffer; whatever was left
            # there from previous rounds (stale gradients) rides along.
            self._send_acc += contribution
            self._add_counter += 1
            my_marker = self._add_counter
            self._last_arrival_round = round_index
            if round_index >= self._rounds_done:
                # The round is still open: this rank may (or, for
                # majority, may not) initiate it.
                self._internal_rounds.add(round_index)
                self._cond.notify_all()
            # Wait until the progress thread has finished the round.
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._rounds_done <= round_index:
                self._raise_if_failed()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"rank {self.rank}: partial allreduce round {round_index} "
                        f"did not complete within {timeout}s"
                    )
                self._cond.wait(timeout=0.05 if remaining is None else min(0.05, remaining))
            # Each round is consumed exactly once by the application
            # thread; popping keeps memory bounded over long trainings.
            record = self._records.pop(round_index)
            included = my_marker <= record.swap_marker
            if self.overwrite_recvbuff:
                # Persistent-schedule semantics: the receive buffer holds
                # the result of the *latest* completed execution, so a
                # rank that lagged behind reads newer data than its own
                # round (Section 5, "only the latest data ... can be seen").
                effective = record if self._latest_record is None else self._latest_record
            else:
                effective = record
        wait_time = time.perf_counter() - start
        self.included_history.append(included)
        result = effective.result
        if self.average:
            result = result / self.size
        return PartialAllreduceResult(
            round_index=round_index,
            data=np.array(result, copy=True),
            included=included,
            num_active=effective.num_active,
            initiator=effective.initiator,
            wait_time=wait_time,
        )

    def pending_stale_norm(self) -> float:
        """L2 norm of the gradient data currently waiting in the send buffer."""
        with self._lock:
            return float(np.linalg.norm(self._send_acc))

    @property
    def rounds_completed(self) -> int:
        with self._lock:
            return self._rounds_done

    def close(self, timeout: float = 10.0) -> None:
        """Stop the progress thread.  Call after the last ``reduce``."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "PartialAllreduce":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _raise_if_failed(self) -> None:
        if self._failure is not None:
            raise RuntimeError(
                f"rank {self.rank}: partial-allreduce progress thread failed"
            ) from self._failure

    # ------------------------------------------------------------------
    # active-process counter encode/decode
    # ------------------------------------------------------------------
    @staticmethod
    def _make_payload_op(data_op: ReduceOp) -> ReduceOp:
        """Operator for the ``[data..., counter]`` reduction payload.

        The data elements are combined with ``data_op`` while the trailing
        arrival counter is always summed — a max/min/prod data op would
        otherwise collapse the count of contributing processes to a
        meaningless 0/1.
        """
        if data_op.fn is SUM.fn or data_op.name in ("sum", "avg"):
            return data_op

        def combine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            a = np.asarray(a)
            b = np.asarray(b)
            return np.concatenate(
                [data_op.fn(a[:-1], b[:-1]), np.atleast_1d(a[-1] + b[-1])]
            )

        return ReduceOp(f"{data_op.name}+count", combine, data_op.identity)

    def _decode_num_active(self, raw: float) -> int:
        """Decode (and validate) the reduced arrival counter."""
        num_active = int(round(raw))
        if abs(raw - num_active) > 1e-6 or not 0 <= num_active <= self.size:
            raise RuntimeError(
                f"rank {self.rank}: corrupted active-process counter "
                f"{raw!r} (world size {self.size}); the counter must reduce "
                f"to an exact integer in [0, {self.size}]"
            )
        return num_active

    # ------------------------------------------------------------------
    # progress thread
    # ------------------------------------------------------------------
    def _activation_tag(self, round_index: int) -> int:
        return tags.partial_activation_tag(round_index)

    def _arrival_tag(self, round_index: int) -> int:
        return tags.partial_arrival_tag(round_index)

    def _designated_initiator(self, round_index: int) -> int:
        """Initiator (majority) / coordinator (quorum) of ``round_index``.

        Consensus across ranks comes from the shared seed: every rank
        draws the same pseudo-random sequence (Section 4.2).
        """
        return int(self._initiator_rng.integers(0, self.size))

    def _progress_loop(self) -> None:
        _obs.bind(self._recorder)
        try:
            round_index = 0
            while True:
                if not self._run_round(round_index):
                    return
                round_index += 1
        except BaseException as exc:  # noqa: BLE001 - reported to the app thread
            with self._cond:
                self._failure = exc
                self._cond.notify_all()

    # -- round phases ---------------------------------------------------
    def _run_round(self, round_index: int) -> bool:
        """Execute one round; returns False when asked to stop."""
        designated = -1
        if self.mode in (PartialMode.MAJORITY, PartialMode.QUORUM):
            designated = self._designated_initiator(round_index)

        activation = self._wait_for_activation(round_index, designated)
        if activation is None:
            return False
        initiator, forward_from_distance = activation
        _obs.instant(
            "partial-activation", "partial", round=round_index,
            initiator=initiator, external=forward_from_distance >= 0,
        )

        # Forward the activation along the dissemination tree.
        self._forward_activation(round_index, initiator, forward_from_distance)

        # Atomically take the send buffer: everything accumulated so far
        # (fresh gradient and/or stale gradients) is this round's
        # contribution; late additions stay for the next round.
        with self._lock:
            contribution = self._send_acc.copy()
            self._send_acc[:] = 0
            swap_marker = self._add_counter
            fresh = self._last_arrival_round >= round_index
            stale_norm = float(np.linalg.norm(contribution))
            self.stale_norm_history.append(stale_norm)
        _obs.instant(
            "partial-staleness", "partial", round=round_index,
            fresh=fresh, stale_norm=stale_norm,
        )

        # Piggyback the number of active processes onto the reduction.  The
        # counter element is always combined with SUM — even when the data
        # op is max/min/prod — and is decoded *before* any averaging (the
        # ``average`` division in :meth:`reduce` applies to the data part
        # only), so the count stays an exact integer in the collective's
        # dtype: sums of ones are exact up to 2^(mantissa+1) — 2^53 for
        # float64, 2048 for a float16 (compressed) collective — and the
        # constructor rejects world sizes beyond that range.
        # Keep the collective's dtype: concatenating with a Python list
        # would promote a narrow (compressed) send buffer to float64 and
        # silently fatten the wire payload.
        payload = np.concatenate(
            [contribution.reshape(-1),
             np.asarray([1.0 if fresh else 0.0], dtype=self.dtype)]
        )
        # Chunk pipelining slices the payload at arbitrary segment
        # boundaries, which is only sound when the operator treats every
        # element alike; the composite non-sum op addresses the counter
        # as payload[-1] and therefore needs whole-payload rounds.
        chunks = self.n_chunks if self._payload_op is self.op else 1
        reduced = allreduce_recursive_doubling(
            self.comm_lib, payload, op=self._payload_op, n_chunks=chunks
        )
        result = np.asarray(reduced[:-1]).reshape(self.shape)
        num_active = self._decode_num_active(float(reduced[-1]))
        self.nap_history.append(num_active)
        _obs.counter("partial-num-active", num_active, cat="partial")

        with self._cond:
            record = _RoundRecord(
                result=result,
                num_active=num_active,
                initiator=initiator,
                swap_marker=swap_marker,
            )
            self._records[round_index] = record
            self._latest_record = record
            self._rounds_done = round_index + 1
            self._cond.notify_all()
        return True

    def _should_initiate(self, round_index: int, designated: int) -> bool:
        """Whether this rank initiates when its application thread arrives."""
        if self.mode is PartialMode.SOLO:
            return True
        if self.mode is PartialMode.MAJORITY:
            return self.rank == designated
        # Quorum mode: the designated coordinator initiates once enough
        # arrival notifications (including its own) have been received;
        # handled inside _wait_for_activation.
        return False

    def _wait_for_activation(
        self, round_index: int, designated: int
    ) -> Optional[Tuple[int, int]]:
        """Block until the round is activated.

        Returns ``(initiator, incoming_distance_class)`` where the distance
        class is ``-1`` for internal activation, or ``None`` when the
        collective is being shut down.
        """
        act_tag = self._activation_tag(round_index)
        arrivals = 0
        arrival_sent = False
        while True:
            # 1) shutdown?
            with self._lock:
                if self._stop:
                    return None
                internally_arrived = round_index in self._internal_rounds

            # 2) quorum-mode arrival notifications.
            if self.mode is PartialMode.QUORUM and internally_arrived and not arrival_sent:
                arrival_sent = True
                if self.rank == designated:
                    arrivals += 1
                else:
                    self.comm_act.send(
                        ("arrival", round_index, self.rank),
                        designated,
                        tag=self._arrival_tag(round_index),
                    )
            if self.mode is PartialMode.QUORUM and self.rank == designated:
                while True:
                    msg = self.comm_act.poll(tag=self._arrival_tag(round_index))
                    if msg is None:
                        break
                    arrivals += 1
                if arrivals >= int(self.quorum or 1):
                    return (self.rank, -1)

            # 3) internal activation (solo: always; majority: designated only).
            if internally_arrived and self._should_initiate(round_index, designated):
                return (self.rank, -1)

            # 4) external activation message for this round.
            msg = self.comm_act.poll(tag=act_tag)
            if msg is not None:
                kind, _round, distance, initiator = msg
                if kind == "activate":
                    return (int(initiator), int(distance))

            # 5) drain stale activation duplicates from earlier rounds so
            #    they do not accumulate in the mailbox forever.
            self._drain_stale_activations(round_index)

            time.sleep(self.poll_interval)

    def _drain_stale_activations(self, current_round: int) -> None:
        for old in range(max(0, current_round - 4), current_round):
            while self.comm_act.poll(tag=self._activation_tag(old)) is not None:
                pass

    def _forward_activation(
        self, round_index: int, initiator: int, incoming_distance: int
    ) -> None:
        """Send activation messages along the binomial broadcast tree.

        A rank activated via distance class ``k`` forwards to the ranks at
        offsets ``2^j`` beyond it for ``j > k``; the initiator (``k == -1``)
        forwards to every distance class.  Offsets are measured from the
        initiator and **never wrap**: a rank only forwards while
        ``offset + 2^j < P``, so each offset in ``[1, P)`` has exactly one
        parent (strip the top set bit) and activation reaches every rank
        under *any* message delivery order.  The earlier ``mod P`` variant
        aliased two tree positions onto one rank at non-power-of-two sizes;
        a rank whose first activation arrived via the aliased (higher)
        class then skipped its low-class forwards and could strand part of
        the world — found by the static schedule verifier's delivery-order
        exploration (``repro.analysis.schedule_verifier``).
        """
        act_tag = self._activation_tag(round_index)
        offset = (self.rank - initiator) % self.size
        for j in range(incoming_distance + 1, self._depth):
            target = offset + (1 << j)
            if target >= self.size:
                break
            dest = (initiator + target) % self.size
            self.comm_act.send(("activate", round_index, j, initiator), dest, tag=act_tag)


class SoloAllreduce(PartialAllreduce):
    """Wait-free partial allreduce: any process triggers the round."""

    def __init__(self, comm: Communicator, shape, **kwargs) -> None:
        kwargs.pop("mode", None)
        super().__init__(comm, shape, mode=PartialMode.SOLO, **kwargs)


class MajorityAllreduce(PartialAllreduce):
    """Partial allreduce whose initiator is randomly designated each round.

    Because every rank is equally likely to be designated, the expected
    number of processes arriving before the initiator is ``P/2``: on
    average at least half of the processes contribute fresh gradients
    (Section 4.2).
    """

    def __init__(self, comm: Communicator, shape, **kwargs) -> None:
        kwargs.pop("mode", None)
        super().__init__(comm, shape, mode=PartialMode.MAJORITY, **kwargs)


class QuorumAllreduce(PartialAllreduce):
    """Partial allreduce that waits for an explicit number of arrivals.

    This implements the solo--majority--full spectrum sketched in the
    paper's conclusions: ``quorum=1`` approximates solo, ``quorum=P/2``
    gives a hard (not just statistical) majority guarantee, ``quorum=P``
    degenerates to a synchronous allreduce.
    """

    def __init__(self, comm: Communicator, shape, quorum: int, **kwargs) -> None:
        kwargs.pop("mode", None)
        super().__init__(comm, shape, mode=PartialMode.QUORUM, quorum=quorum, **kwargs)


def make_partial_allreduce(
    comm: Communicator,
    shape,
    mode: PartialMode | str,
    **kwargs,
) -> PartialAllreduce:
    """Factory selecting the partial-allreduce flavour by name."""
    mode = PartialMode(mode)
    if mode is PartialMode.SOLO:
        return SoloAllreduce(comm, shape, **kwargs)
    if mode is PartialMode.MAJORITY:
        return MajorityAllreduce(comm, shape, **kwargs)
    quorum = kwargs.pop("quorum", None)
    if quorum is None:
        raise ValueError(f"mode {mode!r} requires a 'quorum' argument, got {kwargs!r}")
    return QuorumAllreduce(comm, shape, quorum=quorum, **kwargs)
