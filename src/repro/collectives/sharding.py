"""Sharded-optimizer collectives: ``reduce_scatter`` and ``allgather_flat``.

ZeRO stage-1 training replaces the gradient allreduce with a split
schedule: a *reduce-scatter* leaves each rank holding one fully reduced
1/P shard of the gradient, the optimizer updates only that shard's
parameters (and allocates state only for it), and an *allgather* of the
updated **parameters** restores the replicated model.  These two
primitives are the halves the classic allreduce algorithms are already
built from — this module extracts them as standalone collectives:

* **ring** — the reduce-scatter / allgather phases of
  :func:`repro.collectives.sync.allreduce_ring`, schedule-identical and
  therefore bit-identical to the full ring allreduce when composed.
  Rank ``r`` ends the reduce-scatter owning contiguous chunk
  ``(r + 1) % P`` — the chunk the ring's rotation lands on it.
* **halving / doubling** — the two phases of Rabenseifner's algorithm
  (:func:`~repro.collectives.sync.allreduce_rabenseifner`): recursive
  halving assigns each in-group rank the window the bisection walk ends
  on; non-power-of-two worlds fold the extra ranks in before the halving
  and fold the full vector back out after the doubling (the extras own
  *empty* windows in between).
* **hierarchical** — rides :class:`~repro.collectives.topology.HostTopology`:
  every host reduces onto its leader, the leaders reduce-scatter the
  vector in host-sized segments over the leader ring, and each leader
  scatters its host segment's sub-windows to its members; the allgather
  runs the mirror image (gather to leader, leader ring allgather,
  intra-host broadcast).  Only leaders touch inter-host links.
* **compressed wire** — the ring variants accept a reduce-closed codec
  (:mod:`repro.compression`) and run the decode-reduce-encode hop of
  :func:`~repro.collectives.sync.allreduce_compressed_ring`: encoded
  payloads on every wire hop, dense ``float64`` arithmetic at every
  combine.

Ownership is a *static* function of ``(length, world, algorithm,
topology)`` — :func:`shard_bounds` — so optimizer state keyed by the
owned window is stable across steps and ranks can size buffers without
communicating.

Tags are minted from the dedicated ``sharding`` region of
:mod:`repro.comm.tags` (layout ``(epoch, phase, round, chunk)``, its own
per-communicator epoch counter), so sharded collectives can never steal
messages from the ``sync`` collectives they run next to — the static
schedule verifier (:mod:`repro.analysis.schedule_verifier`) sweeps these
schedules alongside the rest.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm import reduce_kernels, tags
from repro.comm.communicator import Communicator
from repro.comm.reduce_ops import ReduceOp, get_op
from repro.collectives.sync import (
    _as_float_array,
    _fold_in,
    _fold_out,
    _recv_segments,
    _segment_bounds,
    _send_segments,
    _validate_chunks,
    resolve_host_topology,
)
from repro.collectives.topology import (
    HostTopology,
    intra_bcast_edges,
    intra_reduce_edges,
    largest_power_of_two_leq,
)
from repro.obs import recorder as _obs

# Phase identifiers within the ``sharding`` tag region (< SHARDING_MAX_PHASES).
_PHASE_RING_RS = 0
_PHASE_RING_AG = 1
_PHASE_HALVING_RS = 2
_PHASE_DOUBLING_AG = 3
_PHASE_FOLD_IN = 4
_PHASE_FOLD_OUT = 5
_PHASE_HIER_REDUCE = 6
_PHASE_HIER_SCATTER = 7
_PHASE_HIER_GATHER = 8
_PHASE_HIER_BCAST = 9
# The hierarchical leader tier reuses the ring helpers through a
# rank-remapped view; unlike sync's ``_LeaderView`` no tag translation is
# needed — the helpers take the phase explicitly, so the leader ring just
# runs in its own phase namespace.
_PHASE_LEADER_RS = 10
_PHASE_LEADER_AG = 11

_tag = tags.sharding_tag

#: Reduce-scatter algorithms and the allgather each one pairs with (the
#: allgather must be fed windows from the *same* ownership map).
ALLGATHER_FOR_REDUCE_SCATTER: Dict[str, str] = {
    "ring": "ring",
    "halving": "doubling",
    "hierarchical": "hierarchical",
}
REDUCE_SCATTER_ALGORITHMS: Tuple[str, ...] = tuple(ALLGATHER_FOR_REDUCE_SCATTER)
ALLGATHER_FLAT_ALGORITHMS: Tuple[str, ...] = tuple(
    ALLGATHER_FOR_REDUCE_SCATTER.values()
)


def _next_epoch(comm: Communicator) -> int:
    """Per-communicator sequence number for sharded collectives.

    Separate from the ``sync`` epoch counter: the two regions are
    disjoint, so interleaving sharded and synchronous collectives on one
    communicator cannot alias tags either way.
    """
    counter = getattr(comm, "_sharding_collective_epoch", None)
    if counter is None:
        counter = itertools.count()
        setattr(comm, "_sharding_collective_epoch", counter)
    return next(counter)


def _resolve_rs_algorithm(algorithm: str) -> str:
    if algorithm not in ALLGATHER_FOR_REDUCE_SCATTER:
        raise ValueError(
            f"unknown reduce_scatter algorithm {algorithm!r}; "
            f"available: {sorted(ALLGATHER_FOR_REDUCE_SCATTER)}"
        )
    return algorithm


def _resolve_ag_algorithm(algorithm: str) -> str:
    if algorithm not in ALLGATHER_FLAT_ALGORITHMS:
        raise ValueError(
            f"unknown allgather_flat algorithm {algorithm!r}; "
            f"available: {sorted(ALLGATHER_FLAT_ALGORITHMS)}"
        )
    return algorithm


# --------------------------------------------------------------------------
# static ownership map
# --------------------------------------------------------------------------
def _halving_window(rank: int, pof2: int, length: int) -> Tuple[int, int]:
    """The window the recursive-halving bisection walk leaves ``rank`` with."""
    lo, hi = 0, length
    dist = pof2 // 2
    while dist >= 1:
        partner = rank ^ dist
        mid = lo + (hi - lo) // 2
        if rank < partner:
            hi = mid
        else:
            lo = mid
        dist //= 2
    return lo, hi


def shard_bounds(
    length: int,
    size: int,
    algorithm: str = "ring",
    topology: Optional[HostTopology] = None,
) -> List[Tuple[int, int]]:
    """Per-rank owned ``(lo, hi)`` windows after a reduce-scatter.

    The windows are disjoint and cover ``[0, length)`` for ``ring`` and
    ``hierarchical``; under ``halving`` (and its ``doubling`` allgather
    pairing, which accepts the same name) the non-power-of-two "extra"
    ranks own empty windows — their contribution folds into the group
    and the full vector folds back out in the allgather.

    This is a pure function of the arguments, so every rank — and the
    optimizer state keyed by these windows — computes the same map
    without communicating.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if size == 1:
        return [(0, length)]
    if algorithm == "ring":
        bounds = _segment_bounds(length, size)
        return [bounds[(rank + 1) % size] for rank in range(size)]
    if algorithm in ("halving", "doubling"):
        pof2 = largest_power_of_two_leq(size)
        windows = [_halving_window(rank, pof2, length) for rank in range(pof2)]
        windows.extend((0, 0) for _ in range(size - pof2))
        return windows
    if algorithm == "hierarchical":
        if topology is None:
            topology = HostTopology.single_host(size)
        if topology.world_size != size:
            raise ValueError(
                f"host topology covers {topology.world_size} rank(s), "
                f"expected {size}"
            )
        host_bounds = _segment_bounds(length, topology.num_hosts)
        windows = []
        for rank in range(size):
            host = topology.host(rank)
            hlo, hhi = host_bounds[(host + 1) % topology.num_hosts]
            locals_ = topology.ranks_on_host(host)
            slo, shi = _segment_bounds(hhi - hlo, len(locals_))[
                topology.local_index(rank)
            ]
            windows.append((hlo + slo, hlo + shi))
        return windows
    raise ValueError(
        f"unknown sharding algorithm {algorithm!r}; "
        f"available: {sorted(set(ALLGATHER_FOR_REDUCE_SCATTER) | set(ALLGATHER_FLAT_ALGORITHMS))}"
    )


# --------------------------------------------------------------------------
# ring helpers (shared by the flat and leader tiers — phase is a parameter)
# --------------------------------------------------------------------------
def _ring_reduce_scatter(
    comm,
    flat: np.ndarray,
    bounds: List[Tuple[int, int]],
    epoch: int,
    phase: int,
    n_chunks: int,
    reduce_op: ReduceOp,
    timeout: Optional[float],
) -> None:
    """Reduce-scatter phase of the ring: rank r ends owning chunk (r+1)%P."""
    rank, size = comm.rank, comm.size
    succ = (rank + 1) % size
    pred = (rank - 1) % size
    for step in range(size - 1):
        send_chunk = (rank - step) % size
        recv_chunk = (rank - step - 1) % size
        _send_segments(
            comm, flat, *bounds[send_chunk], succ, epoch, phase, step, n_chunks,
            mint=_tag,
        )
        _recv_segments(
            comm, flat, *bounds[recv_chunk], pred, epoch, phase, step, n_chunks,
            timeout, reduce_op=reduce_op, mint=_tag,
        )


def _ring_allgather(
    comm,
    flat: np.ndarray,
    bounds: List[Tuple[int, int]],
    epoch: int,
    phase: int,
    n_chunks: int,
    timeout: Optional[float],
) -> None:
    """Allgather phase of the ring: circulates each rank's owned chunk."""
    rank, size = comm.rank, comm.size
    succ = (rank + 1) % size
    pred = (rank - 1) % size
    for step in range(size - 1):
        send_chunk = (rank - step + 1) % size
        recv_chunk = (rank - step) % size
        _send_segments(
            comm, flat, *bounds[send_chunk], succ, epoch, phase, step, n_chunks,
            mint=_tag,
        )
        _recv_segments(
            comm, flat, *bounds[recv_chunk], pred, epoch, phase, step, n_chunks,
            timeout, mint=_tag,
        )


# --------------------------------------------------------------------------
# compressed ring helpers (decode-reduce-encode wire hops)
# --------------------------------------------------------------------------
def _require_wire_codec(codec) -> None:
    if codec.wire_dtype is None:
        raise ValueError(
            f"codec {codec.name!r} has no fixed-width wire dtype; the "
            f"compressed sharded ring needs one encoded element per dense "
            f"element"
        )


def _encode_chunk(codec, flat: np.ndarray, lo: int, hi: int) -> np.ndarray:
    if hi <= lo:
        # Worlds larger than the bucket leave some ranks with empty ring
        # chunks; an empty fixed-width wire payload is well-defined.
        return np.empty(0, dtype=codec.wire_dtype)
    return np.asarray(codec.encode(flat[lo:hi]).payload)


def _decode_chunk(codec, wire: np.ndarray, num_elements: int) -> np.ndarray:
    from repro.compression.base import EncodedGradient

    template = EncodedGradient(codec.name, num_elements, wire, wire.nbytes)
    return codec.decode(template)


def _recv_wire(
    comm, codec, length: int, pred: int, epoch: int, phase: int, step: int,
    n_chunks: int, timeout: Optional[float],
) -> np.ndarray:
    if n_chunks == 1:
        return np.asarray(
            comm.recv(source=pred, tag=_tag(epoch, phase, step, 0), timeout=timeout)
        )
    buf = np.empty(length, dtype=codec.wire_dtype)
    _recv_segments(
        comm, buf, 0, length, pred, epoch, phase, step, n_chunks, timeout,
        mint=_tag,
    )
    return buf


def _compressed_ring_reduce_scatter(
    comm,
    flat: np.ndarray,
    bounds: List[Tuple[int, int]],
    epoch: int,
    phase: int,
    n_chunks: int,
    codec,
    timeout: Optional[float],
) -> None:
    """Ring reduce-scatter with encoded hops and dense float64 combines."""
    rank, size = comm.rank, comm.size
    succ = (rank + 1) % size
    pred = (rank - 1) % size
    cast_decodable = bool(getattr(codec, "wire_is_values", False))
    for step in range(size - 1):
        send_chunk = (rank - step) % size
        recv_chunk = (rank - step - 1) % size
        wire_out = _encode_chunk(codec, flat, *bounds[send_chunk])
        _send_segments(
            comm, wire_out, 0, wire_out.size, succ, epoch, phase, step, n_chunks,
            mint=_tag,
        )
        lo, hi = bounds[recv_chunk]
        wire_in = _recv_wire(
            comm, codec, hi - lo, pred, epoch, phase, step, n_chunks, timeout
        )
        if hi > lo and not (
            cast_decodable and reduce_kernels.accumulate_wire(flat[lo:hi], wire_in)
        ):
            flat[lo:hi] += _decode_chunk(codec, wire_in, hi - lo)


def _compressed_ring_allgather(
    comm,
    flat: np.ndarray,
    bounds: List[Tuple[int, int]],
    epoch: int,
    phase: int,
    n_chunks: int,
    codec,
    timeout: Optional[float],
) -> None:
    """Ring allgather of encoded chunks; every rank decodes identical bytes.

    The own chunk is encoded once and circulated unchanged; at the end it
    is re-decoded from its encoded form too, so all replicas hold
    bit-identical values (the standalone analogue of the
    :func:`~repro.collectives.sync.allreduce_compressed_ring` allgather).
    """
    rank, size = comm.rank, comm.size
    succ = (rank + 1) % size
    pred = (rank - 1) % size
    cast_decodable = bool(getattr(codec, "wire_is_values", False))
    own = (rank + 1) % size
    encoded_chunks: Dict[int, np.ndarray] = {own: _encode_chunk(codec, flat, *bounds[own])}
    for step in range(size - 1):
        send_chunk = (rank - step + 1) % size
        recv_chunk = (rank - step) % size
        wire_out = encoded_chunks[send_chunk]
        _send_segments(
            comm, wire_out, 0, wire_out.size, succ, epoch, phase, step, n_chunks,
            mint=_tag,
        )
        lo, hi = bounds[recv_chunk]
        encoded_chunks[recv_chunk] = _recv_wire(
            comm, codec, hi - lo, pred, epoch, phase, step, n_chunks, timeout
        )
    for index, wire in encoded_chunks.items():
        lo, hi = bounds[index]
        if hi > lo:
            wire_arr = np.asarray(wire)
            if cast_decodable and np.issubdtype(wire_arr.dtype, np.floating):
                np.copyto(flat[lo:hi], wire_arr)
            else:
                flat[lo:hi] = _decode_chunk(codec, wire_arr, hi - lo)


# --------------------------------------------------------------------------
# hierarchical tier helpers
# --------------------------------------------------------------------------
class _LeaderRanks:
    """Rank-remapped view of ``comm`` restricted to the host leaders.

    Unlike :class:`repro.collectives.sync._LeaderView` there is no tag
    translation: the sharded ring helpers take their phase explicitly, so
    the leader tier simply runs in the ``_PHASE_LEADER_*`` namespace of
    the enclosing collective's epoch.
    """

    def __init__(self, comm: Communicator, leaders: Tuple[int, ...]) -> None:
        self._comm = comm
        self._leaders = tuple(leaders)
        self.rank = self._leaders.index(comm.rank)
        self.size = len(self._leaders)

    def send(self, data, dest: int, tag: int = 0) -> None:
        self._comm.send(data, self._leaders[dest], tag=tag)

    def recv(self, source: int, tag: int, timeout: Optional[float] = None):
        return self._comm.recv(
            source=self._leaders[source], tag=tag, timeout=timeout
        )


def _intra_reduce(
    comm: Communicator,
    flat: np.ndarray,
    topology: HostTopology,
    epoch: int,
    n_chunks: int,
    reduce_op: ReduceOp,
    timeout: Optional[float],
) -> None:
    """Reduce every host's contributions onto its leader (binomial tree)."""
    rank = comm.rank
    for round_index, (src, dst) in enumerate(
        intra_reduce_edges(topology, topology.host(rank))
    ):
        if rank == src:
            _send_segments(
                comm, flat, 0, flat.size, dst, epoch, _PHASE_HIER_REDUCE,
                round_index, n_chunks, mint=_tag,
            )
        elif rank == dst:
            _recv_segments(
                comm, flat, 0, flat.size, src, epoch, _PHASE_HIER_REDUCE,
                round_index, n_chunks, timeout, reduce_op=reduce_op, mint=_tag,
            )


def _intra_bcast(
    comm: Communicator,
    flat: np.ndarray,
    topology: HostTopology,
    epoch: int,
    n_chunks: int,
    timeout: Optional[float],
) -> None:
    """Broadcast the leader's buffer back across its host."""
    rank = comm.rank
    for round_index, (src, dst) in enumerate(
        intra_bcast_edges(topology, topology.host(rank))
    ):
        if rank == src:
            _send_segments(
                comm, flat, 0, flat.size, dst, epoch, _PHASE_HIER_BCAST,
                round_index, n_chunks, mint=_tag,
            )
        elif rank == dst:
            _recv_segments(
                comm, flat, 0, flat.size, src, epoch, _PHASE_HIER_BCAST,
                round_index, n_chunks, timeout, mint=_tag,
            )


def _hier_sub_bounds(
    topology: HostTopology, host: int, host_bounds: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Member sub-windows of ``host``'s owned segment, in local-index order."""
    hlo, hhi = host_bounds[(host + 1) % topology.num_hosts]
    locals_ = topology.ranks_on_host(host)
    return [
        (hlo + slo, hlo + shi)
        for slo, shi in _segment_bounds(hhi - hlo, len(locals_))
    ]


def _hierarchical_reduce_scatter(
    comm: Communicator,
    flat: np.ndarray,
    topology: HostTopology,
    epoch: int,
    n_chunks: int,
    reduce_op: ReduceOp,
    timeout: Optional[float],
) -> None:
    """Intra-host reduce → leader ring reduce-scatter → sub-window scatter."""
    rank = comm.rank
    host = topology.host(rank)
    host_bounds = _segment_bounds(flat.size, topology.num_hosts)
    with _obs.span("shard-hier-intra-reduce", "collective", n_chunks=n_chunks):
        _intra_reduce(comm, flat, topology, epoch, n_chunks, reduce_op, timeout)
    sub_bounds = _hier_sub_bounds(topology, host, host_bounds)
    if topology.is_leader(rank):
        with _obs.span("shard-hier-leader-rs", "collective",
                       leaders=topology.num_hosts, n_chunks=n_chunks):
            view = _LeaderRanks(comm, topology.leaders)
            _ring_reduce_scatter(
                view, flat, host_bounds, epoch, _PHASE_LEADER_RS, n_chunks,
                reduce_op, timeout,
            )
        for j, member in enumerate(topology.ranks_on_host(host)):
            if member == rank:
                continue
            _send_segments(
                comm, flat, *sub_bounds[j], member, epoch, _PHASE_HIER_SCATTER,
                j, n_chunks, mint=_tag,
            )
    else:
        j = topology.local_index(rank)
        _recv_segments(
            comm, flat, *sub_bounds[j], topology.leader_of(host), epoch,
            _PHASE_HIER_SCATTER, j, n_chunks, timeout, mint=_tag,
        )


def _hierarchical_allgather(
    comm: Communicator,
    flat: np.ndarray,
    topology: HostTopology,
    epoch: int,
    n_chunks: int,
    timeout: Optional[float],
) -> None:
    """Sub-window gather to leader → leader ring allgather → intra bcast."""
    rank = comm.rank
    host = topology.host(rank)
    host_bounds = _segment_bounds(flat.size, topology.num_hosts)
    sub_bounds = _hier_sub_bounds(topology, host, host_bounds)
    if topology.is_leader(rank):
        for j, member in enumerate(topology.ranks_on_host(host)):
            if member == rank:
                continue
            _recv_segments(
                comm, flat, *sub_bounds[j], member, epoch, _PHASE_HIER_GATHER,
                j, n_chunks, timeout, mint=_tag,
            )
        with _obs.span("shard-hier-leader-ag", "collective",
                       leaders=topology.num_hosts, n_chunks=n_chunks):
            view = _LeaderRanks(comm, topology.leaders)
            _ring_allgather(
                view, flat, host_bounds, epoch, _PHASE_LEADER_AG, n_chunks,
                timeout,
            )
    else:
        j = topology.local_index(rank)
        _send_segments(
            comm, flat, *sub_bounds[j], topology.leader_of(host), epoch,
            _PHASE_HIER_GATHER, j, n_chunks, mint=_tag,
        )
    with _obs.span("shard-hier-intra-bcast", "collective", n_chunks=n_chunks):
        _intra_bcast(comm, flat, topology, epoch, n_chunks, timeout)


# --------------------------------------------------------------------------
# public primitives
# --------------------------------------------------------------------------
def reduce_scatter(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    algorithm: str = "ring",
    average: bool = False,
    timeout: Optional[float] = None,
    n_chunks: int = 1,
    copy: bool = True,
    codec=None,
    topology: Optional[HostTopology] = None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Reduce the vector across ranks, scattering ownership of the result.

    Returns ``(buffer, (lo, hi))``: ``buffer`` is this rank's flat
    working array and ``buffer[lo:hi]`` — the window
    :func:`shard_bounds` assigns this rank — holds the fully reduced
    (and, with ``average``, world-size-averaged) values.  Elements
    outside the owned window are partial sums and must not be read; the
    paired :func:`allgather_flat` (same algorithm family, see
    :data:`ALLGATHER_FOR_REDUCE_SCATTER`) refills them.

    The ring schedule is step-identical to the reduce-scatter phase of
    :func:`~repro.collectives.sync.allreduce_ring`, so a reduce-scatter
    → owned-window update → parameter allgather pipeline is bitwise
    equal to updating after the full ring allreduce.

    ``codec`` (reduce-closed, fixed-width wire dtype) switches the ring
    hops to encoded payloads with dense combines; only the ring
    algorithm supports it.  ``op`` must stay ``"sum"`` under a codec or
    with ``average``.
    """
    algorithm = _resolve_rs_algorithm(algorithm)
    reduce_op = get_op(op)
    n_chunks = _validate_chunks(n_chunks)
    if codec is not None:
        if algorithm != "ring":
            raise ValueError(
                f"compressed reduce_scatter supports the ring algorithm only, "
                f"got {algorithm!r}"
            )
        _require_wire_codec(codec)
        arr = np.asarray(data, dtype=np.float64)
        if (copy and arr is data) or not arr.flags.writeable:
            arr = np.array(arr, copy=True)
    else:
        arr = _as_float_array(data, copy=copy)
    flat = arr.reshape(-1)
    rank, size = comm.rank, comm.size
    if size == 1:
        return flat, (0, flat.size)
    epoch = _next_epoch(comm)
    lo, hi = shard_bounds(
        flat.size, size, algorithm,
        topology=resolve_host_topology(comm, topology)
        if algorithm == "hierarchical" else None,
    )[rank]
    with _obs.span(
        f"reduce_scatter[{algorithm}]", "collective",
        nbytes=flat.nbytes, n_chunks=n_chunks,
    ):
        if algorithm == "ring":
            bounds = _segment_bounds(flat.size, size)
            if codec is not None:
                _compressed_ring_reduce_scatter(
                    comm, flat, bounds, epoch, _PHASE_RING_RS, n_chunks, codec,
                    timeout,
                )
            else:
                _ring_reduce_scatter(
                    comm, flat, bounds, epoch, _PHASE_RING_RS, n_chunks,
                    reduce_op, timeout,
                )
        elif algorithm == "halving":
            pof2 = largest_power_of_two_leq(size)
            in_group = _fold_in(
                comm, flat, epoch, n_chunks, reduce_op, timeout,
                phase=_PHASE_FOLD_IN, mint=_tag,
            )
            if in_group:
                win_lo, win_hi = 0, flat.size
                dist = pof2 // 2
                round_index = 0
                while dist >= 1:
                    partner = rank ^ dist
                    mid = win_lo + (win_hi - win_lo) // 2
                    if rank < partner:
                        keep_lo, keep_hi = win_lo, mid
                        send_lo, send_hi = mid, win_hi
                    else:
                        keep_lo, keep_hi = mid, win_hi
                        send_lo, send_hi = win_lo, mid
                    _send_segments(
                        comm, flat, send_lo, send_hi, partner, epoch,
                        _PHASE_HALVING_RS, round_index, n_chunks, mint=_tag,
                    )
                    _recv_segments(
                        comm, flat, keep_lo, keep_hi, partner, epoch,
                        _PHASE_HALVING_RS, round_index, n_chunks, timeout,
                        reduce_op=reduce_op, mint=_tag,
                    )
                    win_lo, win_hi = keep_lo, keep_hi
                    dist //= 2
                    round_index += 1
        else:  # hierarchical
            topology = resolve_host_topology(comm, topology)
            _hierarchical_reduce_scatter(
                comm, flat, topology, epoch, n_chunks, reduce_op, timeout
            )
    if average and hi > lo:
        flat[lo:hi] /= size
    return flat, (lo, hi)


def allgather_flat(
    comm: Communicator,
    flat,
    algorithm: str = "ring",
    timeout: Optional[float] = None,
    n_chunks: int = 1,
    codec=None,
    topology: Optional[HostTopology] = None,
) -> np.ndarray:
    """Fill every rank's full flat vector from the per-rank owned windows.

    The in-place dual of :func:`reduce_scatter`: each rank enters with
    its :func:`shard_bounds` window holding final values (e.g. freshly
    updated parameters) and returns with the whole vector replicated.
    ``algorithm`` must pair with the reduce-scatter that produced the
    windows (:data:`ALLGATHER_FOR_REDUCE_SCATTER`): ``ring`` ↔ ``ring``,
    ``halving`` ↔ ``doubling`` (``"halving"`` is accepted as an alias),
    ``hierarchical`` ↔ ``hierarchical``.

    ``codec`` (ring only) circulates encoded chunks; all ranks decode the
    same bytes — including the owner, whose window is re-decoded from its
    own encoding — so the replicas stay bit-identical.
    """
    if algorithm == "halving":
        algorithm = "doubling"
    algorithm = _resolve_ag_algorithm(algorithm)
    n_chunks = _validate_chunks(n_chunks)
    arr = np.asarray(flat)
    if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.floating):
        raise ValueError(
            f"allgather_flat operates in place on a 1-D float vector, got "
            f"shape {arr.shape} dtype {arr.dtype}"
        )
    if not arr.flags.writeable:
        raise ValueError(
            f"allgather_flat fills the vector in place and needs it writable, "
            f"got a read-only array of shape {arr.shape}"
        )
    rank, size = comm.rank, comm.size
    if size == 1:
        return arr
    if codec is not None:
        if algorithm != "ring":
            raise ValueError(
                f"compressed allgather_flat supports the ring algorithm only, "
                f"got {algorithm!r}"
            )
        _require_wire_codec(codec)
    epoch = _next_epoch(comm)
    with _obs.span(
        f"allgather_flat[{algorithm}]", "collective",
        nbytes=arr.nbytes, n_chunks=n_chunks,
    ):
        if algorithm == "ring":
            bounds = _segment_bounds(arr.size, size)
            if codec is not None:
                _compressed_ring_allgather(
                    comm, arr, bounds, epoch, _PHASE_RING_AG, n_chunks, codec,
                    timeout,
                )
            else:
                _ring_allgather(
                    comm, arr, bounds, epoch, _PHASE_RING_AG, n_chunks, timeout
                )
        elif algorithm == "doubling":
            pof2 = largest_power_of_two_leq(size)
            in_group = rank < pof2
            if in_group:
                seg_lo, seg_hi = _halving_window(rank, pof2, arr.size)
                dist = 1
                round_index = 0
                while dist < pof2:
                    partner = rank ^ dist
                    tag = _tag(epoch, _PHASE_DOUBLING_AG, round_index)
                    comm.send(
                        (seg_lo, seg_hi, arr[seg_lo:seg_hi].copy()), partner,
                        tag=tag,
                    )
                    other_lo, other_hi, other_data = comm.recv(
                        source=partner, tag=tag, timeout=timeout
                    )
                    if other_hi > other_lo:
                        arr[other_lo:other_hi] = other_data
                    seg_lo = min(seg_lo, other_lo)
                    seg_hi = max(seg_hi, other_hi)
                    dist *= 2
                    round_index += 1
            _fold_out(
                comm, arr, epoch, n_chunks, in_group, timeout,
                phase=_PHASE_FOLD_OUT, mint=_tag,
            )
        else:  # hierarchical
            topology = resolve_host_topology(comm, topology)
            _hierarchical_allgather(comm, arr, topology, epoch, n_chunks, timeout)
    return arr
