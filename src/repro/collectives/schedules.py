"""Schedule builders for collective operations.

These functions build the per-rank :class:`~repro.schedule.Schedule`
objects described in Section 4 of the paper:

* the **activation broadcast** used by solo/majority collectives — a
  dissemination pattern equivalent to the union of ``P`` binomial trees,
  one rooted at every rank, so that *any* rank can be the initiator using
  the same schedule;
* a **binomial broadcast** rooted at a fixed rank;
* a **recursive-doubling allreduce**;
* a complete **solo allreduce** (activation + allreduce), the schedule of
  Fig. 6.

The builders return plain schedules; executing them is the job of
:class:`repro.schedule.ScheduleExecutor` (synchronous collectives) or of
the progress thread in :mod:`repro.collectives.partial` (asynchronous
partial collectives).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.comm import tags
from repro.comm.reduce_ops import ReduceOp, get_op
from repro.collectives.topology import (
    binomial_tree_children,
    binomial_tree_parent,
    is_power_of_two,
    tree_depth,
)
from repro.schedule.graph import Schedule
from repro.schedule.ops import DepMode, TriggerOp

#: Buffer holding the local contribution of this rank.
SEND_BUFFER = "sendbuff"
#: Buffer holding the collective's result (overwritten by each execution).
RECV_BUFFER = "recvbuff"
#: Intermediate accumulator used by the reduction.
ACC_BUFFER = "acc"
#: Name of the internal-activation trigger operation.
INTERNAL_ACTIVATION = "N0_internal_activation"
#: Name of the NOP signalling that the rank is activated.
ACTIVATED = "N1_activated"
#: Name of the NOP signalling that the collective result is available.
COMPLETED = "N2_completed"


@dataclass(frozen=True)
class ActivationNames:
    """Names of the operations created by :func:`build_activation_schedule`."""

    internal: str
    activated: str
    receives: List[str]
    sends: List[str]


def _dissemination_depth(size: int) -> int:
    """Number of distance classes (2^0, 2^1, ...) needed to cover ``size`` ranks."""
    return max(1, int(math.ceil(math.log2(size)))) if size > 1 else 0


def build_activation_schedule(
    schedule: Schedule,
    rank: int,
    size: int,
    tag: int,
) -> ActivationNames:
    """Add the activation phase (Fig. 6, left) to ``schedule``.

    The pattern is a dissemination broadcast on relative distances
    ``+2^k mod P``: rank ``i`` may receive the activation from
    ``(i - 2^k) mod P`` (operation ``R_k``) and forwards it to
    ``(i + 2^j) mod P`` for every ``j > k`` (operations ``S_j``), or to all
    distances when it is the initiator.  This is the union of ``P``
    binomial trees, one rooted at every rank, so the same schedule works
    whoever initiates; it also covers non-power-of-two worlds.

    The caller fires the returned ``internal`` trigger op to initiate, or
    lets an incoming activation message drive the schedule instead.
    """
    depth = _dissemination_depth(size)
    internal = schedule.add(TriggerOp(INTERNAL_ACTIVATION))
    recv_names: List[str] = []
    send_names: List[str] = []

    for k in range(depth):
        source = (rank - (1 << k)) % size
        recv_names.append(
            schedule.recv(
                f"R{k}_activation_from_{source}",
                source=source,
                tag=tag,
                buffer=f"_activation_msg_{k}",
            ).name
        )

    for k in range(depth):
        dest = (rank + (1 << k)) % size
        # Fires on internal activation, or when the activation arrived via
        # a strictly smaller distance class (OR dependency).
        triggers = [internal.name] + recv_names[:k]
        send_names.append(
            schedule.send(
                f"S{k}_activation_to_{dest}",
                dest=dest,
                tag=tag,
                payload_fn=lambda buffers: ("activate", tag),
                after=triggers,
                dep_mode=DepMode.OR,
            ).name
        )

    activated = schedule.nop(
        ACTIVATED,
        after=[internal.name] + recv_names,
        dep_mode=DepMode.OR,
    )
    return ActivationNames(
        internal=internal.name,
        activated=activated.name,
        receives=recv_names,
        sends=send_names,
    )


def build_binomial_broadcast_schedule(
    rank: int,
    size: int,
    root: int,
    tag: int,
    buffer: str = "bcast",
    name: Optional[str] = None,
) -> Schedule:
    """Build a binomial-tree broadcast schedule rooted at ``root``.

    The root's send operations depend on a trigger op named
    :data:`INTERNAL_ACTIVATION`; non-root ranks forward after their
    receive completes.  The final NOP :data:`COMPLETED` fires once the
    rank holds the broadcast value in ``buffer``.
    """
    sched = Schedule(name or f"binomial-bcast[rank={rank},root={root}]")
    children = binomial_tree_children(rank, size, root)
    if rank == root:
        start = sched.add(TriggerOp(INTERNAL_ACTIVATION))
        entry = start.name
    else:
        parent = binomial_tree_parent(rank, size, root)
        entry = sched.recv(
            f"recv_from_{parent}", source=parent, tag=tag, buffer=buffer
        ).name
    for child in children:
        sched.send(f"send_to_{child}", dest=child, tag=tag, buffer=buffer, after=[entry])
    sched.nop(COMPLETED, after=[entry])
    return sched


def build_recursive_doubling_allreduce_schedule(
    schedule: Schedule,
    rank: int,
    size: int,
    tag_base: int,
    op: ReduceOp | str = "sum",
    after: Optional[str] = None,
    send_buffer: str = SEND_BUFFER,
    recv_buffer: str = RECV_BUFFER,
) -> str:
    """Add a recursive-doubling allreduce to ``schedule``.

    The reduction starts from the *current* contents of ``send_buffer``
    when the op chain fires (this is what lets partial collectives pick up
    stale or null contributions).  The final combined value is written to
    ``recv_buffer`` and the name of the completion NOP is returned.

    Power-of-two world sizes only — the partial collectives in the paper
    (and their evaluation at 8/32/64 processes) use power-of-two worlds;
    other sizes should use :func:`repro.collectives.sync.allreduce`.
    """
    if not is_power_of_two(size):
        raise ValueError(
            f"schedule-based recursive doubling requires a power-of-two world, got {size}"
        )
    reduce_op = get_op(op)

    def _init_acc(buffers: Dict[str, object]) -> None:
        value = buffers.get(send_buffer)
        if value is None:
            raise KeyError(f"allreduce schedule: buffer {send_buffer!r} is unset")
        buffers[ACC_BUFFER] = np.array(value, dtype=np.float64, copy=True)

    init = schedule.compute(
        "AR_init_acc", _init_acc, after=[after] if after else []
    )
    prev = init.name
    num_rounds = int(math.log2(size))
    for k in range(num_rounds):
        partner = rank ^ (1 << k)
        tag = tag_base + 1 + k
        send = schedule.send(
            f"AR_S{k}_to_{partner}",
            dest=partner,
            tag=tag,
            payload_fn=lambda buffers: np.array(buffers[ACC_BUFFER], copy=True),
            after=[prev],
        )
        recv = schedule.recv(
            f"AR_R{k}_from_{partner}",
            source=partner,
            tag=tag,
            buffer=ACC_BUFFER,
            combine=lambda acc, incoming, _op=reduce_op: _op(acc, incoming),
            after=[send.name],
        )
        prev = recv.name

    def _finalize(buffers: Dict[str, object]) -> None:
        buffers[recv_buffer] = np.asarray(buffers[ACC_BUFFER])

    done = schedule.compute("AR_finalize", _finalize, after=[prev])
    completed = schedule.nop(COMPLETED, after=[done.name])
    return completed.name


def build_solo_allreduce_schedule(
    rank: int,
    size: int,
    round_index: int,
    op: ReduceOp | str = "sum",
    activation_tag_base: int = tags.SOLO_ACTIVATION_TAG_BASE,
    reduction_tag_base: int = tags.SOLO_REDUCTION_TAG_BASE,
    tags_per_round: int = tags.SOLO_TAGS_PER_ROUND,
    name: Optional[str] = None,
) -> Schedule:
    """Build the complete solo-allreduce schedule of Fig. 6 for one rank.

    The schedule is composed of the activation phase and a
    recursive-doubling allreduce, with the allreduce chained after the
    "activated" NOP.  Tags are namespaced by ``round_index`` so that
    successive executions of the persistent schedule cannot interfere.

    Usage: set the ``sendbuff`` buffer, then either fire the internal
    activation trigger (initiator) or just execute the schedule and let an
    incoming activation message drive it.  When the :data:`COMPLETED` NOP
    fires, ``recvbuff`` holds the reduced value.
    """
    sched = Schedule(
        name or f"solo-allreduce[rank={rank},round={round_index}]", persistent=True
    )
    if activation_tag_base == tags.SOLO_ACTIVATION_TAG_BASE:
        # Minting through the region helper bounds round_index so a
        # long-lived persistent schedule can never creep into the
        # neighbouring reduction region.
        act_tag = tags.solo_activation_tag(round_index, tags_per_round)
    else:
        act_tag = activation_tag_base + round_index * tags_per_round
    if reduction_tag_base == tags.SOLO_REDUCTION_TAG_BASE:
        red_tag = tags.solo_reduction_tag_base(round_index, tags_per_round)
    else:
        red_tag = reduction_tag_base + round_index * tags_per_round
    names = build_activation_schedule(sched, rank, size, act_tag)
    build_recursive_doubling_allreduce_schedule(
        sched, rank, size, red_tag, op=op, after=names.activated
    )
    sched.validate()
    return sched
