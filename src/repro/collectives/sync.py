"""Synchronous collective operations over the point-to-point substrate.

These implement the classic allreduce algorithms referenced by the paper
(Section 7, *Collective communication*):

* **recursive doubling** — ``log2(P)`` rounds of pairwise exchange;
  latency-optimal for small messages, used by the paper's partial
  collectives as the reduction schedule.
* **ring allreduce** — reduce-scatter followed by allgather on a ring;
  bandwidth-optimal for large messages (Horovod's default).
* **Rabenseifner's algorithm** — recursive-halving reduce-scatter followed
  by recursive-doubling allgather.

Every function is SPMD: all ranks of the communicator's world must call it
with consistently shaped inputs.  Tags are namespaced by a per-communicator
epoch counter so consecutive collectives can never steal each other's
messages.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.comm.communicator import Communicator
from repro.comm.reduce_ops import ReduceOp, get_op
from repro.collectives.topology import (
    binomial_tree_children,
    binomial_tree_parent,
    is_power_of_two,
    largest_power_of_two_leq,
)

#: Base of the tag space used by synchronous collectives.
_SYNC_TAG_BASE = 2_000_000_000
#: Tag stride reserved per collective invocation.
_EPOCH_STRIDE = 8_192


def _next_epoch(comm: Communicator) -> int:
    """Per-communicator collective sequence number.

    All ranks call collectives in the same (SPMD) order, so incrementing a
    local counter on each rank keeps the tag spaces aligned globally.
    """
    counter = getattr(comm, "_sync_collective_epoch", None)
    if counter is None:
        counter = itertools.count()
        setattr(comm, "_sync_collective_epoch", counter)
    return next(counter)


def _tag(epoch: int, phase: int, round_index: int) -> int:
    return _SYNC_TAG_BASE + epoch * _EPOCH_STRIDE + phase * 512 + round_index


def _as_float_array(data) -> np.ndarray:
    arr = np.asarray(data, dtype=np.float64)
    return np.array(arr, copy=True)


# --------------------------------------------------------------------------
# broadcast / reduce / allgather
# --------------------------------------------------------------------------
def broadcast(comm: Communicator, data, root: int = 0, timeout: Optional[float] = None):
    """Binomial-tree broadcast of ``data`` from ``root`` to all ranks."""
    epoch = _next_epoch(comm)
    rank, size = comm.rank, comm.size
    tag = _tag(epoch, 0, 0)
    if size == 1:
        return data
    if rank != root:
        parent = binomial_tree_parent(rank, size, root)
        data = comm.recv(source=parent, tag=tag, timeout=timeout)
    for child in binomial_tree_children(rank, size, root):
        comm.send(data, child, tag=tag)
    return data


def reduce(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    root: int = 0,
    timeout: Optional[float] = None,
) -> Optional[np.ndarray]:
    """Binomial-tree reduction to ``root``; returns the result on root only."""
    epoch = _next_epoch(comm)
    reduce_op = get_op(op)
    rank, size = comm.rank, comm.size
    acc = _as_float_array(data)
    tag = _tag(epoch, 1, 0)
    if size == 1:
        return acc
    # Children in the *broadcast* tree are the senders in the reduction tree.
    for child in reversed(binomial_tree_children(rank, size, root)):
        contribution = comm.recv(source=child, tag=tag, timeout=timeout)
        acc = reduce_op(acc, contribution)
    if rank != root:
        parent = binomial_tree_parent(rank, size, root)
        comm.send(acc, parent, tag=tag)
        return None
    return acc


def allgather(comm: Communicator, data, timeout: Optional[float] = None) -> List:
    """Gather one value from every rank at every rank (ring algorithm)."""
    epoch = _next_epoch(comm)
    rank, size = comm.rank, comm.size
    items: List = [None] * size
    items[rank] = data
    if size == 1:
        return items
    succ = (rank + 1) % size
    pred = (rank - 1) % size
    for step in range(size - 1):
        tag = _tag(epoch, 2, step)
        send_idx = (rank - step) % size
        comm.send(items[send_idx], succ, tag=tag)
        recv_idx = (rank - step - 1) % size
        items[recv_idx] = comm.recv(source=pred, tag=tag, timeout=timeout)
    return items


# --------------------------------------------------------------------------
# allreduce algorithms
# --------------------------------------------------------------------------
def allreduce_recursive_doubling(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    timeout: Optional[float] = None,
) -> np.ndarray:
    """Recursive-doubling allreduce (hypercube exchange).

    Non-power-of-two sizes are handled with the standard fold: the first
    ``r = P - 2^k`` "extra" ranks fold their contribution into a partner,
    the remaining power-of-two group runs recursive doubling, and the
    result is sent back to the folded ranks.
    """
    epoch = _next_epoch(comm)
    reduce_op = get_op(op)
    rank, size = comm.rank, comm.size
    acc = _as_float_array(data)
    if size == 1:
        return acc

    pof2 = largest_power_of_two_leq(size)
    rem = size - pof2

    # --- fold-in: ranks [pof2, size) send to their partner in [0, rem)
    fold_tag = _tag(epoch, 3, 0)
    if rank >= pof2:
        partner = rank - pof2
        comm.send(acc, partner, tag=fold_tag)
        in_group = False
        group_rank = -1
    else:
        if rank < rem:
            extra = comm.recv(source=rank + pof2, tag=fold_tag, timeout=timeout)
            acc = reduce_op(acc, extra)
        in_group = True
        group_rank = rank

    # --- recursive doubling within the power-of-two group
    if in_group:
        dist = 1
        round_index = 1
        while dist < pof2:
            partner = group_rank ^ dist
            tag = _tag(epoch, 3, round_index)
            comm.send(acc, partner, tag=tag)
            other = comm.recv(source=partner, tag=tag, timeout=timeout)
            acc = reduce_op(acc, other)
            dist <<= 1
            round_index += 1

    # --- fold-out: send the final result back to the extra ranks
    out_tag = _tag(epoch, 3, 500)
    if in_group and rank < rem:
        comm.send(acc, rank + pof2, tag=out_tag)
    elif not in_group:
        acc = comm.recv(source=rank - pof2, tag=out_tag, timeout=timeout)
    return np.asarray(acc)


def allreduce_ring(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    timeout: Optional[float] = None,
) -> np.ndarray:
    """Ring allreduce: reduce-scatter then allgather over ``P - 1`` steps each.

    The payload is chunked into ``P`` nearly equal pieces; each step sends
    one chunk to the successor and combines the chunk received from the
    predecessor.  This is the bandwidth-optimal algorithm used by Horovod /
    baidu-allreduce for large gradients.
    """
    epoch = _next_epoch(comm)
    reduce_op = get_op(op)
    rank, size = comm.rank, comm.size
    arr = _as_float_array(data)
    if size == 1:
        return arr
    flat = arr.reshape(-1)
    chunks = np.array_split(np.arange(flat.size), size)
    succ = (rank + 1) % size
    pred = (rank - 1) % size

    # reduce-scatter
    for step in range(size - 1):
        tag = _tag(epoch, 4, step)
        send_chunk = (rank - step) % size
        recv_chunk = (rank - step - 1) % size
        comm.send(flat[chunks[send_chunk]], succ, tag=tag)
        incoming = comm.recv(source=pred, tag=tag, timeout=timeout)
        if len(chunks[recv_chunk]):
            flat[chunks[recv_chunk]] = reduce_op(flat[chunks[recv_chunk]], incoming)

    # allgather
    for step in range(size - 1):
        tag = _tag(epoch, 5, step)
        send_chunk = (rank - step + 1) % size
        recv_chunk = (rank - step) % size
        comm.send(flat[chunks[send_chunk]], succ, tag=tag)
        incoming = comm.recv(source=pred, tag=tag, timeout=timeout)
        if len(chunks[recv_chunk]):
            flat[chunks[recv_chunk]] = incoming
    return flat.reshape(arr.shape)


def allreduce_rabenseifner(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    timeout: Optional[float] = None,
) -> np.ndarray:
    """Rabenseifner's allreduce (recursive halving + recursive doubling).

    Requires a power-of-two world size; other sizes transparently fall
    back to :func:`allreduce_recursive_doubling`, matching the behaviour
    of production MPI libraries which switch algorithms based on the
    communicator size.
    """
    rank, size = comm.rank, comm.size
    if not is_power_of_two(size) or size == 1:
        return allreduce_recursive_doubling(comm, data, op=op, timeout=timeout)
    epoch = _next_epoch(comm)
    reduce_op = get_op(op)
    arr = _as_float_array(data)
    flat = arr.reshape(-1)
    n = flat.size

    # Recursive-halving reduce-scatter.  Each rank keeps track of the
    # index range [lo, hi) it is responsible for.
    lo, hi = 0, n
    dist = size // 2
    round_index = 0
    while dist >= 1:
        partner = rank ^ dist
        tag = _tag(epoch, 6, round_index)
        mid = lo + (hi - lo) // 2
        if rank < partner:
            # Keep the lower half, send the upper half.
            keep_lo, keep_hi = lo, mid
            send_lo, send_hi = mid, hi
        else:
            keep_lo, keep_hi = mid, hi
            send_lo, send_hi = lo, mid
        comm.send(flat[send_lo:send_hi], partner, tag=tag)
        incoming = comm.recv(source=partner, tag=tag, timeout=timeout)
        if keep_hi > keep_lo:
            flat[keep_lo:keep_hi] = reduce_op(flat[keep_lo:keep_hi], incoming)
        lo, hi = keep_lo, keep_hi
        dist //= 2
        round_index += 1

    # Recursive-doubling allgather of the owned segments, retracing the
    # halving steps in reverse order.
    segments: List = []
    seg_lo, seg_hi = lo, hi
    dist = 1
    while dist < size:
        partner = rank ^ dist
        tag = _tag(epoch, 7, round_index)
        comm.send((seg_lo, seg_hi, flat[seg_lo:seg_hi].copy()), partner, tag=tag)
        other_lo, other_hi, other_data = comm.recv(source=partner, tag=tag, timeout=timeout)
        if other_hi > other_lo:
            flat[other_lo:other_hi] = other_data
        seg_lo, seg_hi = min(seg_lo, other_lo), max(seg_hi, other_hi)
        dist *= 2
        round_index += 1
    return flat.reshape(arr.shape)


#: Registry of allreduce algorithms by name.
ALLREDUCE_ALGORITHMS: Dict[str, Callable] = {
    "recursive_doubling": allreduce_recursive_doubling,
    "ring": allreduce_ring,
    "rabenseifner": allreduce_rabenseifner,
}


def allreduce(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    algorithm: str = "recursive_doubling",
    average: bool = False,
    timeout: Optional[float] = None,
) -> np.ndarray:
    """Synchronous allreduce with a selectable algorithm.

    Parameters
    ----------
    average:
        If true, divide the reduced result by the world size (the form
        needed by data-parallel SGD, line 6 of Algorithm 2).
    """
    try:
        impl = ALLREDUCE_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown allreduce algorithm {algorithm!r}; "
            f"available: {sorted(ALLREDUCE_ALGORITHMS)}"
        ) from None
    result = impl(comm, data, op=op, timeout=timeout)
    if average:
        result = result / comm.size
    return result
