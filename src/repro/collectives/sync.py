"""Synchronous collective operations over the point-to-point substrate.

These implement the classic allreduce algorithms referenced by the paper
(Section 7, *Collective communication*):

* **recursive doubling** — ``log2(P)`` rounds of pairwise exchange;
  latency-optimal for small messages, used by the paper's partial
  collectives as the reduction schedule.
* **ring allreduce** — reduce-scatter followed by allgather on a ring;
  bandwidth-optimal for large messages (Horovod's default).
* **Rabenseifner's algorithm** — recursive-halving reduce-scatter followed
  by recursive-doubling allgather.
* **hierarchical (two-tier)** — intra-host reduce to a per-host leader,
  ring exchange among the leaders only, intra-host broadcast back.  The
  schedule queries the transport's :class:`~repro.collectives.topology.HostTopology`
  (``comm.router.host_topology``, exposed by the ``hier`` backend) so
  non-leader ranks never touch an inter-host link.

Non-power-of-two worlds
-----------------------
All three allreduce algorithms handle arbitrary world sizes *natively*
with the standard fold: the ``r = P - 2^k`` "extra" ranks (ranks
``[2^k, P)``) fold their contribution into a partner in ``[0, r)``, the
remaining power-of-two group runs the core algorithm, and the result is
folded back out.  There is **no silent fallback** to a different
algorithm — the algorithm named by the caller is the algorithm that runs,
at every world size (the ring algorithm needs no fold at all).

Chunk pipelining
----------------
``allreduce_ring`` and ``allreduce_recursive_doubling`` (and the
Rabenseifner reduce-scatter phase) accept ``n_chunks``: each per-round
payload is segmented into ``n_chunks`` messages so that the reduction of
segment *k* overlaps the transmission of segment *k + 1* (sends are eager
on this substrate, so all segments of a round are in flight while the
receiver combines the earlier ones).  ``n_chunks=1`` reproduces the
classic monolithic rounds bit-for-bit.

Tag layout
----------
Tags are namespaced by a per-communicator epoch counter so consecutive
collectives can never steal each other's messages.  Within one epoch the
layout is ``(phase, round, chunk)`` with fixed strides::

    tag = _SYNC_TAG_BASE
        + epoch * _EPOCH_STRIDE          # one collective invocation
        + phase * _PHASE_STRIDE          # algorithm phase (see _PHASE_*)
        + round_index * _ROUND_STRIDE    # algorithm round, < _TAG_MAX_ROUNDS
        + chunk                          # pipeline segment, < _TAG_MAX_CHUNKS

``_TAG_MAX_ROUNDS = 2^17`` supports ring worlds beyond 100k ranks (a ring
allreduce uses ``P - 1`` rounds per phase); the previous layout packed
rounds into a 512-slot field and silently collided into the next phase's
(and for high phases the next epoch's) tag space for ``P > 512``.
:func:`_tag` now *raises* on any field overflow instead of wrapping.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.comm import reduce_kernels, tags
from repro.comm.communicator import Communicator
from repro.obs import recorder as _obs
from repro.comm.reduce_ops import ReduceOp, get_op
from repro.collectives.topology import (
    HostTopology,
    binomial_tree_children,
    binomial_tree_parent,
    intra_bcast_edges,
    intra_reduce_edges,
    largest_power_of_two_leq,
)

# The layout constants live in the global tag-region map
# (:mod:`repro.comm.tags`) so the static schedule verifier decodes tags
# from the same table that mints them; the historical underscored names
# are kept as aliases for callers and tests.
_SYNC_TAG_BASE = tags.SYNC_TAG_BASE
_TAG_MAX_CHUNKS = tags.SYNC_MAX_CHUNKS
_TAG_MAX_ROUNDS = tags.SYNC_MAX_ROUNDS
_TAG_MAX_PHASES = tags.SYNC_MAX_PHASES
_TAG_MAX_EPOCHS = tags.SYNC_MAX_EPOCHS
_ROUND_STRIDE = tags.SYNC_ROUND_STRIDE
_PHASE_STRIDE = tags.SYNC_PHASE_STRIDE
_EPOCH_STRIDE = tags.SYNC_EPOCH_STRIDE

# Phase identifiers (one namespace per algorithm phase; a collective may
# use several, rounds are numbered independently inside each).
_PHASE_BCAST = 0
_PHASE_REDUCE = 1
_PHASE_GATHER = 2
_PHASE_RD = 3
_PHASE_RING_RS = 4
_PHASE_RING_AG = 5
_PHASE_RABEN_RS = 6
_PHASE_RABEN_AG = 7
_PHASE_FOLD_IN = 8
_PHASE_FOLD_OUT = 9
_PHASE_HIER_REDUCE = 10
_PHASE_HIER_BCAST = 11
#: The hierarchical leader exchange reuses the ring algorithms through a
#: rank-remapped view of the communicator; the inner collective's phases
#: (``_PHASE_RING_RS``/``_PHASE_RING_AG``) are shifted by this amount so
#: they land in [12, 14) instead of colliding with the flat phases.
_HIER_LEADER_PHASE_SHIFT = 8


def _next_epoch(comm: Communicator) -> int:
    """Per-communicator collective sequence number.

    All ranks call collectives in the same (SPMD) order, so incrementing a
    local counter on each rank keeps the tag spaces aligned globally.
    """
    counter = getattr(comm, "_sync_collective_epoch", None)
    if counter is None:
        counter = itertools.count()
        setattr(comm, "_sync_collective_epoch", counter)
    return next(counter)


#: Tag of pipeline segment ``chunk`` of ``round_index`` in ``phase``.
#: Raises :class:`ValueError` when any field — epoch included — overflows
#: its stride: an overflow would alias another phase/epoch's messages
#: (the tag-collision bug this layout replaces), so it must never be
#: silent.  Implemented by the global tag-region map.
_tag = tags.sync_tag


def _validate_chunks(n_chunks: int) -> int:
    n_chunks = int(n_chunks)
    if not 1 <= n_chunks <= _TAG_MAX_CHUNKS:
        raise ValueError(f"n_chunks must be in [1, {_TAG_MAX_CHUNKS}], got {n_chunks}")
    return n_chunks


def _as_float_array(data, copy: bool = True) -> np.ndarray:
    """Owned floating-point working buffer for a reduction.

    Narrow float dtypes are *preserved* so that compressed payloads (e.g.
    the fp16 wire format of :mod:`repro.compression`) are reduced — and
    transmitted — at their encoded width instead of being silently
    upcast; everything else (ints, bools, lists) is promoted to the
    ``float64`` substrate as before.

    ``copy=False`` lets a caller that *owns* the buffer (the bucketed
    exchange passes freshly packed fusion buffers) skip one full-size
    copy per collective; the buffer is then reduced in place.  A
    read-only or non-float input is still copied/converted.
    """
    arr = np.asarray(data)
    if not np.issubdtype(arr.dtype, np.floating):
        # The dtype conversion already produced an owned buffer.
        return np.asarray(arr, dtype=np.float64)
    if not copy and arr.flags.writeable:
        return arr
    return np.array(arr, copy=True)


# --------------------------------------------------------------------------
# chunked segment helpers
# --------------------------------------------------------------------------
def _segment_bounds(length: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` bounds splitting ``length`` into ``n_chunks``.

    Matches :func:`numpy.array_split` sizing (first ``length % n_chunks``
    segments get one extra element); empty segments are allowed so sender
    and receiver always agree on the segment count.
    """
    base, extra = divmod(length, n_chunks)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(n_chunks):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _send_segments(
    comm: Communicator,
    flat: np.ndarray,
    lo: int,
    hi: int,
    dest: int,
    epoch: int,
    phase: int,
    round_index: int,
    n_chunks: int,
    mint: Callable[..., int] = _tag,
) -> None:
    """Send ``flat[lo:hi]`` to ``dest`` as ``n_chunks`` eager segments.

    ``mint`` is the ``(epoch, phase, round, chunk)`` tag-mint function;
    the sharded-optimizer collectives (:mod:`repro.collectives.sharding`)
    reuse these helpers with :func:`repro.comm.tags.sharding_tag` so
    their messages stay in the ``sharding`` region.
    """
    for k, (slo, shi) in enumerate(_segment_bounds(hi - lo, n_chunks)):
        comm.send(flat[lo + slo : lo + shi], dest, tag=mint(epoch, phase, round_index, k))


def _recv_segments(
    comm: Communicator,
    flat: np.ndarray,
    lo: int,
    hi: int,
    source: int,
    epoch: int,
    phase: int,
    round_index: int,
    n_chunks: int,
    timeout: Optional[float],
    reduce_op: Optional[ReduceOp] = None,
    mint: Callable[..., int] = _tag,
) -> None:
    """Receive ``n_chunks`` segments into ``flat[lo:hi]``.

    With ``reduce_op`` the incoming segment is combined into the local
    data as soon as it arrives, so combining segment *k* overlaps the
    (eager) transmission of segments ``> k``; without it the segment is
    assigned (allgather phases).
    """
    for k, (slo, shi) in enumerate(_segment_bounds(hi - lo, n_chunks)):
        incoming = comm.recv(
            source=source, tag=mint(epoch, phase, round_index, k), timeout=timeout
        )
        if shi <= slo:
            continue
        if reduce_op is None:
            flat[lo + slo : lo + shi] = incoming
        else:
            # In-place combine: allocating a fresh buffer per segment and
            # copying it back dominates large-message latency.
            reduce_op.combine_into(flat[lo + slo : lo + shi], incoming)


# --------------------------------------------------------------------------
# non-power-of-two fold helpers
# --------------------------------------------------------------------------
def _fold_in(
    comm: Communicator,
    flat: np.ndarray,
    epoch: int,
    n_chunks: int,
    reduce_op: ReduceOp,
    timeout: Optional[float],
    phase: int = _PHASE_FOLD_IN,
    mint: Callable[..., int] = _tag,
) -> bool:
    """Fold the extra ranks' contributions into the power-of-two group.

    Returns whether this rank stays in the power-of-two group (ranks
    ``[2^k, P)`` send their data to ``rank - 2^k`` and drop out until
    :func:`_fold_out` hands the result back).
    """
    rank, size = comm.rank, comm.size
    pof2 = largest_power_of_two_leq(size)
    rem = size - pof2
    if rem == 0:
        return True
    if rank >= pof2:
        _send_segments(
            comm, flat, 0, flat.size, rank - pof2, epoch, phase, 0, n_chunks,
            mint=mint,
        )
        return False
    if rank < rem:
        _recv_segments(
            comm,
            flat,
            0,
            flat.size,
            rank + pof2,
            epoch,
            phase,
            0,
            n_chunks,
            timeout,
            reduce_op=reduce_op,
            mint=mint,
        )
    return True


def _fold_out(
    comm: Communicator,
    flat: np.ndarray,
    epoch: int,
    n_chunks: int,
    in_group: bool,
    timeout: Optional[float],
    phase: int = _PHASE_FOLD_OUT,
    mint: Callable[..., int] = _tag,
) -> None:
    """Hand the reduced result back to the folded-out extra ranks."""
    rank, size = comm.rank, comm.size
    pof2 = largest_power_of_two_leq(size)
    rem = size - pof2
    if rem == 0:
        return
    if in_group and rank < rem:
        _send_segments(
            comm, flat, 0, flat.size, rank + pof2, epoch, phase, 0, n_chunks,
            mint=mint,
        )
    elif not in_group:
        _recv_segments(
            comm,
            flat,
            0,
            flat.size,
            rank - pof2,
            epoch,
            phase,
            0,
            n_chunks,
            timeout,
            mint=mint,
        )


# --------------------------------------------------------------------------
# broadcast / reduce / allgather
# --------------------------------------------------------------------------
def broadcast(comm: Communicator, data, root: int = 0, timeout: Optional[float] = None):
    """Binomial-tree broadcast of ``data`` from ``root`` to all ranks."""
    epoch = _next_epoch(comm)
    rank, size = comm.rank, comm.size
    tag = _tag(epoch, _PHASE_BCAST, 0)
    if size == 1:
        return data
    if rank != root:
        parent = binomial_tree_parent(rank, size, root)
        data = comm.recv(source=parent, tag=tag, timeout=timeout)
    for child in binomial_tree_children(rank, size, root):
        comm.send(data, child, tag=tag)
    return data


def reduce(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    root: int = 0,
    timeout: Optional[float] = None,
) -> Optional[np.ndarray]:
    """Binomial-tree reduction to ``root``; returns the result on root only."""
    epoch = _next_epoch(comm)
    reduce_op = get_op(op)
    rank, size = comm.rank, comm.size
    acc = _as_float_array(data)
    tag = _tag(epoch, _PHASE_REDUCE, 0)
    if size == 1:
        return acc
    # Children in the *broadcast* tree are the senders in the reduction tree.
    # A rooted reduction has a single owner per partial result, so narrow
    # dtypes may accumulate widened (float32) across all children and
    # narrow once — the multi-segment kernel of repro.comm.reduce_kernels.
    children = list(reversed(binomial_tree_children(rank, size, root)))
    widened = reduce_op.accumulator(acc) if len(children) > 1 else None
    for child in children:
        contribution = comm.recv(source=child, tag=tag, timeout=timeout)
        if widened is not None:
            widened.combine(contribution)
        else:
            acc = reduce_op.combine_into(acc, contribution)
    if widened is not None:
        acc = widened.finish()
    if rank != root:
        parent = binomial_tree_parent(rank, size, root)
        comm.send(acc, parent, tag=tag)
        return None
    return acc


def allgather(
    comm: Communicator,
    data,
    timeout: Optional[float] = None,
    out: Optional[List[np.ndarray]] = None,
) -> List:
    """Gather one value from every rank at every rank (ring algorithm).

    With ``out`` (a list of ``size`` preallocated per-rank arrays) each
    received array payload is copied straight into its destination slot
    and the same list is returned, so a steady-state caller (negotiation
    rounds, parameter gathers) reuses its buffers instead of retaining a
    freshly allocated list of wire payloads every call.  Without ``out``
    the delivered payloads are returned as before.
    """
    epoch = _next_epoch(comm)
    rank, size = comm.rank, comm.size
    if out is not None:
        if len(out) != size:
            raise ValueError(
                f"allgather out has {len(out)} slot(s) but the world has "
                f"{size} rank(s)"
            )
        items: List = out
        if items[rank] is not data:
            np.copyto(items[rank], np.asarray(data))
    else:
        items = [None] * size
        items[rank] = data
    if size == 1:
        return items
    succ = (rank + 1) % size
    pred = (rank - 1) % size
    for step in range(size - 1):
        tag = _tag(epoch, _PHASE_GATHER, step)
        send_idx = (rank - step) % size
        comm.send(items[send_idx], succ, tag=tag)
        recv_idx = (rank - step - 1) % size
        incoming = comm.recv(source=pred, tag=tag, timeout=timeout)
        if out is not None:
            np.copyto(items[recv_idx], np.asarray(incoming))
        else:
            items[recv_idx] = incoming
    return items


# --------------------------------------------------------------------------
# allreduce algorithms
# --------------------------------------------------------------------------
def allreduce_recursive_doubling(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    timeout: Optional[float] = None,
    n_chunks: int = 1,
    copy: bool = True,
) -> np.ndarray:
    """Recursive-doubling allreduce (hypercube exchange).

    Non-power-of-two sizes are handled with the standard fold: the first
    ``r = P - 2^k`` "extra" ranks fold their contribution into a partner,
    the remaining power-of-two group runs recursive doubling, and the
    result is sent back to the folded ranks.

    ``n_chunks > 1`` pipelines every pairwise exchange in that many
    segments (reduction of segment *k* overlapping transmission of
    segment *k + 1*).
    """
    epoch = _next_epoch(comm)
    reduce_op = get_op(op)
    n_chunks = _validate_chunks(n_chunks)
    rank, size = comm.rank, comm.size
    acc = _as_float_array(data, copy=copy)
    if size == 1:
        return acc
    flat = acc.reshape(-1)

    pof2 = largest_power_of_two_leq(size)
    in_group = _fold_in(comm, flat, epoch, n_chunks, reduce_op, timeout)

    if in_group:
        with _obs.span("rd-exchange", "collective", n_chunks=n_chunks):
            dist = 1
            round_index = 0
            while dist < pof2:
                partner = rank ^ dist
                _send_segments(
                    comm, flat, 0, flat.size, partner, epoch, _PHASE_RD,
                    round_index, n_chunks,
                )
                _recv_segments(
                    comm,
                    flat,
                    0,
                    flat.size,
                    partner,
                    epoch,
                    _PHASE_RD,
                    round_index,
                    n_chunks,
                    timeout,
                    reduce_op=reduce_op,
                )
                dist <<= 1
                round_index += 1

    _fold_out(comm, flat, epoch, n_chunks, in_group, timeout)
    return flat.reshape(acc.shape)


def allreduce_ring(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    timeout: Optional[float] = None,
    n_chunks: int = 1,
    copy: bool = True,
) -> np.ndarray:
    """Ring allreduce: reduce-scatter then allgather over ``P - 1`` steps each.

    The payload is chunked into ``P`` nearly equal pieces; each step sends
    one chunk to the successor and combines the chunk received from the
    predecessor.  This is the bandwidth-optimal algorithm used by Horovod /
    baidu-allreduce for large gradients.  Any world size is supported (the
    ring needs no power-of-two structure).

    ``n_chunks > 1`` additionally segments every per-step chunk so the
    combine of segment *k* overlaps the transmission of segment *k + 1*
    (the chunked-pipeline schedule used by the fused gradient exchange).
    """
    epoch = _next_epoch(comm)
    reduce_op = get_op(op)
    n_chunks = _validate_chunks(n_chunks)
    rank, size = comm.rank, comm.size
    arr = _as_float_array(data, copy=copy)
    if size == 1:
        return arr
    flat = arr.reshape(-1)
    bounds = _segment_bounds(flat.size, size)
    succ = (rank + 1) % size
    pred = (rank - 1) % size

    # reduce-scatter
    with _obs.span("ring-rs", "collective", steps=size - 1, n_chunks=n_chunks):
        for step in range(size - 1):
            send_chunk = (rank - step) % size
            recv_chunk = (rank - step - 1) % size
            _send_segments(
                comm, flat, *bounds[send_chunk], succ, epoch, _PHASE_RING_RS,
                step, n_chunks,
            )
            _recv_segments(
                comm,
                flat,
                *bounds[recv_chunk],
                pred,
                epoch,
                _PHASE_RING_RS,
                step,
                n_chunks,
                timeout,
                reduce_op=reduce_op,
            )

    # allgather
    with _obs.span("ring-ag", "collective", steps=size - 1, n_chunks=n_chunks):
        for step in range(size - 1):
            send_chunk = (rank - step + 1) % size
            recv_chunk = (rank - step) % size
            _send_segments(
                comm, flat, *bounds[send_chunk], succ, epoch, _PHASE_RING_AG,
                step, n_chunks,
            )
            _recv_segments(
                comm,
                flat,
                *bounds[recv_chunk],
                pred,
                epoch,
                _PHASE_RING_AG,
                step,
                n_chunks,
                timeout,
            )
    return flat.reshape(arr.shape)


def allreduce_rabenseifner(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    timeout: Optional[float] = None,
    n_chunks: int = 1,
    copy: bool = True,
) -> np.ndarray:
    """Rabenseifner's allreduce (recursive halving + recursive doubling).

    Non-power-of-two worlds are handled natively with the same fold-in /
    fold-out pre- and post-steps as recursive doubling (the extra ranks
    fold into the power-of-two group, which then runs the halving /
    doubling core); there is **no** fallback to another algorithm, so the
    caller always gets Rabenseifner's communication pattern.

    ``n_chunks > 1`` pipelines the recursive-halving reduce-scatter
    exchanges (the phase that carries reduction arithmetic) in that many
    segments; the allgather retrace keeps one message per round.
    """
    epoch = _next_epoch(comm)
    reduce_op = get_op(op)
    n_chunks = _validate_chunks(n_chunks)
    rank, size = comm.rank, comm.size
    arr = _as_float_array(data, copy=copy)
    if size == 1:
        return arr
    flat = arr.reshape(-1)
    n = flat.size

    pof2 = largest_power_of_two_leq(size)
    in_group = _fold_in(comm, flat, epoch, n_chunks, reduce_op, timeout)

    if in_group:
        # Recursive-halving reduce-scatter within the power-of-two group.
        # Each rank keeps track of the index range [lo, hi) it owns.
        with _obs.span("raben-rs", "collective", n_chunks=n_chunks):
            lo, hi = 0, n
            dist = pof2 // 2
            round_index = 0
            while dist >= 1:
                partner = rank ^ dist
                mid = lo + (hi - lo) // 2
                if rank < partner:
                    # Keep the lower half, send the upper half.
                    keep_lo, keep_hi = lo, mid
                    send_lo, send_hi = mid, hi
                else:
                    keep_lo, keep_hi = mid, hi
                    send_lo, send_hi = lo, mid
                _send_segments(
                    comm, flat, send_lo, send_hi, partner, epoch,
                    _PHASE_RABEN_RS, round_index, n_chunks,
                )
                _recv_segments(
                    comm, flat, keep_lo, keep_hi, partner, epoch,
                    _PHASE_RABEN_RS, round_index, n_chunks, timeout,
                    reduce_op=reduce_op,
                )
                lo, hi = keep_lo, keep_hi
                dist //= 2
                round_index += 1

        # Recursive-doubling allgather of the owned segments, retracing the
        # halving steps in reverse order.
        with _obs.span("raben-ag", "collective"):
            seg_lo, seg_hi = lo, hi
            dist = 1
            round_index = 0
            while dist < pof2:
                partner = rank ^ dist
                tag = _tag(epoch, _PHASE_RABEN_AG, round_index)
                comm.send(
                    (seg_lo, seg_hi, flat[seg_lo:seg_hi].copy()), partner, tag=tag
                )
                other_lo, other_hi, other_data = comm.recv(
                    source=partner, tag=tag, timeout=timeout
                )
                if other_hi > other_lo:
                    flat[other_lo:other_hi] = other_data
                seg_lo, seg_hi = min(seg_lo, other_lo), max(seg_hi, other_hi)
                dist *= 2
                round_index += 1

    _fold_out(comm, flat, epoch, n_chunks, in_group, timeout)
    return flat.reshape(arr.shape)


def allreduce_compressed_ring(
    comm: Communicator,
    data,
    codec,
    average: bool = True,
    timeout: Optional[float] = None,
    n_chunks: int = 1,
    copy: bool = True,
) -> np.ndarray:
    """Ring allreduce with encoded wire hops and dense reduction arithmetic.

    This is the *decode-reduce-encode* schedule for compressed gradient
    exchanges (:mod:`repro.compression`): every hop of the ring carries
    the codec's wire payload (e.g. 2-byte fp16 codes instead of 8-byte
    ``float64``), but the combination itself runs on a dense ``float64``
    accumulator — each reduce-scatter step decodes the incoming chunk,
    adds it densely, and re-encodes the chunk it forwards.  Compared to
    running the generic allreduce directly on an encoded buffer this
    trades one encode + decode per hop for dense arithmetic, which is
    the right trade wherever narrow-dtype arithmetic is slow (NumPy has
    no vectorised ``float16`` kernels) while the wire — socket copies on
    the process backend — is the bottleneck.

    After the reduce-scatter each rank owns one fully reduced chunk; the
    ``average`` division is applied densely to that chunk *before* it is
    encoded once and forwarded unchanged through the allgather phase, so
    every rank decodes byte-identical encoded chunks: the replicas agree
    bit-for-bit on the result, exactly like the uncompressed ring.

    ``codec`` must be reduce-closed in the wire sense of having a fixed
    elementwise ``wire_dtype`` (one encoded element per dense element);
    composite payloads (int8 scales, top-k index lists) cannot ride the
    segmented ring and take the allgather exchange in
    :class:`repro.training.exchange.SynchronousExchange` instead.
    """
    if codec.wire_dtype is None:
        raise ValueError(
            f"codec {codec.name!r} has no fixed-width wire dtype; the "
            f"compressed ring needs one encoded element per dense element"
        )
    epoch = _next_epoch(comm)
    n_chunks = _validate_chunks(n_chunks)
    rank, size = comm.rank, comm.size
    arr = np.asarray(data, dtype=np.float64)
    if (copy and arr is data) or not arr.flags.writeable:
        # ``copy=False`` lets a caller that owns the buffer (the bucketed
        # exchange packs owned fusion buffers) skip one full-size copy.
        arr = np.array(arr, copy=True)
    if size == 1:
        return arr
    flat = arr.reshape(-1)
    bounds = _segment_bounds(flat.size, size)
    succ = (rank + 1) % size
    pred = (rank - 1) % size

    def encode(lo: int, hi: int) -> np.ndarray:
        if hi <= lo:
            # Worlds larger than the bucket leave some ranks with empty
            # ring chunks; codecs reject empty buffers, but an empty
            # fixed-width wire payload is well-defined (and the peer is
            # already blocked waiting for this round's message).
            return np.empty(0, dtype=codec.wire_dtype)
        return np.asarray(codec.encode(flat[lo:hi]).payload)

    def decode(wire: np.ndarray, num_elements: int) -> np.ndarray:
        from repro.compression.base import EncodedGradient

        template = EncodedGradient(codec.name, num_elements, wire, wire.nbytes)
        return codec.decode(template)

    def recv_wire(length: int, phase: int, step: int) -> np.ndarray:
        if n_chunks == 1:
            # Use the delivered array directly instead of copying it into
            # a preallocated buffer — one fewer pass over the payload.
            return np.asarray(
                comm.recv(source=pred, tag=_tag(epoch, phase, step, 0), timeout=timeout)
            )
        buf = np.empty(length, dtype=codec.wire_dtype)
        _recv_segments(comm, buf, 0, length, pred, epoch, phase, step, n_chunks, timeout)
        return buf

    # Whether the wire payload's elements ARE the decoded values (fp16's
    # widening cast, the identity codec's float64): only such codecs may
    # skip decode() on the fast paths below — a float wire dtype alone
    # is not enough (a future scaled-fp16 codec must keep its decode).
    cast_decodable = bool(getattr(codec, "wire_is_values", False))

    # Reduce-scatter: encoded chunks on the wire, dense accumulation.
    # For cast-decodable codecs the incoming payload is folded into the
    # dense accumulator by one fused cast-and-add ufunc call
    # (:func:`repro.comm.reduce_kernels.accumulate_wire`) — same values
    # as decode-then-add (the widening cast is exact), one fewer pass.
    for step in range(size - 1):
        send_chunk = (rank - step) % size
        recv_chunk = (rank - step - 1) % size
        wire_out = encode(*bounds[send_chunk])
        _send_segments(
            comm, wire_out, 0, wire_out.size, succ, epoch, _PHASE_RING_RS, step, n_chunks
        )
        lo, hi = bounds[recv_chunk]
        wire_in = recv_wire(hi - lo, _PHASE_RING_RS, step)
        if hi > lo and not (
            cast_decodable and reduce_kernels.accumulate_wire(flat[lo:hi], wire_in)
        ):
            flat[lo:hi] += decode(wire_in, hi - lo)

    # This rank now owns chunk (rank + 1) % size fully reduced: average
    # densely, encode once, and circulate the encoded chunk unchanged.
    own = (rank + 1) % size
    if average:
        flat[bounds[own][0] : bounds[own][1]] /= size
    encoded_chunks: Dict[int, np.ndarray] = {own: encode(*bounds[own])}
    for step in range(size - 1):
        send_chunk = (rank - step + 1) % size
        recv_chunk = (rank - step) % size
        wire_out = encoded_chunks[send_chunk]
        _send_segments(
            comm, wire_out, 0, wire_out.size, succ, epoch, _PHASE_RING_AG, step, n_chunks
        )
        lo, hi = bounds[recv_chunk]
        encoded_chunks[recv_chunk] = recv_wire(hi - lo, _PHASE_RING_AG, step)
    # Decode the foreign chunks; the own chunk is re-decoded from its
    # encoded form too, so all ranks hold bit-identical replicas.
    # Cast-decodable wire payloads widen with one fused casting store.
    for index, wire in encoded_chunks.items():
        lo, hi = bounds[index]
        if hi > lo:
            wire_arr = np.asarray(wire)
            if cast_decodable and np.issubdtype(wire_arr.dtype, np.floating):
                np.copyto(flat[lo:hi], wire_arr)
            else:
                flat[lo:hi] = decode(wire_arr, hi - lo)
    return flat.reshape(arr.shape)


# --------------------------------------------------------------------------
# hierarchical (two-tier) allreduce
# --------------------------------------------------------------------------
def resolve_host_topology(
    comm: Communicator, topology: Optional[HostTopology] = None
) -> HostTopology:
    """The host topology a hierarchical collective should schedule against.

    An explicit ``topology`` wins; otherwise the transport is consulted
    (``comm.router.host_topology``, exposed by the ``hier`` backend) and
    the flat single-host topology is the fallback.  A topology sized for
    a different world is rejected (explicit) or ignored (discovered) —
    a stale router attribute must not silently corrupt the schedule.
    """
    if topology is not None:
        if topology.world_size != comm.size:
            raise ValueError(
                f"host topology covers {topology.world_size} rank(s) but the "
                f"communicator has {comm.size}"
            )
        return topology
    found = getattr(getattr(comm, "router", None), "host_topology", None)
    if isinstance(found, HostTopology) and found.world_size == comm.size:
        return found
    return HostTopology.single_host(comm.size)


class _LeaderView:
    """Rank- and tag-remapped view of ``comm`` restricted to the host leaders.

    The inter-host stage of the hierarchical allreduce is just a ring
    collective over the leader ranks, so instead of reimplementing the
    (intricate, already-tested) ring schedules this view lets them run
    unchanged: subgroup rank ``i`` is global rank ``leaders[i]``, and
    tags are translated into the *enclosing* collective's epoch with the
    ring phases shifted to the hierarchical leader-phase namespace.

    Exactly **one** inner collective may run per view: the inner call
    allocates epoch 0 on the fresh view, and a second would allocate
    epoch 1, which the tag translation rejects (it would alias the next
    outer epoch).
    """

    def __init__(self, comm: Communicator, leaders: Tuple[int, ...], epoch: int) -> None:
        self._comm = comm
        self._leaders = tuple(leaders)
        self.rank = self._leaders.index(comm.rank)
        self.size = len(self._leaders)
        self._epoch = epoch

    def _remap_tag(self, tag: int) -> int:
        offset = tag - _SYNC_TAG_BASE
        phase, rest = divmod(offset, _PHASE_STRIDE)
        round_index, chunk = divmod(rest, _ROUND_STRIDE)
        # _tag() raises if the shifted phase overflows — which is exactly
        # what a second inner collective (epoch 1 -> phase >= 16) hits.
        return _tag(self._epoch, phase + _HIER_LEADER_PHASE_SHIFT, round_index, chunk)

    def send(self, data, dest: int, tag: int = 0) -> None:
        self._comm.send(data, self._leaders[dest], tag=self._remap_tag(tag))

    def recv(self, source: int, tag: int, timeout: Optional[float] = None):
        return self._comm.recv(
            source=self._leaders[source], tag=self._remap_tag(tag), timeout=timeout
        )


def _intra_reduce(
    comm: Communicator,
    flat: np.ndarray,
    topology: HostTopology,
    epoch: int,
    n_chunks: int,
    reduce_op: ReduceOp,
    timeout: Optional[float],
) -> None:
    """Reduce every host's contributions onto its leader (binomial tree)."""
    rank = comm.rank
    for round_index, (src, dst) in enumerate(
        intra_reduce_edges(topology, topology.host(rank))
    ):
        if rank == src:
            _send_segments(
                comm, flat, 0, flat.size, dst, epoch, _PHASE_HIER_REDUCE,
                round_index, n_chunks,
            )
        elif rank == dst:
            _recv_segments(
                comm, flat, 0, flat.size, src, epoch, _PHASE_HIER_REDUCE,
                round_index, n_chunks, timeout, reduce_op=reduce_op,
            )


def _intra_bcast(
    comm: Communicator,
    flat: np.ndarray,
    topology: HostTopology,
    epoch: int,
    n_chunks: int,
    timeout: Optional[float],
) -> None:
    """Broadcast the leader's (reduced) buffer back across its host."""
    rank = comm.rank
    for round_index, (src, dst) in enumerate(
        intra_bcast_edges(topology, topology.host(rank))
    ):
        if rank == src:
            _send_segments(
                comm, flat, 0, flat.size, dst, epoch, _PHASE_HIER_BCAST,
                round_index, n_chunks,
            )
        elif rank == dst:
            _recv_segments(
                comm, flat, 0, flat.size, src, epoch, _PHASE_HIER_BCAST,
                round_index, n_chunks, timeout,
            )


def allreduce_hierarchical(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    timeout: Optional[float] = None,
    n_chunks: int = 1,
    copy: bool = True,
    topology: Optional[HostTopology] = None,
) -> np.ndarray:
    """Two-tier allreduce: intra-host reduce, leader ring, intra-host bcast.

    The three stages of the multi-host schedule:

    1. every host reduces onto its leader along the reversed binomial
       broadcast tree (fast links only, ``O(log n)`` leader receives);
    2. the leaders — one rank per host — run a ring allreduce among
       themselves, so each *inter-host* link carries the bandwidth-optimal
       ``2 (H-1)/H`` payload volume exactly once per direction;
    3. every leader broadcasts the result back down its host tree.

    With ``topology`` omitted the transport's ``host_topology`` is used
    (single-host when the transport has none), and a single-host world
    degenerates to the plain ring allreduce — same result, no extra
    tree hops.  All replicas receive the leader exchange's bit pattern
    verbatim, so the replicas agree bit-for-bit just like the flat
    algorithms.
    """
    topology = resolve_host_topology(comm, topology)
    if topology.is_single_host:
        return allreduce_ring(
            comm, data, op=op, timeout=timeout, n_chunks=n_chunks, copy=copy
        )
    epoch = _next_epoch(comm)
    reduce_op = get_op(op)
    n_chunks = _validate_chunks(n_chunks)
    acc = _as_float_array(data, copy=copy)
    flat = acc.reshape(-1)

    with _obs.span("hier-intra-reduce", "collective", n_chunks=n_chunks):
        _intra_reduce(comm, flat, topology, epoch, n_chunks, reduce_op, timeout)
    if topology.is_leader(comm.rank):
        with _obs.span("hier-leader-ring", "collective",
                       leaders=topology.num_hosts, n_chunks=n_chunks):
            view = _LeaderView(comm, topology.leaders, epoch)
            allreduce_ring(
                view, flat, op=reduce_op, timeout=timeout, n_chunks=n_chunks,
                copy=False,
            )
    with _obs.span("hier-intra-bcast", "collective", n_chunks=n_chunks):
        _intra_bcast(comm, flat, topology, epoch, n_chunks, timeout)
    return flat.reshape(acc.shape)


def allreduce_compressed_hierarchical(
    comm: Communicator,
    data,
    codec,
    average: bool = True,
    timeout: Optional[float] = None,
    n_chunks: int = 1,
    copy: bool = True,
    topology: Optional[HostTopology] = None,
) -> np.ndarray:
    """Two-tier compressed allreduce: dense intra-host, encoded inter-host.

    Compression earns its encode/decode cost only where the wire is the
    bottleneck, which in a multi-host fabric is the inter-host tier — so
    the intra-host reduce and broadcast stay dense (shm rings move
    float64 faster than any codec round-trip) and only the leader ring
    carries the codec's wire payload, via the same decode-reduce-encode
    schedule as :func:`allreduce_compressed_ring`.

    ``average`` divides by the **global** world size, applied densely at
    every leader after the leader exchange (all leaders hold the same
    bit pattern at that point, and the broadcast forwards leader bytes
    verbatim, so the replicas stay bit-identical).
    """
    topology = resolve_host_topology(comm, topology)
    if topology.is_single_host:
        return allreduce_compressed_ring(
            comm, data, codec, average=average, timeout=timeout,
            n_chunks=n_chunks, copy=copy,
        )
    epoch = _next_epoch(comm)
    n_chunks = _validate_chunks(n_chunks)
    reduce_op = get_op("sum")
    arr = np.asarray(data, dtype=np.float64)
    if (copy and arr is data) or not arr.flags.writeable:
        arr = np.array(arr, copy=True)
    flat = arr.reshape(-1)

    _intra_reduce(comm, flat, topology, epoch, n_chunks, reduce_op, timeout)
    if topology.is_leader(comm.rank):
        if topology.num_hosts > 1:
            view = _LeaderView(comm, topology.leaders, epoch)
            allreduce_compressed_ring(
                view, flat, codec, average=False, timeout=timeout,
                n_chunks=n_chunks, copy=False,
            )
        if average:
            flat /= topology.world_size
    _intra_bcast(comm, flat, topology, epoch, n_chunks, timeout)
    return flat.reshape(arr.shape)


#: Registry of allreduce algorithms by name.
ALLREDUCE_ALGORITHMS: Dict[str, Callable] = {
    "recursive_doubling": allreduce_recursive_doubling,
    "ring": allreduce_ring,
    "rabenseifner": allreduce_rabenseifner,
    "hierarchical": allreduce_hierarchical,
}


def allreduce(
    comm: Communicator,
    data,
    op: ReduceOp | str = "sum",
    algorithm: str = "recursive_doubling",
    average: bool = False,
    timeout: Optional[float] = None,
    n_chunks: int = 1,
    copy: bool = True,
) -> np.ndarray:
    """Synchronous allreduce with a selectable algorithm.

    Parameters
    ----------
    average:
        If true, divide the reduced result by the world size (the form
        needed by data-parallel SGD, line 6 of Algorithm 2).
    n_chunks:
        Pipeline each communication round in this many segments so that
        reduction overlaps transmission (see the module docstring);
        ``1`` (default) runs the classic unsegmented rounds.
    """
    try:
        impl = ALLREDUCE_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown allreduce algorithm {algorithm!r}; "
            f"available: {sorted(ALLREDUCE_ALGORITHMS)}"
        ) from None
    with _obs.span(
        f"allreduce[{algorithm}]", "collective",
        nbytes=_obs.payload_nbytes(data), n_chunks=n_chunks,
    ):
        result = impl(comm, data, op=op, timeout=timeout, n_chunks=n_chunks, copy=copy)
    if average:
        # The implementations return an owned buffer, so divide in place.
        result /= comm.size
    return result
