"""Collective operations: synchronous and *partial* (solo / majority).

The synchronous collectives (:mod:`repro.collectives.sync`) implement the
classic allreduce algorithms (recursive doubling, ring, Rabenseifner) over
the point-to-point substrate and are the building block of the
synchronous-SGD baselines.

The partial collectives (:mod:`repro.collectives.partial`) are the paper's
contribution: *solo allreduce* (wait-free, any process can initiate) and
*majority allreduce* (a randomly designated initiator guarantees that, in
expectation, at least half of the processes contribute fresh data).  They
are executed asynchronously by a per-rank progress thread, mirroring the
library offloading of Section 4.3.
"""

from repro.collectives.topology import (
    binomial_tree_children,
    binomial_tree_parent,
    recursive_doubling_rounds,
    hypercube_neighbors,
    ring_neighbors,
)
from repro.collectives.sync import (
    allreduce,
    allreduce_recursive_doubling,
    allreduce_ring,
    allreduce_rabenseifner,
    broadcast,
    reduce as reduce_to_root,
    allgather,
    ALLREDUCE_ALGORITHMS,
)
from repro.collectives.sharding import (
    ALLGATHER_FLAT_ALGORITHMS,
    ALLGATHER_FOR_REDUCE_SCATTER,
    REDUCE_SCATTER_ALGORITHMS,
    allgather_flat,
    reduce_scatter,
    shard_bounds,
)
from repro.collectives.schedules import (
    build_activation_schedule,
    build_recursive_doubling_allreduce_schedule,
    build_binomial_broadcast_schedule,
)
from repro.collectives.partial import (
    PartialAllreduce,
    PartialAllreduceResult,
    PartialMode,
    SoloAllreduce,
    MajorityAllreduce,
    QuorumAllreduce,
    make_partial_allreduce,
)

__all__ = [
    "binomial_tree_children",
    "binomial_tree_parent",
    "recursive_doubling_rounds",
    "hypercube_neighbors",
    "ring_neighbors",
    "allreduce",
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "allreduce_rabenseifner",
    "broadcast",
    "reduce_to_root",
    "allgather",
    "ALLREDUCE_ALGORITHMS",
    "ALLGATHER_FLAT_ALGORITHMS",
    "ALLGATHER_FOR_REDUCE_SCATTER",
    "REDUCE_SCATTER_ALGORITHMS",
    "allgather_flat",
    "reduce_scatter",
    "shard_bounds",
    "build_activation_schedule",
    "build_recursive_doubling_allreduce_schedule",
    "build_binomial_broadcast_schedule",
    "PartialAllreduce",
    "PartialAllreduceResult",
    "PartialMode",
    "SoloAllreduce",
    "MajorityAllreduce",
    "QuorumAllreduce",
    "make_partial_allreduce",
]
