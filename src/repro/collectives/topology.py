"""Communication topologies used by the collective algorithms.

The activation phase of a partial collective broadcasts a small message
along a *binomial tree rooted at the initiator* (the union of ``P``
binomial trees described in Section 4.1.1 of the paper); the reduction
itself uses *recursive doubling* (hypercube exchange).  This module
provides the pure rank arithmetic for those patterns so that both the
thread-backed implementation and the discrete-event simulator share a
single source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


def _validate(size: int, rank: int = 0, root: int = 0) -> None:
    if size < 1:
        raise ValueError(f"world size must be >= 1, got {size}")
    if not 0 <= rank < size:
        raise ValueError(f"rank {rank} out of range for size {size}")
    if not 0 <= root < size:
        raise ValueError(f"root {root} out of range for size {size}")


def tree_depth(size: int) -> int:
    """Depth of a binomial broadcast tree over ``size`` ranks."""
    _validate(size)
    return int(math.ceil(math.log2(size))) if size > 1 else 0


def binomial_tree_children(rank: int, size: int, root: int = 0) -> List[int]:
    """Children of ``rank`` in the binomial tree rooted at ``root``.

    The tree is defined on *relative* ranks ``v = (rank - root) mod size``
    by the doubling broadcast recursion: in round ``k`` (``k = 0, 1, ...``)
    every already-reached rank ``v < 2^k`` sends to ``v + 2^k`` when that
    target exists.  A rank ``v > 0`` is therefore first reached in the
    round given by its highest set bit and forwards in every later round.
    This is exactly the "union of P binomial trees" activation pattern of
    Section 4.1.1: the same arithmetic serves any root.
    """
    _validate(size, rank, root)
    v = (rank - root) % size
    depth = tree_depth(size)
    # Round in which v is first reached (-1 for the root, which starts
    # sending in round 0).
    reached_round = v.bit_length() - 1 if v > 0 else -1
    children = []
    for k in range(reached_round + 1, depth):
        child = v + (1 << k)
        if child < size:
            children.append((child + root) % size)
    return children


def binomial_tree_parent(rank: int, size: int, root: int = 0) -> int:
    """Parent of ``rank`` in the binomial tree rooted at ``root``.

    The root's parent is itself.
    """
    _validate(size, rank, root)
    v = (rank - root) % size
    if v == 0:
        return root
    # Clear the highest set bit to obtain the parent's relative rank.
    parent_v = v & ~(1 << (v.bit_length() - 1))
    return (parent_v + root) % size


def binomial_tree_level(rank: int, size: int, root: int = 0) -> int:
    """Distance (number of hops) from ``root`` to ``rank`` in the tree."""
    _validate(size, rank, root)
    v = (rank - root) % size
    return bin(v).count("1")


def recursive_doubling_rounds(rank: int, size: int) -> List[int]:
    """Exchange partners of ``rank`` for recursive-doubling allreduce.

    Only defined when ``size`` is a power of two; the non-power-of-two case
    is handled by the calling algorithm (fold-in pre/post steps).
    """
    _validate(size, rank)
    if size & (size - 1):
        raise ValueError(f"recursive doubling requires a power-of-two size, got {size}")
    partners = []
    dist = 1
    while dist < size:
        partners.append(rank ^ dist)
        dist <<= 1
    return partners


def hypercube_neighbors(rank: int, size: int) -> List[int]:
    """All hypercube neighbours of ``rank`` (alias of the RD partners)."""
    return recursive_doubling_rounds(rank, size)


def ring_neighbors(rank: int, size: int) -> Tuple[int, int]:
    """``(predecessor, successor)`` of ``rank`` on the ring."""
    _validate(size, rank)
    return ((rank - 1) % size, (rank + 1) % size)


def largest_power_of_two_leq(n: int) -> int:
    """Largest power of two that is ``<= n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n.bit_length() - 1)


def is_power_of_two(n: int) -> bool:
    """Whether ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def bcast_order(size: int, root: int = 0) -> List[Tuple[int, int]]:
    """Flattened ``(sender, receiver)`` edge list of the binomial broadcast.

    The edges are listed level by level, which is the order in which they
    can first be scheduled; it is used by the simulator to compute the
    per-rank activation arrival time.
    """
    _validate(size, root=root)
    edges: List[Tuple[int, int]] = []
    frontier = [root]
    reached = {root}
    while len(reached) < size:
        next_frontier: List[int] = []
        for sender in frontier:
            for child in binomial_tree_children(sender, size, root):
                if child not in reached:
                    edges.append((sender, child))
                    reached.add(child)
                    next_frontier.append(child)
        if not next_frontier:
            # Defensive: should never happen for a correct tree.
            missing = sorted(set(range(size)) - reached)
            raise RuntimeError(f"broadcast tree did not reach ranks {missing}")
        frontier = next_frontier
    return edges


# ---------------------------------------------------------------------------
# Host topology: the rank -> host map that hierarchical collectives query.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HostTopology:
    """Explicit rank-to-host assignment of a (possibly multi-host) world.

    The topology is the single source of truth the two-tier collectives
    use to split intra-host from inter-host traffic: every host elects a
    *leader* (its lowest rank), non-leaders only ever talk to their own
    leader, and leaders exchange among themselves over the (slow)
    inter-host links.

    ``host_of`` maps each rank to an opaque host label.  Labels are
    canonicalised to dense indices ``0..num_hosts-1`` in order of first
    appearance, so ``HostTopology(["a", "a", "b"])`` and
    ``HostTopology([0, 0, 1])`` describe the same fabric.
    """

    #: Canonical rank -> host-index map (dense, first-appearance order).
    host_of: Tuple[int, ...] = field(default=())

    def __init__(self, host_of: Sequence[object]) -> None:
        if len(host_of) < 1:
            raise ValueError(f"host topology needs at least one rank, got {host_of!r}")
        canonical: Dict[object, int] = {}
        dense: List[int] = []
        for label in host_of:
            if label not in canonical:
                canonical[label] = len(canonical)
            dense.append(canonical[label])
        object.__setattr__(self, "host_of", tuple(dense))

    # -- constructors ------------------------------------------------------

    @classmethod
    def single_host(cls, world_size: int) -> "HostTopology":
        """All ranks on one host (the degenerate flat topology)."""
        if world_size < 1:
            raise ValueError(f"world size must be >= 1, got {world_size}")
        return cls([0] * world_size)

    @classmethod
    def from_string(cls, spec: str) -> "HostTopology":
        """Parse ``"0,0,1,1"``-style rank->host specs (REPRO_HOST_TOPOLOGY).

        Each comma-separated entry is the host label of the rank at that
        position.  Labels need not be numeric: ``"a,a,b,b"`` works too.
        """
        labels = [s.strip() for s in spec.split(",") if s.strip()]
        if not labels:
            raise ValueError(f"empty host topology spec {spec!r}")
        return cls(labels)

    @classmethod
    def from_hosts(cls, ranks_per_host: Sequence[int]) -> "HostTopology":
        """Build a topology from per-host rank counts, e.g. ``[3, 1]``."""
        if not ranks_per_host or any(n < 1 for n in ranks_per_host):
            raise ValueError(
                f"ranks_per_host entries must be >= 1, got {list(ranks_per_host)}"
            )
        labels: List[int] = []
        for host, count in enumerate(ranks_per_host):
            labels.extend([host] * count)
        return cls(labels)

    # -- queries -----------------------------------------------------------

    @property
    def world_size(self) -> int:
        return len(self.host_of)

    @property
    def num_hosts(self) -> int:
        return max(self.host_of) + 1

    @property
    def is_single_host(self) -> bool:
        return self.num_hosts == 1

    def host(self, rank: int) -> int:
        """Host index of ``rank``."""
        _validate(self.world_size, rank)
        return self.host_of[rank]

    def ranks_on_host(self, host: int) -> Tuple[int, ...]:
        """All ranks placed on ``host``, in ascending rank order."""
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range for {self.num_hosts} hosts")
        return tuple(r for r, h in enumerate(self.host_of) if h == host)

    def local_ranks(self, rank: int) -> Tuple[int, ...]:
        """All ranks sharing ``rank``'s host (including ``rank`` itself)."""
        return self.ranks_on_host(self.host(rank))

    def local_index(self, rank: int) -> int:
        """Position of ``rank`` within its host group (0 = the leader)."""
        return self.local_ranks(rank).index(rank)

    def leader_of(self, host: int) -> int:
        """The leader (lowest rank) of ``host``."""
        return self.ranks_on_host(host)[0]

    @property
    def leaders(self) -> Tuple[int, ...]:
        """Per-host leader ranks, indexed by host."""
        return tuple(self.leader_of(h) for h in range(self.num_hosts))

    def is_leader(self, rank: int) -> bool:
        return self.leader_of(self.host(rank)) == rank

    def leader_index(self, rank: int) -> int:
        """Host index of a leader ``rank`` (its position in ``leaders``)."""
        if not self.is_leader(rank):
            raise ValueError(f"rank {rank} is not a host leader")
        return self.host(rank)

    def to_string(self) -> str:
        """Inverse of :meth:`from_string` (canonical labels)."""
        return ",".join(str(h) for h in self.host_of)


def intra_reduce_edges(topology: HostTopology, host: int) -> List[Tuple[int, int]]:
    """``(sender, receiver)`` edges of the intra-host reduce to the leader.

    The reduction runs the binomial broadcast tree *in reverse*: leaves
    send first, inner nodes combine their subtree before forwarding, so
    the leader performs ``O(log n)`` receives instead of ``n - 1``.  The
    edge list is ordered so every sender appears only after all of its
    own children have sent (a valid sequential reduce schedule).
    """
    local = topology.ranks_on_host(host)
    n = len(local)
    if n == 1:
        return []
    # Reverse of the broadcast edge order: deepest edges first.
    edges = bcast_order(n, root=0)
    return [(local[child], local[parent]) for parent, child in reversed(edges)]


def intra_bcast_edges(topology: HostTopology, host: int) -> List[Tuple[int, int]]:
    """``(sender, receiver)`` edges broadcasting the result from the leader."""
    local = topology.ranks_on_host(host)
    if len(local) == 1:
        return []
    return [
        (local[src], local[dst]) for src, dst in bcast_order(len(local), root=0)
    ]


def leader_ring_neighbors(topology: HostTopology, rank: int) -> Tuple[int, int]:
    """``(predecessor, successor)`` of leader ``rank`` on the leader ring.

    The inter-host reduce-scatter/allgather runs a ring over the leaders
    only; non-leader ranks never appear on inter-host links.
    """
    leaders = topology.leaders
    idx = topology.leader_index(rank)
    pred, succ = ring_neighbors(idx, len(leaders))
    return (leaders[pred], leaders[succ])
