"""Communication topologies used by the collective algorithms.

The activation phase of a partial collective broadcasts a small message
along a *binomial tree rooted at the initiator* (the union of ``P``
binomial trees described in Section 4.1.1 of the paper); the reduction
itself uses *recursive doubling* (hypercube exchange).  This module
provides the pure rank arithmetic for those patterns so that both the
thread-backed implementation and the discrete-event simulator share a
single source of truth.
"""

from __future__ import annotations

import math
from typing import List, Tuple


def _validate(size: int, rank: int = 0, root: int = 0) -> None:
    if size < 1:
        raise ValueError(f"world size must be >= 1, got {size}")
    if not 0 <= rank < size:
        raise ValueError(f"rank {rank} out of range for size {size}")
    if not 0 <= root < size:
        raise ValueError(f"root {root} out of range for size {size}")


def tree_depth(size: int) -> int:
    """Depth of a binomial broadcast tree over ``size`` ranks."""
    _validate(size)
    return int(math.ceil(math.log2(size))) if size > 1 else 0


def binomial_tree_children(rank: int, size: int, root: int = 0) -> List[int]:
    """Children of ``rank`` in the binomial tree rooted at ``root``.

    The tree is defined on *relative* ranks ``v = (rank - root) mod size``
    by the doubling broadcast recursion: in round ``k`` (``k = 0, 1, ...``)
    every already-reached rank ``v < 2^k`` sends to ``v + 2^k`` when that
    target exists.  A rank ``v > 0`` is therefore first reached in the
    round given by its highest set bit and forwards in every later round.
    This is exactly the "union of P binomial trees" activation pattern of
    Section 4.1.1: the same arithmetic serves any root.
    """
    _validate(size, rank, root)
    v = (rank - root) % size
    depth = tree_depth(size)
    # Round in which v is first reached (-1 for the root, which starts
    # sending in round 0).
    reached_round = v.bit_length() - 1 if v > 0 else -1
    children = []
    for k in range(reached_round + 1, depth):
        child = v + (1 << k)
        if child < size:
            children.append((child + root) % size)
    return children


def binomial_tree_parent(rank: int, size: int, root: int = 0) -> int:
    """Parent of ``rank`` in the binomial tree rooted at ``root``.

    The root's parent is itself.
    """
    _validate(size, rank, root)
    v = (rank - root) % size
    if v == 0:
        return root
    # Clear the highest set bit to obtain the parent's relative rank.
    parent_v = v & ~(1 << (v.bit_length() - 1))
    return (parent_v + root) % size


def binomial_tree_level(rank: int, size: int, root: int = 0) -> int:
    """Distance (number of hops) from ``root`` to ``rank`` in the tree."""
    _validate(size, rank, root)
    v = (rank - root) % size
    return bin(v).count("1")


def recursive_doubling_rounds(rank: int, size: int) -> List[int]:
    """Exchange partners of ``rank`` for recursive-doubling allreduce.

    Only defined when ``size`` is a power of two; the non-power-of-two case
    is handled by the calling algorithm (fold-in pre/post steps).
    """
    _validate(size, rank)
    if size & (size - 1):
        raise ValueError(f"recursive doubling requires a power-of-two size, got {size}")
    partners = []
    dist = 1
    while dist < size:
        partners.append(rank ^ dist)
        dist <<= 1
    return partners


def hypercube_neighbors(rank: int, size: int) -> List[int]:
    """All hypercube neighbours of ``rank`` (alias of the RD partners)."""
    return recursive_doubling_rounds(rank, size)


def ring_neighbors(rank: int, size: int) -> Tuple[int, int]:
    """``(predecessor, successor)`` of ``rank`` on the ring."""
    _validate(size, rank)
    return ((rank - 1) % size, (rank + 1) % size)


def largest_power_of_two_leq(n: int) -> int:
    """Largest power of two that is ``<= n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n.bit_length() - 1)


def is_power_of_two(n: int) -> bool:
    """Whether ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def bcast_order(size: int, root: int = 0) -> List[Tuple[int, int]]:
    """Flattened ``(sender, receiver)`` edge list of the binomial broadcast.

    The edges are listed level by level, which is the order in which they
    can first be scheduled; it is used by the simulator to compute the
    per-rank activation arrival time.
    """
    _validate(size, root=root)
    edges: List[Tuple[int, int]] = []
    frontier = [root]
    reached = {root}
    while len(reached) < size:
        next_frontier: List[int] = []
        for sender in frontier:
            for child in binomial_tree_children(sender, size, root):
                if child not in reached:
                    edges.append((sender, child))
                    reached.add(child)
                    next_frontier.append(child)
        if not next_frontier:
            # Defensive: should never happen for a correct tree.
            missing = sorted(set(range(size)) - reached)
            raise RuntimeError(f"broadcast tree did not reach ranks {missing}")
        frontier = next_frontier
    return edges
