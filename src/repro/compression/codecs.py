"""Built-in gradient codecs.

Each codec documents its wire format, whether it is reduce-closed (see
:mod:`repro.compression.base`), and its error bound.  All encoders take
a dense 1-D ``float64`` buffer (one fusion bucket) and all decoders
return one.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.comm import reduce_kernels
from repro.compression.base import (
    DENSE_BYTES_PER_ELEMENT,
    EncodedGradient,
    GradientCodec,
    register_codec,
)

#: Book-keeping bytes of a composite payload (per-bucket scalar header).
_SCALAR_HEADER_BYTES = 8


@register_codec("none")
class NoneCodec(GradientCodec):
    """Identity codec: the dense ``float64`` buffer is the wire format."""

    name = "none"
    lossless = True
    reduce_closed = True
    wire_dtype = np.dtype(np.float64)
    wire_is_values = True

    def encode(self, dense: np.ndarray) -> EncodedGradient:
        arr = self._as_dense(dense)
        return EncodedGradient("none", arr.size, arr, arr.nbytes)

    def decode(self, encoded: EncodedGradient) -> np.ndarray:
        self._check(encoded)
        return np.asarray(encoded.payload, dtype=np.float64).reshape(-1)


@register_codec("fp16")
class Fp16Codec(GradientCodec):
    """IEEE binary16 quantization — the only lossy *reduce-closed* codec.

    ``float16 + float16`` is a valid ``float16`` payload, so the
    collectives combine encoded buffers directly (encode before send,
    decode after reduce): 4x fewer wire bytes than the ``float64``
    substrate at every hop.  Relative error is bounded by the 10-bit
    mantissa (~2^-11 ulp); magnitudes above 65504 overflow to ``inf``
    and magnitudes below ~6e-8 flush to zero — gradients live comfortably
    inside that range, and error feedback (off by default) can be enabled
    to recapture the rounding drift.
    """

    name = "fp16"
    reduce_closed = True
    wire_dtype = np.dtype(np.float16)
    wire_is_values = True
    encode_seconds_per_byte = 2.7e-10
    decode_seconds_per_byte = 1.0e-10

    def encode(self, dense: np.ndarray) -> EncodedGradient:
        arr = self._as_dense(dense)
        payload = arr.astype(np.float16)
        return EncodedGradient("fp16", arr.size, payload, payload.nbytes)

    def decode(self, encoded: EncodedGradient) -> np.ndarray:
        self._check(encoded)
        return np.asarray(encoded.payload).astype(np.float64).reshape(-1)


@register_codec("bf16")
class Bf16Codec(GradientCodec):
    """bfloat16 truncation (8-bit mantissa, full float32 exponent range).

    NumPy has no native bfloat16, so the wire payload is the upper 16
    bits of the round-to-nearest-even float32 representation, carried as
    ``uint16``.  Because ``uint16`` bit patterns cannot be summed, the
    codec is *not* reduce-closed and travels through the
    decode-reduce-encode (allgather) path.  Relative error ~2^-9; no
    overflow for any float32-representable gradient (unlike fp16).
    """

    name = "bf16"
    reduce_closed = False
    wire_dtype = np.dtype(np.uint16)
    encode_seconds_per_byte = 2.9e-10
    decode_seconds_per_byte = 1.5e-10

    def encode(self, dense: np.ndarray) -> EncodedGradient:
        arr = self._as_dense(dense)
        # Round to nearest even before truncating the low mantissa bits
        # (the shared wire transform of repro.comm.reduce_kernels).
        payload = reduce_kernels.bf16_narrow(arr)
        return EncodedGradient("bf16", arr.size, payload, payload.nbytes)

    def decode(self, encoded: EncodedGradient) -> np.ndarray:
        self._check(encoded)
        return reduce_kernels.bf16_widen(encoded.payload, dtype=np.float64).reshape(-1)


@register_codec("int8")
class Int8Codec(GradientCodec):
    """8-bit linear quantization with one symmetric scale per bucket.

    Wire format: ``(int8 codes, float64 scale)`` with
    ``scale = max|g| / 127``; decoding is ``codes * scale``.  Per-rank
    scales differ, so the codec is not reduce-closed.  Absolute error is
    bounded by ``scale / 2`` per element; enable error feedback
    (``int8:error_feedback=on``) to keep the rounding drift out of
    long trainings.
    """

    name = "int8"
    reduce_closed = False
    encode_seconds_per_byte = 2.8e-10
    decode_seconds_per_byte = 1.5e-10

    def encode(self, dense: np.ndarray) -> EncodedGradient:
        arr = self._as_dense(dense)
        peak = float(np.max(np.abs(arr)))
        scale = peak / 127.0 if peak > 0 else 1.0
        codes = np.clip(np.rint(arr / scale), -127, 127).astype(np.int8)
        # One flat uint8 payload (scale header + codes): a single ndarray
        # crosses the process transport as a zero-copy frame, where a
        # (codes, scale) tuple would be pickled on every allgather hop.
        payload = np.empty(codes.nbytes + _SCALAR_HEADER_BYTES, dtype=np.uint8)
        payload[:_SCALAR_HEADER_BYTES].view(np.float64)[0] = scale
        payload[_SCALAR_HEADER_BYTES:] = codes.view(np.uint8)
        return EncodedGradient("int8", arr.size, payload, payload.nbytes)

    @staticmethod
    def split_payload(payload: np.ndarray):
        """``(int8 codes, scale)`` view of the flat wire payload."""
        payload = np.ascontiguousarray(np.asarray(payload, dtype=np.uint8))
        scale = float(payload[:_SCALAR_HEADER_BYTES].view(np.float64)[0])
        return payload[_SCALAR_HEADER_BYTES:].view(np.int8), scale

    def decode(self, encoded: EncodedGradient) -> np.ndarray:
        self._check(encoded)
        codes, scale = self.split_payload(encoded.payload)
        return codes.astype(np.float64) * scale

    def wire_bytes(self, num_elements: int) -> int:
        return int(num_elements) + _SCALAR_HEADER_BYTES


@register_codec("topk")
class TopKCodec(GradientCodec):
    """Magnitude sparsification: only the top-``k`` elements travel.

    Wire format: ``(int32/int64 indices, float32 values)`` of the ``k``
    largest-magnitude elements (``k = ceil(ratio * n)`` unless ``k`` is
    given explicitly); decoding scatters them into a dense zero buffer.
    Per-rank supports differ, so the codec is not reduce-closed.

    Error feedback is **on by default**: plain top-k would silently drop
    the same small coordinates step after step and convergence stalls;
    with per-parameter residuals the dropped mass is re-injected the
    following step, which is what makes sparsified SGD converge to
    seed-comparable loss (EF-SGD).  Disable only for ablations
    (``topk:error_feedback=off``).

    Options
    -------
    ratio:
        Fraction of elements kept per bucket (default 0.01).
    k:
        Explicit element count per bucket (overrides ``ratio``).
    """

    name = "topk"
    reduce_closed = False
    default_error_feedback = True
    encode_seconds_per_byte = 4.0e-10  # argpartition over the dense buffer
    decode_seconds_per_byte = 1.0e-10

    def __init__(
        self,
        *,
        ratio: float = 0.01,
        k: Optional[int] = None,
        error_feedback: Optional[bool] = None,
        **options: Any,
    ) -> None:
        super().__init__(error_feedback=error_feedback, **options)
        if k is not None:
            if int(k) < 1:
                raise ValueError(f"topk k must be >= 1, got {k}")
            self.k = int(k)
            self.ratio = None
        else:
            if not 0.0 < float(ratio) <= 1.0:
                raise ValueError(f"topk ratio must be in (0, 1], got {ratio}")
            self.k = None
            self.ratio = float(ratio)

    def _bucket_k(self, num_elements: int) -> int:
        if self.k is not None:
            return min(self.k, num_elements)
        return max(1, int(np.ceil(self.ratio * num_elements)))

    def encode(self, dense: np.ndarray) -> EncodedGradient:
        arr = self._as_dense(dense)
        k = self._bucket_k(arr.size)
        if k >= arr.size:
            indices = np.arange(arr.size)
        else:
            indices = np.argpartition(np.abs(arr), arr.size - k)[arr.size - k:]
        indices = np.sort(indices)  # deterministic order for a given input
        idx = indices.astype(np.int32 if arr.size <= np.iinfo(np.int32).max else np.int64)
        values = arr[indices].astype(np.float32)
        # One flat uint8 payload (indices then values): a single ndarray
        # crosses the process transport as a zero-copy frame instead of a
        # pickled tuple.  k and the index width are recovered from the
        # payload length and the bucket's element count.
        payload = np.empty(idx.nbytes + values.nbytes, dtype=np.uint8)
        payload[: idx.nbytes] = idx.view(np.uint8)
        payload[idx.nbytes:] = values.view(np.uint8)
        return EncodedGradient("topk", arr.size, payload, payload.nbytes)

    @staticmethod
    def split_payload(payload: np.ndarray, num_elements: int):
        """``(indices, float32 values)`` view of the flat wire payload."""
        payload = np.ascontiguousarray(np.asarray(payload, dtype=np.uint8))
        idx_itemsize = 4 if num_elements <= np.iinfo(np.int32).max else 8
        k = payload.size // (idx_itemsize + 4)
        idx_dtype = np.int32 if idx_itemsize == 4 else np.int64
        indices = payload[: k * idx_itemsize].view(idx_dtype)
        values = payload[k * idx_itemsize:].view(np.float32)
        return indices, values

    def decode(self, encoded: EncodedGradient) -> np.ndarray:
        self._check(encoded)
        idx, values = self.split_payload(encoded.payload, encoded.num_elements)
        out = np.zeros(encoded.num_elements, dtype=np.float64)
        out[idx] = values.astype(np.float64)
        return out

    def wire_bytes(self, num_elements: int) -> int:
        k = self._bucket_k(int(num_elements))
        idx_bytes = 4 if num_elements <= np.iinfo(np.int32).max else 8
        return k * (idx_bytes + 4)

    def describe(self) -> str:
        keep = f"k={self.k}" if self.k is not None else f"ratio={self.ratio:g}"
        ef = "on" if self.error_feedback else "off"
        return f"topk ({keep}, error-feedback {ef})"
