"""Pluggable gradient compression (quantization and sparsification).

See :mod:`repro.compression.base` for the codec interface, the
reduce-closed / decode-reduce-encode distinction and the error-feedback
semantics, and :mod:`repro.compression.codecs` for the built-in codecs
(``none``, ``fp16``, ``bf16``, ``int8``, ``topk``).
"""

from repro.compression.base import (
    DENSE_BYTES_PER_ELEMENT,
    BucketCompressor,
    EncodedGradient,
    GradientCodec,
    available_codecs,
    get_codec,
    parse_codec_spec,
    register_codec,
    resolve_codec,
)
from repro.compression.codecs import (
    Bf16Codec,
    Fp16Codec,
    Int8Codec,
    NoneCodec,
    TopKCodec,
)

__all__ = [
    "DENSE_BYTES_PER_ELEMENT",
    "BucketCompressor",
    "EncodedGradient",
    "GradientCodec",
    "available_codecs",
    "get_codec",
    "parse_codec_spec",
    "register_codec",
    "resolve_codec",
    "Bf16Codec",
    "Fp16Codec",
    "Int8Codec",
    "NoneCodec",
    "TopKCodec",
]
