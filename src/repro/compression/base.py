"""Gradient-compression codecs: the interface and the registry.

The paper's core bet is that distributed SGD tolerates a *bounded
perturbation* of the gradient exchange — partial collectives perturb
**which** gradients are combined; lossy compression perturbs **how many
bits** of each gradient cross the wire.  This module is the seam between
the two: a :class:`GradientCodec` turns a dense ``float64`` fusion
buffer into a compact wire representation and back, and the gradient
exchanges (:mod:`repro.training.exchange`) apply the codec per fusion
bucket around their collectives.

Codecs register themselves in a name-keyed registry
(:func:`register_codec`), mirroring the comm-backend registry idiom
(:mod:`repro.comm.backend`); the built-ins live in
:mod:`repro.compression.codecs`:

``"none"``
    Identity codec (dense ``float64`` wire), the uncompressed baseline.
``"fp16"`` / ``"bf16"``
    Half-precision quantization (IEEE binary16 / bfloat16 truncation).
``"int8"``
    8-bit linear quantization with one shared scale per fusion bucket.
``"topk"``
    Magnitude sparsification: only the ``k`` largest-magnitude elements
    travel; the dropped mass is preserved by error feedback.

Reduce-closed vs. decode-reduce-encode
--------------------------------------
A codec is **reduce-closed** when the elementwise sum of two encoded
payloads is the encoding of (approximately) the summed gradients —
``fp16`` is: ``float16 + float16`` is a valid ``float16`` payload, so an
allreduce can combine encoded payloads directly and only the reduced
result needs decoding ("encode before send, decode after reduce").
``int8`` (per-rank scales differ), ``bf16`` (``uint16`` bit patterns)
and ``topk`` (per-rank support sets differ) are **not** reduce-closed:
summing their payloads elementwise is meaningless, so every hop of a
combining collective would have to *decode, reduce densely, and
re-encode*.  The synchronous exchange implements that path as a single
allgather of encoded payloads followed by a dense local reduction — the
wire still carries the compact encoding, and decode-reduce happens once
instead of per hop.  (The partial collectives' background reduction
operates on a persistent dense buffer, so for non-reduce-closed codecs
the partial exchange applies the codec as a local
quantize-and-compensate transform and the background wire stays dense;
see :class:`repro.training.exchange.PartialExchange`.)

Error feedback
--------------
Lossy codecs drop information every step; *error feedback* (1-bit SGD,
Seide et al.; EF-SGD, Karimireddy et al.) keeps the dropped part as a
per-parameter residual that is added back into the next step's gradient
before encoding, so the quantization error accumulates into the model
instead of being lost.  :class:`BucketCompressor` owns those residuals
per fusion bucket; for ``topk`` error feedback is on by default (without
it, sparsification systematically discards the same small coordinates
and convergence stalls).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Tuple, Type, Union

import numpy as np

#: Dense element width of the substrate (gradients are ``float64``).
DENSE_BYTES_PER_ELEMENT = 8


@dataclass(frozen=True)
class EncodedGradient:
    """One fusion bucket's gradient in a codec's wire representation."""

    #: Name of the codec that produced the payload.
    codec: str
    #: Dense element count the payload decodes back to.
    num_elements: int
    #: The wire payload: a single ndarray for reduce-closed codecs (so a
    #: collective can combine it directly), or a small picklable tuple of
    #: ndarrays/scalars otherwise.  Always safe to send through any comm
    #: backend (the process transport pickles non-array payloads).
    payload: Any
    #: Encoded wire size in bytes (what the transport actually carries).
    nbytes: int

    def with_payload(self, payload: Any) -> "EncodedGradient":
        """Same encoding metadata around a new payload (e.g. post-reduce)."""
        return replace(self, payload=payload)


class GradientCodec(ABC):
    """A lossless or lossy gradient wire format.

    Subclasses set the class attributes and implement
    :meth:`encode` / :meth:`decode`; everything else (registry
    resolution, config plumbing, CLI flags, cost modelling) is shared.

    Parameters
    ----------
    error_feedback:
        Keep per-parameter residuals of the encoding error and re-inject
        them the following step (see :class:`BucketCompressor`).
        ``None`` uses the codec's :attr:`default_error_feedback`.
    """

    #: Registry key of the codec.
    name: str = "abstract"
    #: Whether ``decode(encode(x)) == x`` bit-exactly.
    lossless: bool = False
    #: Whether encoded payloads can be combined elementwise by a
    #: reduction (see module docstring).
    reduce_closed: bool = False
    #: Whether error feedback is enabled when the caller does not say.
    default_error_feedback: bool = False
    #: Wire dtype of the payload for reduce-closed codecs (the dtype the
    #: collective reduces in); ``None`` for composite payloads.
    wire_dtype: Optional[np.dtype] = None
    #: Whether the wire payload's elements *are* the decoded values (a
    #: value-preserving widening cast reverses :meth:`encode`).  Lets
    #: collectives fold wire payloads into a dense accumulator with one
    #: fused cast (:func:`repro.comm.reduce_kernels.accumulate_wire`)
    #: instead of calling :meth:`decode`.  A codec whose decode applies
    #: any transform (scaling, offsets, bit reinterpretation) must leave
    #: this ``False`` even if its wire dtype is a float.
    wire_is_values: bool = False
    #: Rough per-dense-byte costs of the transform, used by the simtime
    #: cost model (:func:`cost_model`).  Calibrated against ``numpy``
    #: ``astype``/``argpartition`` throughput on commodity CPUs; they
    #: only need the right order of magnitude to steer the autotuner.
    encode_seconds_per_byte: float = 0.0
    decode_seconds_per_byte: float = 0.0

    def __init__(self, *, error_feedback: Optional[bool] = None, **options: Any) -> None:
        if options:
            raise ValueError(
                f"codec {self.name!r} does not accept options {sorted(options)}"
            )
        self.error_feedback = (
            self.default_error_feedback if error_feedback is None else bool(error_feedback)
        )
        if self.error_feedback and self.lossless:
            raise ValueError(
                f"codec {self.name!r} is lossless; error feedback is meaningless"
            )

    # ------------------------------------------------------------ transform
    @abstractmethod
    def encode(self, dense: np.ndarray) -> EncodedGradient:
        """Encode a dense 1-D ``float64`` gradient buffer for the wire."""

    @abstractmethod
    def decode(self, encoded: EncodedGradient) -> np.ndarray:
        """Decode a wire payload back to a dense 1-D ``float64`` buffer."""

    # ------------------------------------------------------------ modelling
    @property
    def wire_bytes_per_element(self) -> float:
        """Average encoded bytes per dense element (may be fractional)."""
        probe = 1 << 12
        return self.wire_bytes(probe) / probe

    def wire_bytes(self, num_elements: int) -> int:
        """Modelled encoded size of a ``num_elements`` bucket, in bytes.

        The default assumes a fixed-width payload of :attr:`wire_dtype`;
        codecs with composite payloads override it.
        """
        if self.wire_dtype is None:
            raise NotImplementedError(
                f"codec {self.name!r} must override wire_bytes()"
            )
        return int(num_elements) * np.dtype(self.wire_dtype).itemsize

    def cost_model(self):
        """The codec as a :class:`repro.simtime.collective_model.CompressionModel`."""
        from repro.simtime.collective_model import CompressionModel

        return CompressionModel(
            name=self.name,
            wire_scale=self.wire_bytes_per_element / DENSE_BYTES_PER_ELEMENT,
            encode_seconds_per_byte=self.encode_seconds_per_byte,
            decode_seconds_per_byte=self.decode_seconds_per_byte,
            reduce_closed=self.reduce_closed,
        )

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        ef = ", error-feedback" if self.error_feedback else ""
        return f"{self.name} ({self.wire_bytes_per_element:g} B/elem{ef})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _as_dense(dense: np.ndarray) -> np.ndarray:
        arr = np.asarray(dense, dtype=np.float64).reshape(-1)
        if arr.size < 1:
            raise ValueError(
                f"cannot encode an empty gradient buffer (shape {np.shape(dense)})"
            )
        return arr

    def _check(self, encoded: EncodedGradient) -> EncodedGradient:
        if encoded.codec != self.name:
            raise ValueError(
                f"payload was encoded by {encoded.codec!r}, not by {self.name!r}"
            )
        return encoded


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, Type[GradientCodec]] = {}


def register_codec(name: str) -> Callable[[Type[GradientCodec]], Type[GradientCodec]]:
    """Class decorator adding a :class:`GradientCodec` to the registry.

    Unlike comm backends (stateless singletons), codecs are instantiated
    per use: a codec instance carries configuration (``topk`` ratio,
    error-feedback flag) and, through :class:`BucketCompressor`, per-rank
    residual state — so the registry stores classes, and
    :func:`get_codec` builds a fresh configured instance.
    """

    def decorator(cls: Type[GradientCodec]) -> Type[GradientCodec]:
        if not cls.name or cls.name == "abstract":
            cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def _load_builtins() -> None:
    if "none" not in _REGISTRY:
        import repro.compression.codecs  # noqa: F401 - registers built-ins


def available_codecs() -> Tuple[str, ...]:
    """Names of every registered codec (built-ins included)."""
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def _coerce_option(value: str) -> Any:
    """Parse one ``key=value`` option value from a codec spec string."""
    lowered = value.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def parse_codec_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name"`` or ``"name:key=value,key=value"`` into parts.

    The spec form is what the CLI's ``--compression`` flag accepts, e.g.
    ``--compression topk:ratio=0.05,error_feedback=off``.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"codec spec must be a non-empty string, got {spec!r}")
    name, _, tail = spec.partition(":")
    name = name.strip()
    options: Dict[str, Any] = {}
    if tail.strip():
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip() or not value.strip():
                raise ValueError(
                    f"malformed codec option {item!r} in spec {spec!r}; "
                    f"expected key=value"
                )
            options[key.strip()] = _coerce_option(value.strip())
    return name, options


def get_codec(
    spec: Union[str, GradientCodec, None] = None, **options: Any
) -> GradientCodec:
    """Resolve a codec spec to a configured :class:`GradientCodec` instance.

    ``spec`` may be a registered name (``"fp16"``), a spec string with
    inline options (``"topk:ratio=0.05"``), an already-built codec
    (returned as-is; keyword options are then rejected), or ``None``
    (resolves to the ``"none"`` codec).  Keyword ``options`` override
    inline spec options.
    """
    if isinstance(spec, GradientCodec):
        if options:
            raise ValueError(
                f"cannot pass options {options!r} together with a codec instance "
                f"({spec.name!r})"
            )
        return spec
    name, inline = parse_codec_spec(spec) if spec is not None else ("none", {})
    inline.update(options)
    _load_builtins()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown compression codec {name!r}; available: {list(available_codecs())}"
        ) from None
    try:
        return cls(**inline)
    except TypeError as exc:
        raise ValueError(f"invalid options for codec {name!r}: {exc}") from None


def resolve_codec(
    spec: Union[str, GradientCodec, None] = None,
    options: Optional[Dict[str, Any]] = None,
) -> Optional[GradientCodec]:
    """Resolve a spec for a wire path: ``None`` means *uncompressed*.

    The exchanges, the runner and the experiment harnesses all need the
    same normalisation — ``None`` and ``"none"`` (with no options) both
    select the plain dense path, anything else a configured codec.
    """
    if spec is None and not options:
        return None
    codec = get_codec(spec, **(options or {}))
    return None if codec.name == "none" else codec


# ---------------------------------------------------------------------------
# error feedback
# ---------------------------------------------------------------------------
class BucketCompressor:
    """Applies one codec per fusion bucket, with error-feedback residuals.

    One instance per rank per exchange.  For codecs with
    ``error_feedback`` enabled, each bucket keeps a per-parameter
    residual ``r_b``; step ``t`` encodes the *compensated* gradient
    ``g_b + r_b`` and the new residual is whatever the encoding dropped::

        c_b   = g_b + r_b
        e_b   = encode(c_b)
        r_b'  = c_b - decode(e_b)

    so ``decode(e_b) + r_b' == c_b`` exactly — no gradient mass is ever
    lost, it is merely delayed (re-injected the following step).
    """

    def __init__(self, codec: GradientCodec) -> None:
        self.codec = codec
        self._residuals: Dict[int, np.ndarray] = {}
        #: Total encoded bytes this rank produced (wire-byte accounting).
        self.bytes_encoded = 0

    def encode_bucket(self, bucket_index: int, dense: np.ndarray) -> EncodedGradient:
        """Encode one bucket, compensating with and updating its residual."""
        dense = np.asarray(dense, dtype=np.float64).reshape(-1)
        if self.codec.error_feedback:
            residual = self._residuals.get(bucket_index)
            compensated = dense if residual is None else dense + residual
            encoded = self.codec.encode(compensated)
            self._residuals[bucket_index] = compensated - self.codec.decode(encoded)
        else:
            encoded = self.codec.encode(dense)
        self.bytes_encoded += encoded.nbytes
        return encoded

    def decode_bucket(self, encoded: EncodedGradient) -> np.ndarray:
        return self.codec.decode(encoded)

    def compensate_bucket(self, bucket_index: int, dense: np.ndarray) -> np.ndarray:
        """Error-feedback compensation without materialising a payload.

        Used by wire paths that encode internally (the compressed ring of
        :func:`repro.collectives.sync.allreduce_compressed_ring`): the
        compensated dense gradient is returned for the collective to
        encode hop by hop, and the residual is updated through a local
        round-trip — elementwise codecs quantize a chunk exactly as they
        quantize the whole buffer, so the accounting matches what the
        wire will carry.
        """
        dense = np.asarray(dense, dtype=np.float64).reshape(-1)
        if not self.codec.error_feedback:
            return dense
        residual = self._residuals.get(bucket_index)
        compensated = dense if residual is None else dense + residual
        self._residuals[bucket_index] = compensated - self.codec.decode(
            self.codec.encode(compensated)
        )
        return compensated

    def residual_norm(self) -> float:
        """L2 norm of all pending residuals (0 without error feedback)."""
        if not self._residuals:
            return 0.0
        return float(
            np.sqrt(sum(float(np.dot(r, r)) for r in self._residuals.values()))
        )
