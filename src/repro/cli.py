"""Command-line interface: run any paper experiment from the shell.

Examples
--------
::

    python -m repro list
    python -m repro fig9  --world-size 32 --iterations 64
    python -m repro fig2
    python -m repro fig10 --scale tiny
    python -m repro fig13 --scale small
    python -m repro scaling
    python -m repro table1 --scale paper

Each sub-command runs the corresponding harness from
:mod:`repro.experiments` and prints its paper-vs-reproduction report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    autotune as autotune_experiment,
    fig2_workload,
    fig3_wmt_runtime,
    fig4_cloud_runtime,
    fig9_microbenchmark,
    fig10_hyperplane,
    fig11_imagenet,
    fig12_cifar_severe,
    fig13_ucf101_lstm,
    fusion_pipeline,
    scaling,
    speedups,
    table1_networks,
)

#: Description of every sub-command, shown by ``python -m repro list``.
EXPERIMENTS: Dict[str, str] = {
    "fig2": "UCF101 video-length and LSTM batch-runtime distributions",
    "fig3": "Transformer/WMT batch-runtime distribution",
    "fig4": "cloud ResNet-50 batch-runtime distribution",
    "table1": "evaluated networks (parameter counts, dataset sizes)",
    "fig9": "partial allreduce latency microbenchmark + NAP",
    "fig10": "hyperplane regression: synch-SGD vs eager-SGD (solo)",
    "fig11": "ResNet/ImageNet-like: Deep500/Horovod vs eager-SGD (solo)",
    "fig12": "ResNet/CIFAR-like under severe imbalance: Horovod/solo/majority",
    "fig13": "LSTM/UCF101-like video classification: Horovod/solo/majority",
    "speedups": "headline speedup summary across the training figures",
    "scaling": "strong/weak scaling projections",
    "fusion": "fused/chunked gradient-exchange pipeline vs. unfused baseline",
    "tune": "calibrate the LogGP model to a comm backend and auto-tune fusion",
    "serve": "online inference tier: dynamic batching + replica routing + "
    "live weight hot-swap (serve-while-train on any backend)",
    "trace": "flight-recorder a small training run and export a Perfetto "
    "(Chrome trace-event) JSON timeline with per-rank tracks",
    "verify": "statically verify collective schedules, tags and the shm ring",
    "lint": "repo-specific AST lint (tag discipline, shm cleanup, framing)",
}


def _add_backend_argument(p: argparse.ArgumentParser, help_text: str) -> None:
    """Add the shared ``--backend`` option to a sub-command parser."""
    from repro.comm.backend import available_backends

    p.add_argument(
        "--backend",
        choices=list(available_backends()),
        default=None,
        help=f"{help_text} (default: the process-wide default backend, "
        "'thread' unless REPRO_COMM_BACKEND overrides it)",
    )


def _codec_spec(value: str) -> str:
    """argparse type for ``--compression``: validate the codec spec eagerly."""
    from repro.compression import get_codec

    try:
        get_codec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _add_compression_argument(p: argparse.ArgumentParser, help_text: str) -> None:
    """Add the shared ``--compression`` option to a sub-command parser."""
    from repro.compression import available_codecs

    p.add_argument(
        "--compression",
        type=_codec_spec,
        default=None,
        metavar="CODEC[:k=v,...]",
        help=f"{help_text}; codecs: {', '.join(available_codecs())} "
        "(inline options allowed, e.g. topk:ratio=0.05) "
        "(default: uncompressed)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of eager-SGD with partial collective operations "
        "(Li et al., PPoPP 2020).",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list the available experiments")

    p = sub.add_parser("fig2", help=EXPERIMENTS["fig2"])
    p.add_argument("--num-videos", type=int, default=9_537)
    p.add_argument("--batch-size", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig3", help=EXPERIMENTS["fig3"])
    p.add_argument("--num-sentences", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig4", help=EXPERIMENTS["fig4"])
    p.add_argument("--num-batches", type=int, default=30_000)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("table1", help=EXPERIMENTS["table1"])
    p.add_argument("--scale", choices=["small", "paper"], default="small")

    p = sub.add_parser("fig9", help=EXPERIMENTS["fig9"])
    p.add_argument("--world-size", type=int, default=32)
    p.add_argument("--iterations", type=int, default=64)
    p.add_argument("--skew-ms", type=float, default=1.0)
    p.add_argument(
        "--functional",
        action="store_true",
        help="also measure the real collectives at reduced scale",
    )
    _add_backend_argument(p, "comm backend of the functional measurements")
    _add_compression_argument(p, "gradient codec carried by the collectives")

    for name, scales in (
        ("fig10", ("tiny", "small", "paper")),
        ("fig11", ("tiny", "small", "large")),
        ("fig12", ("tiny", "small", "large")),
        ("fig13", ("tiny", "small", "large")),
    ):
        p = sub.add_parser(name, help=EXPERIMENTS[name])
        p.add_argument("--scale", choices=scales, default="tiny")
        p.add_argument("--seed", type=int, default=0)
        _add_backend_argument(p, "comm backend carrying the training ranks")
        _add_compression_argument(p, "gradient codec of the exchange")

    p = sub.add_parser("speedups", help=EXPERIMENTS["speedups"])
    p.add_argument("--scale", default="tiny")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("scaling", help=EXPERIMENTS["scaling"])
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fusion", help=EXPERIMENTS["fusion"])
    p.add_argument(
        "--world-sizes", type=str, default="4,8,16,32",
        help="comma-separated world sizes for the analytic comparison",
    )
    p.add_argument("--gradient-mb", type=float, default=4.0,
                   help="simulated gradient size in MB")
    p.add_argument("--bucket-mb", type=str, default="1,4",
                   help="comma-separated fusion-buffer sizes in MB")
    p.add_argument("--pipeline-chunks", type=int, default=8,
                   help="segments per collective round (chunk pipelining)")
    p.add_argument(
        "--functional", action="store_true",
        help="also run the real exchange at reduced scale",
    )
    p.add_argument(
        "--functional-world-size", type=int, default=4,
        help="world size of the functional (real-transport) validation",
    )
    p.add_argument(
        "--sharding", default="none", choices=["none", "zero1"],
        help="add a ZeRO-1 sharded-exchange functional row (reduce-scatter, "
        "shard-local update, parameter allgather)",
    )
    _add_backend_argument(p, "comm backend of the functional exchange rows")
    _add_compression_argument(p, "gradient codec of the fused exchange")

    p = sub.add_parser("tune", help=EXPERIMENTS["tune"])
    p.add_argument(
        "--world-sizes", type=str, default="2,4,8",
        help="comma-separated world sizes to calibrate (each >= 2)",
    )
    p.add_argument("--gradient-mb", type=float, default=4.0,
                   help="gradient size the fusion grid is tuned for, in MB")
    p.add_argument("--algorithm", default="ring",
                   choices=["ring", "recursive_doubling", "rabenseifner"],
                   help="allreduce algorithm of the tuned exchange")
    p.add_argument("--quick", action="store_true",
                   help="reduced measurement sweep (CI smoke mode)")
    p.add_argument("--force", action="store_true",
                   help="remeasure even when a cached profile exists")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="profile-cache directory (default: $REPRO_TUNING_CACHE_DIR "
                   "or ~/.cache/repro/tuning)")
    p.add_argument("--live-trials", type=int, default=0,
                   help="cross-check this many best grid candidates with live "
                   "exchanges on the calibrated backend")
    _add_backend_argument(p, "comm backend the calibration sweep measures")
    _add_compression_argument(p, "gradient codec the fusion grid is tuned for")

    p = sub.add_parser("serve", help=EXPERIMENTS["serve"])
    p.add_argument("--replicas", type=int, default=2,
                   help="number of model-replica ranks")
    p.add_argument("--train-ranks", type=int, default=1,
                   help="training ranks co-scheduled on the fabric "
                   "(0 = serve-only, weights stay at version 0)")
    p.add_argument("--requests", type=int, default=64,
                   help="total closed-loop requests the workload offers")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent closed-loop client threads")
    p.add_argument("--max-batch-size", type=int, default=8,
                   help="dynamic-batching size bound")
    p.add_argument("--max-queue-delay-ms", type=float, default=5.0,
                   help="dynamic-batching latency bound (SLO knob)")
    p.add_argument("--max-queue-depth", type=int, default=256,
                   help="admission-control queue bound (backpressure beyond it)")
    p.add_argument("--max-staleness", type=int, default=None,
                   help="refuse to serve when more than K versions behind "
                   "(default: serve at any staleness)")
    p.add_argument("--train-steps", type=int, default=50,
                   help="steps each trainer runs before leaving the world")
    p.add_argument("--publish-every", type=int, default=5,
                   help="hot-swap publish period in trainer steps")
    p.add_argument("--input-dim", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=300.0,
                   help="whole-world timeout in seconds")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON instead of the table")
    p.add_argument("--assert-p99-s", type=float, default=None,
                   help="exit non-zero unless request p99 latency is under "
                   "this many seconds (CI smoke gate)")
    p.add_argument("--assert-version-advance", action="store_true",
                   help="exit non-zero unless the served model version "
                   "advanced beyond 0 mid-run (CI smoke gate)")
    _add_backend_argument(p, "comm backend hosting trainers, replicas and frontend")

    p = sub.add_parser("trace", help=EXPERIMENTS["trace"])
    p.add_argument("--world-size", type=int, default=4,
                   help="training ranks of the traced run")
    p.add_argument("--steps", type=int, default=8,
                   help="traced training steps per rank")
    p.add_argument("--mode", default="sync",
                   choices=["sync", "solo", "majority", "quorum"],
                   help="gradient-exchange mode of the traced run")
    p.add_argument("--fusion-buckets", type=int, default=2,
                   help="fusion buckets of the traced exchange")
    p.add_argument("--sharding", default="none", choices=["none", "zero1"],
                   help="optimizer-state sharding of the traced exchange "
                   "(zero1 = reduce-scatter/allgather update path)")
    p.add_argument("--capacity", type=int, default=None,
                   help="flight-recorder ring capacity in events "
                   "(default: 65536; overflow drops oldest)")
    p.add_argument("--out", type=str, default="trace.json",
                   help="output path of the Chrome trace-event JSON")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=300.0,
                   help="whole-world timeout in seconds")
    _add_backend_argument(p, "comm backend carrying the traced ranks")

    p = sub.add_parser("verify", help=EXPERIMENTS["verify"])
    p.add_argument(
        "--world-sizes", type=str, default="2,3,4,5,7,8,16,64",
        help="comma-separated world sizes of the schedule sweep",
    )
    p.add_argument("--no-exchange", action="store_true",
                   help="skip the fused SynchronousExchange plan cases")
    p.add_argument("--no-ring-model", action="store_true",
                   help="skip the shm SPSC ring protocol model checker")
    p.add_argument("--no-self-test", action="store_true",
                   help="skip the seeded-mutant checker self-tests")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="print violations only, not the per-case table")

    p = sub.add_parser("lint", help=EXPERIMENTS["lint"])
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    return parser


def _parse_int_list(
    parser: argparse.ArgumentParser, option: str, value: str, min_value: int
) -> List[int]:
    """Parse a comma-separated integer option, enforcing a lower bound."""
    try:
        items = [int(s) for s in value.split(",") if s.strip()]
    except ValueError:
        parser.error(f"{option} must be comma-separated integers, got {value!r}")
    if not items:
        parser.error(f"{option} must not be empty")
    if any(i < min_value for i in items):
        parser.error(f"{option} entries must be >= {min_value}")
    return items


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` (returns an exit code)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        width = max(len(k) for k in EXPERIMENTS)
        print("available experiments:")
        for name, description in EXPERIMENTS.items():
            print(f"  {name.ljust(width)}  {description}")
        return 0

    if args.command == "fig2":
        result = fig2_workload.run(
            num_videos=args.num_videos, batch_size=args.batch_size, seed=args.seed
        )
        print(fig2_workload.report(result))
    elif args.command == "fig3":
        print(fig3_wmt_runtime.report(
            fig3_wmt_runtime.run(num_sentences=args.num_sentences, seed=args.seed)))
    elif args.command == "fig4":
        print(fig4_cloud_runtime.report(
            fig4_cloud_runtime.run(num_batches=args.num_batches, seed=args.seed)))
    elif args.command == "table1":
        print(table1_networks.report(table1_networks.run(scale=args.scale)))
    elif args.command == "fig9":
        result = fig9_microbenchmark.run(
            world_size=args.world_size,
            iterations=args.iterations,
            skew_step_ms=args.skew_ms,
            compression=args.compression,
        )
        if args.functional or args.backend is not None:
            # An explicit --backend implies the caller wants the real
            # transport exercised, not just the analytic model rows.
            result.functional_rows = fig9_microbenchmark.run_functional(
                backend=args.backend, compression=args.compression
            )
        print(fig9_microbenchmark.report(result))
    elif args.command == "fig10":
        print(fig10_hyperplane.report(fig10_hyperplane.run(
            scale=args.scale, seed=args.seed, comm_backend=args.backend,
            compression=args.compression)))
    elif args.command == "fig11":
        print(fig11_imagenet.report(fig11_imagenet.run(
            scale=args.scale, seed=args.seed, comm_backend=args.backend,
            compression=args.compression)))
    elif args.command == "fig12":
        print(fig12_cifar_severe.report(fig12_cifar_severe.run(
            scale=args.scale, seed=args.seed, comm_backend=args.backend,
            compression=args.compression)))
    elif args.command == "fig13":
        print(fig13_ucf101_lstm.report(fig13_ucf101_lstm.run(
            scale=args.scale, seed=args.seed, comm_backend=args.backend,
            compression=args.compression)))
    elif args.command == "speedups":
        print(speedups.report(speedups.run(scale=args.scale, seed=args.seed)))
    elif args.command == "scaling":
        print(scaling.report(scaling.run(steps=args.steps, seed=args.seed)))
        print()
        print(scaling.report(scaling.run_with_inherent_imbalance(steps=args.steps, seed=args.seed)))
    elif args.command == "fusion":
        world_sizes = _parse_int_list(parser, "--world-sizes", args.world_sizes, 1)
        try:
            bucket_mb = [float(s) for s in args.bucket_mb.split(",") if s.strip()]
        except ValueError:
            parser.error(
                f"--bucket-mb must be comma-separated numbers, got {args.bucket_mb!r}"
            )
        if not bucket_mb or any(b <= 0 for b in bucket_mb):
            parser.error("--bucket-mb entries must be > 0 and not empty")
        if args.gradient_mb <= 0:
            parser.error("--gradient-mb must be > 0")
        if args.pipeline_chunks < 1:
            parser.error("--pipeline-chunks must be >= 1")
        if args.functional_world_size < 1:
            parser.error("--functional-world-size must be >= 1")
        result = fusion_pipeline.run(
            world_sizes=world_sizes,
            gradient_mb=args.gradient_mb,
            bucket_mb=bucket_mb,
            n_chunks=args.pipeline_chunks,
            compression=args.compression,
        )
        if args.functional or args.backend is not None:
            # An explicit --backend implies the caller wants the real
            # transport exercised, not just the analytic model rows.
            result.functional_rows = fusion_pipeline.run_functional(
                world_size=args.functional_world_size,
                n_chunks=args.pipeline_chunks,
                backend=args.backend,
                compression=args.compression,
                sharding=args.sharding,
            )
        print(fusion_pipeline.report(result))
    elif args.command == "tune":
        world_sizes = _parse_int_list(parser, "--world-sizes", args.world_sizes, 2)
        if args.gradient_mb <= 0:
            parser.error("--gradient-mb must be > 0")
        if args.live_trials < 0:
            parser.error("--live-trials must be >= 0")
        result = autotune_experiment.run(
            world_sizes=world_sizes,
            gradient_mb=args.gradient_mb,
            algorithm=args.algorithm,
            quick=args.quick,
            cache_dir=args.cache_dir,
            force=args.force,
            live_trials=args.live_trials,
            backend=args.backend,
            compression=args.compression,
        )
        print(autotune_experiment.report(result))
    elif args.command == "serve":
        import json

        from repro.serving import ServingConfig, Workload, serve
        from repro.serving.server import format_report

        if args.max_queue_delay_ms < 0:
            parser.error("--max-queue-delay-ms must be >= 0")
        config = ServingConfig(
            replicas=args.replicas,
            train_ranks=args.train_ranks,
            comm_backend=args.backend,
            max_batch_size=args.max_batch_size,
            max_queue_delay_s=args.max_queue_delay_ms / 1e3,
            max_queue_depth=args.max_queue_depth,
            max_staleness_versions=args.max_staleness,
            train_steps=args.train_steps,
            publish_every_steps=args.publish_every,
            input_dim=args.input_dim,
            seed=args.seed,
        )
        try:
            config.validate()
        except ValueError as exc:
            parser.error(str(exc))
        report = serve(
            config,
            Workload(num_requests=args.requests, clients=args.clients),
            timeout=args.timeout,
        )
        print(json.dumps(report.to_dict(), indent=2) if args.json
              else format_report(report))
        failures = []
        if args.assert_p99_s is not None:
            p99 = report.p99_s
            if p99 is None or p99 > args.assert_p99_s:
                failures.append(
                    f"p99 latency {p99} s exceeds bound {args.assert_p99_s} s"
                )
        if args.assert_version_advance:
            if not report.versions_served or report.versions_served[-1] <= 0:
                failures.append(
                    f"served versions {report.versions_served} never advanced "
                    "beyond the seed weights"
                )
        ci_mode = args.assert_p99_s is not None or args.assert_version_advance
        if ci_mode and report.completed_requests < args.requests:
            failures.append(
                f"only {report.completed_requests}/{args.requests} requests "
                "completed"
            )
        for failure in failures:
            print(f"ASSERTION FAILED: {failure}")
        return 0 if not failures else 1
    elif args.command == "trace":
        from repro.obs.recorder import DEFAULT_CAPACITY
        from repro.obs.tracecmd import TraceConfig, format_summary, run_trace

        config = TraceConfig(
            world_size=args.world_size,
            steps=args.steps,
            mode=args.mode,
            sharding=args.sharding,
            fusion_buckets=args.fusion_buckets,
            capacity=args.capacity or DEFAULT_CAPACITY,
            seed=args.seed,
        )
        try:
            config.validate()
        except ValueError as exc:
            parser.error(str(exc))
        summary = run_trace(
            config, backend=args.backend, out=args.out, timeout=args.timeout
        )
        print(format_summary(summary))
    elif args.command == "verify":
        from repro.analysis import schedule_verifier

        world_sizes = _parse_int_list(parser, "--world-sizes", args.world_sizes, 2)
        report = schedule_verifier.verify(
            world_sizes=world_sizes,
            include_exchange=not args.no_exchange,
            include_ring_model=not args.no_ring_model,
            include_self_test=not args.no_self_test,
            progress=None if args.quiet else print,
        )
        if args.quiet:
            for violation in report.violations:
                print(violation)
            passed = sum(1 for r in report.results if r.ok)
            print(f"verified {len(report.results)} case(s): {passed} passed, "
                  f"{len(report.results) - passed} failed")
        else:
            print(report.summary())
        return 0 if report.ok else 1
    elif args.command == "lint":
        from repro.analysis.lint import lint_paths

        findings = lint_paths(args.paths)
        for finding in findings:
            print(finding)
        print(f"linted {', '.join(args.paths)}: {len(findings)} finding(s)")
        return 0 if not findings else 1
    else:  # pragma: no cover - argparse already rejects unknown commands
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
