"""Training histories and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.simtime.training_model import TrainingProjection


@dataclass
class EpochRecord:
    """Aggregated metrics of one epoch (global, not per rank)."""

    epoch: int
    train_loss: float
    train_top1: float
    train_top5: float
    eval_loss: float
    eval_top1: float
    eval_top5: float
    #: Mean number of fresh contributors per step during this epoch.
    mean_num_active: float
    #: Fraction of steps in which the local gradient was included (rank 0).
    inclusion_rate: float
    #: Projected time (seconds, paper scale) at which this epoch finished.
    sim_time: float = 0.0
    #: Wall-clock seconds spent in this epoch (reproduction scale).
    wall_time: float = 0.0


@dataclass
class RankSummary:
    """Per-rank bookkeeping collected at the end of training."""

    rank: int
    max_staleness: int
    mean_staleness: float
    inclusion_rate: float
    mean_num_active: float
    min_num_active: int
    final_model_hash: str


@dataclass
class TrainingResult:
    """Everything a training run produces.

    Attributes
    ----------
    mode:
        Exchange mode (``sync`` / ``solo`` / ``majority`` / ``quorum``).
    description:
        Human-readable configuration summary.
    epochs:
        One :class:`EpochRecord` per epoch.
    step_durations:
        Simulated per-rank, per-step local durations, shape
        ``(steps, world_size)`` — the trace behind Figs. 2b/3/4 and the
        input of the timing projection.
    projection:
        Paper-scale timing projection of the run.
    rank_summaries:
        Per-rank staleness/quorum summaries.
    wall_time:
        Total wall-clock seconds of the reproduction run.
    gradient_norms:
        Post-exchange gradient norms of rank 0 (empty unless collected).
    """

    mode: str
    description: str
    epochs: List[EpochRecord]
    step_durations: np.ndarray
    projection: Optional[TrainingProjection]
    rank_summaries: List[RankSummary]
    wall_time: float
    gradient_norms: List[float] = field(default_factory=list)

    # ------------------------------------------------------------ helpers
    @property
    def final_epoch(self) -> EpochRecord:
        return self.epochs[-1]

    @property
    def total_sim_time(self) -> float:
        """Projected end-to-end training time in seconds (paper scale)."""
        if self.projection is not None:
            return self.projection.total_time
        return self.epochs[-1].sim_time if self.epochs else 0.0

    @property
    def throughput(self) -> float:
        """Projected steps/second (the y-axis of Figs. 10/11a)."""
        if self.projection is None:
            return 0.0
        return self.projection.throughput

    def accuracy_vs_time(self, metric: str = "eval_top1") -> List[tuple]:
        """Series of ``(sim_time_seconds, metric_value)`` per epoch."""
        return [(e.sim_time, getattr(e, metric)) for e in self.epochs]

    def loss_vs_time(self) -> List[tuple]:
        return [(e.sim_time, e.eval_loss) for e in self.epochs]

    def summary_row(self) -> Dict[str, float]:
        """Flat summary used by the experiment report tables."""
        last = self.final_epoch
        return {
            "mode": self.mode,
            "total_sim_time_s": round(self.total_sim_time, 3),
            "throughput_steps_per_s": round(self.throughput, 4),
            "final_eval_loss": round(last.eval_loss, 5),
            "final_eval_top1": round(last.eval_top1, 4),
            "final_eval_top5": round(last.eval_top5, 4),
            "final_train_top1": round(last.train_top1, 4),
            "mean_num_active": round(
                float(np.mean([e.mean_num_active for e in self.epochs])), 2
            ),
            "wall_time_s": round(self.wall_time, 2),
        }
