"""The distributed SGD step (Algorithm 2 of the paper)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.data.loader import Batch
from repro.nn.metrics import topk_accuracy
from repro.obs import recorder as _obs
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.parameters import assign_flat_gradients, flatten_gradients
from repro.theory.staleness import QuorumTracker, StalenessTracker
from repro.training.exchange import ExchangeResult, GradientExchange


@dataclass
class StepStats:
    """Statistics of one training step on one rank."""

    loss: float
    #: Top-1 accuracy of the local batch (NaN for regression tasks).
    top1: float
    #: Top-5 accuracy of the local batch (NaN when not applicable).
    top5: float
    #: Wall-clock seconds of local compute (forward + backward).
    compute_time: float
    #: Seconds spent waiting inside the gradient exchange.
    exchange_wait: float
    #: Whether this rank's fresh gradient was included in the exchange.
    included: bool
    #: Number of ranks contributing fresh gradients.
    num_active: int
    #: L2 norm of the combined gradient (0 when not collected).
    gradient_norm: float
    #: Seconds spent waiting on each fusion bucket's collective, in
    #: bucket-index order (empty when the exchange is not bucketed).
    bucket_waits: Tuple[float, ...] = field(default=())
    #: Monotonic model version after this step's optimizer update (the
    #: step counter).  The serving tier's weight hot-swap channel keys
    #: published parameter sets by exactly this counter.
    model_version: int = 0


LossFn = Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]]


class DistributedSGD:
    """One rank's view of distributed SGD (Algorithm 2).

    At every step the rank computes its local gradient, hands the flat
    gradient vector to the gradient exchange (a synchronous or partial
    allreduce), scatters the combined gradient back into the model and
    applies the local update rule.  Staleness and quorum statistics are
    tracked for the convergence bookkeeping of Section 5.1.

    Parameters
    ----------
    model:
        The local model replica (identically initialised on every rank).
    optimizer:
        Local update rule ``U``.
    exchange:
        Gradient exchange (see :mod:`repro.training.exchange`).
    loss_fn:
        Callable ``(outputs, targets) -> (loss, grad_wrt_outputs)``.
    world_size:
        Number of ranks (for the quorum tracker).
    gradient_clip:
        Optional L2 norm clip applied to the local gradient before the
        exchange.
    classification:
        Whether to compute top-1/top-5 accuracy of the local batch.
    collect_gradient_norms:
        Whether to record the post-exchange gradient norm.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        exchange: GradientExchange,
        loss_fn: LossFn,
        world_size: int = 1,
        gradient_clip: Optional[float] = None,
        classification: bool = True,
        collect_gradient_norms: bool = False,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.exchange = exchange
        self.loss_fn = loss_fn
        self.gradient_clip = gradient_clip
        self.classification = classification
        self.collect_gradient_norms = collect_gradient_norms
        self.staleness = StalenessTracker()
        self.quorum = QuorumTracker(world_size)
        self.steps = 0

    # ------------------------------------------------------------------
    def _local_gradient(self, batch: Batch) -> Tuple[float, float, float, float]:
        """Forward + backward; returns (loss, top1, top5, compute_seconds)."""
        start = time.perf_counter()
        self.model.zero_grad()
        outputs = self.model.forward(batch.inputs)
        loss, grad = self.loss_fn(outputs, batch.targets)
        self.model.backward(grad)
        compute_time = time.perf_counter() - start
        top1 = top5 = float("nan")
        if self.classification and outputs.ndim == 2 and outputs.shape[1] >= 2:
            top1 = topk_accuracy(outputs, batch.targets, k=1)
            top5 = topk_accuracy(outputs, batch.targets, k=min(5, outputs.shape[1]))
        return loss, top1, top5, compute_time

    def step(self, batch: Batch, pre_exchange_sleep: float = 0.0) -> StepStats:
        """Run one training step (lines 3-8 of Algorithm 2).

        Parameters
        ----------
        batch:
            This rank's local batch.
        pre_exchange_sleep:
            Seconds to sleep between the local gradient computation and
            the gradient exchange.  The runner uses this to materialise
            (scaled-down) injected delays and content-driven cost
            differences as real skew between the rank threads, which is
            what makes the partial collectives see realistic arrival
            orders.
        """
        with _obs.span("compute", "step", step=self.steps):
            loss, top1, top5, compute_time = self._local_gradient(batch)
        if pre_exchange_sleep > 0:
            time.sleep(pre_exchange_sleep)

        flat = flatten_gradients(self.model)
        if self.gradient_clip is not None:
            norm = float(np.linalg.norm(flat))
            if norm > self.gradient_clip > 0:
                flat = flat * (self.gradient_clip / norm)

        if self.exchange.updates_parameters:
            # Sharded (ZeRO-1) exchange: the collective pipeline applies
            # the optimizer update on the owned shard and gathers the
            # refreshed parameters, so there is no separate update phase.
            with _obs.span("exchange", "step", step=self.steps):
                result: ExchangeResult = self.exchange.exchange_update(
                    flat, self.model, self.optimizer
                )
        else:
            with _obs.span("exchange", "step", step=self.steps):
                result = self.exchange.exchange(flat)
            with _obs.span("update", "step", step=self.steps):
                assign_flat_gradients(self.model, result.gradient)
                self.optimizer.step()

        self.staleness.record(result.included)
        self.quorum.record(result.num_active)
        self.steps += 1
        grad_norm = (
            float(np.linalg.norm(result.gradient))
            if self.collect_gradient_norms and result.gradient is not None
            else 0.0
        )
        return StepStats(
            loss=loss,
            top1=top1,
            top5=top5,
            compute_time=compute_time,
            exchange_wait=result.wait_time,
            included=result.included,
            num_active=result.num_active,
            gradient_norm=grad_norm,
            bucket_waits=result.bucket_waits,
            model_version=self.steps,
        )

    def close(self) -> None:
        self.exchange.close()
