"""Distributed training: synchronous SGD baselines and eager-SGD.

This package assembles the substrates into the paper's training systems:

* :class:`~repro.training.exchange.SynchronousExchange` — the synch-SGD
  baselines: Deep500-style ordered per-bucket allreduce and Horovod-style
  negotiation + fused allreduce;
* :class:`~repro.training.exchange.PartialExchange` — eager-SGD's gradient
  exchange built on solo/majority/quorum allreduce;
* :class:`~repro.training.distributed_sgd.DistributedSGD` — Algorithm 2:
  local forward/backward, partial (or full) allreduce of the flat
  gradient, optimizer update, plus staleness/quorum bookkeeping;
* :func:`~repro.training.runner.train_distributed` — the SPMD runner that
  executes one training job over a thread world and returns metrics,
  workload traces and paper-scale time projections.
"""

from repro.training.bucketing import BucketSpec, GradientBucketer
from repro.training.config import TrainingConfig
from repro.training.exchange import (
    ExchangeResult,
    GradientExchange,
    SingleProcessExchange,
    SynchronousExchange,
    PartialExchange,
    build_exchange,
)
from repro.training.distributed_sgd import DistributedSGD, StepStats
from repro.training.model_sync import synchronize_model, model_hash
from repro.training.metrics import EpochRecord, RankSummary, TrainingResult
from repro.training.runner import train_distributed
from repro.training.evaluation import evaluate_model, distributed_evaluate

__all__ = [
    "BucketSpec",
    "GradientBucketer",
    "TrainingConfig",
    "ExchangeResult",
    "GradientExchange",
    "SingleProcessExchange",
    "SynchronousExchange",
    "PartialExchange",
    "build_exchange",
    "DistributedSGD",
    "StepStats",
    "synchronize_model",
    "model_hash",
    "EpochRecord",
    "RankSummary",
    "TrainingResult",
    "train_distributed",
    "evaluate_model",
    "distributed_evaluate",
]
